//! Beyond-paper experiment: crash recovery of the journaled epoch
//! server replayed in virtual time — what an authority crash *costs*
//! under each recovery design.
//!
//! The threaded soak (`tests/net_restart.rs`) proves the protocol
//! survives real crashes; this model prices them deterministically so
//! the table is byte-identical across runs and `COMBAR_THREADS`
//! settings and can be golden-snapshotted. The wire/arrival model is
//! the `server` experiment's (seeded work draws, faulty uplink and
//! downlink, shard aggregation); this experiment adds the
//! authority-failure axis: at each scripted crash epoch every session
//! stalls for one *outage* —
//!
//! * **detection** — the lease/standby grace before anyone concludes
//!   the primary is dead;
//! * **journal replay** — `replay_us_per_record` × however many
//!   records recovery must read: the full history for a cold restart
//!   without snapshots, the snapshot plus a bounded tail when
//!   compaction runs every [`RestartSim::snapshot_every`] episodes, a
//!   near-empty tail for a warm standby that was tailing the journal
//!   all along;
//! * **resume** — every surviving session re-proves its position
//!   through the `Resume` challenge, serialized per shard.
//!
//! Four scenarios share one preset and one seed (common random
//! numbers — columns differ only by recovery design): `clean` (lossy
//! wire, no crashes), `cold` (full-history replay), `snapshot`
//! (replay bounded by compaction), `failover` (warm standby
//! promotion). Reported per scenario: virtual episodes/sec, p50/p99
//! arrive→release latency, crashes survived, mean recovery cost, and
//! total outage. The wall-clock companion against the real journaled
//! server is `benches/restart_recovery.rs` → `BENCH_restart.json`.

use crate::experiments::seeds;
use crate::table::{fmt_us, Table};
use combar::presets::RestartSim;
use combar_chaos::{NetChaosConfig, NetFault, NetFaultPlan};
use combar_exec::Sweep;
use combar_rng::{Distribution, Normal, SeedableRng, Xoshiro256pp};

/// The four recovery designs, one sweep cell each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Lossy wire, but the authority never dies.
    Clean,
    /// Crashes recovered by replaying the full journal history.
    Cold,
    /// Crashes recovered from the latest snapshot plus a bounded tail.
    Snapshot,
    /// Crashes recovered by promoting a warm standby that was tailing
    /// the journal (replay already done; only the tail since its last
    /// heartbeat remains).
    Failover,
}

impl Scenario {
    /// Fixed table order.
    pub const ALL: [Scenario; 4] = [
        Scenario::Clean,
        Scenario::Cold,
        Scenario::Snapshot,
        Scenario::Failover,
    ];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Clean => "clean",
            Scenario::Cold => "cold",
            Scenario::Snapshot => "snapshot",
            Scenario::Failover => "failover",
        }
    }

    fn crashes(self, preset: &RestartSim) -> u32 {
        match self {
            Scenario::Clean => 0,
            _ => preset.kills,
        }
    }
}

/// One scenario's aggregate outcome.
#[derive(Debug, Clone)]
pub struct RestartRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Episodes completed (crashes delay, they never wedge).
    pub episodes: u32,
    /// Virtual throughput: episodes per simulated second.
    pub eps_per_sec: f64,
    /// Median arrive→release latency, µs.
    pub p50_us: f64,
    /// Tail arrive→release latency, µs (the crash epochs live here).
    pub p99_us: f64,
    /// Authority crashes survived.
    pub crashes: u32,
    /// Mean recovery cost per crash (detection + replay + resume), µs.
    pub recovery_us: f64,
    /// Total virtual time the service was unavailable, µs.
    pub outage_us: f64,
    /// Client retransmissions forced by dropped frames.
    pub retries: u64,
}

/// Everything the restart experiment produces.
#[derive(Debug, Clone)]
pub struct RestartResult {
    /// The run shape.
    pub preset: RestartSim,
    /// One row per scenario, in [`Scenario::ALL`] order.
    pub rows: Vec<RestartRow>,
}

/// Journal records recovery must replay for a crash at `ep`: the
/// roster (one join/snapshot entry per session) plus one episode
/// record per epoch since the replay base — epoch 0 for a cold
/// restart, the last snapshot for a snapshotting server, the standby's
/// last applied batch (at most one heartbeat interval ≈ 1 episode
/// behind) for a promotion.
fn replay_records(scenario: Scenario, preset: &RestartSim, ep: u32) -> u64 {
    let roster = preset.sessions as u64;
    let tail = match scenario {
        Scenario::Clean => 0,
        Scenario::Cold => ep as u64,
        Scenario::Snapshot => {
            // A crash landing exactly on a compaction boundary cannot
            // assume that boundary's snapshot was durable before the
            // crash — recovery replays the full interval behind it.
            let every = preset.snapshot_every.max(1) as u64;
            let tail = ep as u64 % every;
            if tail == 0 {
                every
            } else {
                tail
            }
        }
        Scenario::Failover => 1,
    };
    roster + tail
}

fn transmit(plan: &NetFaultPlan, stream: u64, idx: &mut u64, preset: &RestartSim) -> (f64, u64) {
    let mut cost = 0.0;
    let mut retries = 0u64;
    loop {
        let fault = plan.fault(stream, *idx);
        *idx += 1;
        match fault {
            Some(NetFault::Drop) => {
                cost += preset.rto_us;
                retries += 1;
            }
            Some(NetFault::Delay(d)) => {
                return (cost + preset.hop_us * (1.0 + d as f64), retries);
            }
            Some(NetFault::Reorder) => {
                return (cost + 2.0 * preset.hop_us, retries);
            }
            Some(NetFault::Duplicate) | None => {
                return (cost + preset.hop_us, retries);
            }
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn soak(preset: &RestartSim, scenario: Scenario) -> RestartRow {
    let n = preset.sessions as usize;
    let crashes = scenario.crashes(preset);
    let seed = seeds::restart(preset.loss, preset.kills);
    let plan = if preset.loss > 0.0 {
        NetFaultPlan::new(NetChaosConfig::lossy(seed, preset.loss))
    } else {
        NetFaultPlan::quiet(seed)
    };
    let spread = Normal::new(preset.work_mean_us, preset.sigma_us).expect("valid sigma");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let crash_epochs = if crashes > 0 {
        preset.crash_epochs()
    } else {
        Vec::new()
    };

    let mut ready = vec![0.0f64; n];
    let mut send_idx = vec![0u64; n];
    let mut recv_idx = vec![0u64; n];
    let mut latencies: Vec<f64> = Vec::new();
    let mut retries = 0u64;
    let mut outage_us = 0.0f64;
    let mut recoveries: Vec<f64> = Vec::new();

    for ep in 0..preset.episodes {
        // Arrivals: one work sample per (session, episode) in a fixed
        // order keeps the RNG stream aligned across scenarios (common
        // random numbers) — columns differ only by recovery design.
        let mut arrive = vec![0.0f64; n];
        let mut delivered = vec![0.0f64; n];
        for sid in 0..n {
            let work = spread.sample(&mut rng).max(0.0);
            arrive[sid] = ready[sid] + work;
            let (cost, r) = transmit(&plan, 2 * sid as u64, &mut send_idx[sid], preset);
            retries += r;
            delivered[sid] = arrive[sid] + cost;
        }
        // Shard aggregation, then the root release.
        let mut release = 0.0f64;
        for shard in 0..preset.shards as usize {
            let latest = (0..n)
                .filter(|sid| sid % preset.shards as usize == shard)
                .map(|sid| delivered[sid])
                .fold(f64::NEG_INFINITY, f64::max);
            if latest > f64::NEG_INFINITY {
                release = release.max(latest + preset.hop_us);
            }
        }
        release += preset.hop_us;
        // A crash at this epoch: the release was journaled (WAL before
        // broadcast) but the fan-out dies. Every session pays the
        // outage — detection, journal replay, and the per-shard
        // serialized resume handshakes — before it hears the re-ack.
        if crash_epochs.contains(&ep) {
            let replay = preset.replay_us_per_record * replay_records(scenario, preset, ep) as f64;
            let resumes =
                preset.resume_us * (preset.sessions as f64 / preset.shards.max(1) as f64).ceil();
            let recovery = preset.detect_us + replay + resumes;
            recoveries.push(recovery);
            outage_us += recovery;
            release += recovery;
        }
        // Release broadcast back down the faulty wire.
        for sid in 0..n {
            let (cost, r) = transmit(&plan, 2 * sid as u64 + 1, &mut recv_idx[sid], preset);
            retries += r;
            let observed = release + cost;
            latencies.push(observed - arrive[sid]);
            ready[sid] = observed;
        }
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let makespan_us = ready.iter().fold(0.0f64, |m, &r| m.max(r));
    RestartRow {
        scenario: scenario.label(),
        episodes: preset.episodes,
        eps_per_sec: preset.episodes as f64 / (makespan_us / 1e6),
        p50_us: percentile(&latencies, 50.0),
        p99_us: percentile(&latencies, 99.0),
        crashes,
        recovery_us: if recoveries.is_empty() {
            0.0
        } else {
            recoveries.iter().sum::<f64>() / recoveries.len() as f64
        },
        outage_us,
        retries,
    }
}

/// Runs the four scenarios, one parallel [`Sweep`] cell each.
pub fn run(preset: &RestartSim) -> RestartResult {
    let rows: Vec<RestartRow> =
        Sweep::new(seeds::BASE, Scenario::ALL.to_vec()).run(|cell| soak(preset, *cell.param));
    RestartResult {
        preset: preset.clone(),
        rows,
    }
}

impl RestartResult {
    /// Renders the table.
    pub fn render(&self) -> String {
        let p = &self.preset;
        let mut t = Table::new(
            format!(
                "restart: journaled epoch server crash recovery (sessions={}, shards={}, σ={}µs, loss {:.0}%, k={} crashes, detect {}µs, replay {}µs/rec, snapshot every {})",
                p.sessions,
                p.shards,
                p.sigma_us,
                p.loss * 100.0,
                p.kills,
                p.detect_us,
                p.replay_us_per_record,
                p.snapshot_every
            ),
            &[
                "scenario",
                "episodes",
                "eps/sec",
                "p50",
                "p99",
                "crashes",
                "recovery",
                "outage",
                "retries",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.scenario.to_string(),
                r.episodes.to_string(),
                format!("{:.1}", r.eps_per_sec),
                fmt_us(r.p50_us),
                fmt_us(r.p99_us),
                r.crashes.to_string(),
                fmt_us(r.recovery_us),
                fmt_us(r.outage_us),
                r.retries.to_string(),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RestartResult {
        run(&RestartSim::quick())
    }

    #[test]
    fn run_is_deterministic() {
        let a = result().render();
        let b = result().render();
        assert_eq!(a, b);
    }

    #[test]
    fn clean_has_no_crashes_and_no_outage() {
        let res = result();
        let clean = &res.rows[0];
        assert_eq!(clean.scenario, "clean");
        assert_eq!(clean.crashes, 0);
        assert_eq!(clean.outage_us, 0.0);
    }

    #[test]
    fn recovery_cost_orders_cold_above_snapshot_above_failover() {
        let res = result();
        let by = |label: &str| {
            res.rows
                .iter()
                .find(|r| r.scenario == label)
                .unwrap_or_else(|| panic!("missing scenario {label}"))
                .clone()
        };
        let (cold, snap, fo) = (by("cold"), by("snapshot"), by("failover"));
        assert!(
            cold.recovery_us > snap.recovery_us,
            "full-history replay must cost more than snapshot+tail: {} <= {}",
            cold.recovery_us,
            snap.recovery_us
        );
        assert!(
            snap.recovery_us > fo.recovery_us,
            "snapshot replay must cost more than a warm promotion: {} <= {}",
            snap.recovery_us,
            fo.recovery_us
        );
        assert!(cold.outage_us > 0.0 && fo.outage_us > 0.0);
        // Every crashy scenario still finishes the full schedule.
        for r in &res.rows {
            assert_eq!(r.episodes, res.preset.episodes);
        }
    }

    #[test]
    fn common_random_numbers_make_clean_the_throughput_ceiling() {
        let res = result();
        let clean = res.rows[0].eps_per_sec;
        for r in res.rows.iter().skip(1) {
            assert!(
                r.eps_per_sec < clean,
                "{} at {} eps/sec should sit below clean at {clean}",
                r.scenario,
                r.eps_per_sec
            );
        }
    }
}
