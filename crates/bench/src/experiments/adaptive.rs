//! The paper's closing claim, quantified: "the feasibility of barriers
//! that would adapt their degree at run time to minimize their
//! synchronization delay."
//!
//! A 4096-processor system runs through phases of different load
//! imbalance. Three barriers compete:
//!
//! * **fixed-4** — the classical choice;
//! * **adaptive** — after each window of iterations, estimate σ̂ from
//!   the observed arrival spreads and re-pick the degree with
//!   Algorithm 1 (exactly what `combar_rt::AdaptiveBarrier` does on
//!   real threads, here at simulator scale);
//! * **oracle** — the best fixed degree per phase, found by exhaustive
//!   search (the unreachable lower bound).

use crate::experiments::seeds;
use crate::table::{fmt_us, Table};
use combar::policy::DegreeAdvisor;
use combar::presets::TC_US;
use combar_des::Duration;
use combar_exec::Sweep;
use combar_rng::stats::{std_dev, OnlineStats};
use combar_rng::{SeedableRng, Xoshiro256pp};
use combar_sim::{
    build_tree, default_degree_sweep, normal_arrivals, optimal_degree, run_episode, sweep_degrees,
    SweepConfig, TreeStyle,
};

/// One imbalance phase.
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// Arrival spread during the phase, in t_c units.
    pub sigma_tc: f64,
    /// Barrier iterations in the phase.
    pub iterations: usize,
}

/// Result per phase.
#[derive(Debug, Clone)]
pub struct AdaptivePhaseResult {
    /// The phase parameters.
    pub phase: Phase,
    /// Mean delay of the fixed degree-4 barrier (µs).
    pub fixed4_us: f64,
    /// Mean delay of the adaptive barrier (µs).
    pub adaptive_us: f64,
    /// Mean delay of the per-phase oracle (µs).
    pub oracle_us: f64,
    /// Degree the adaptive barrier used for most of the phase.
    pub adapted_degree: u32,
    /// The oracle's degree.
    pub oracle_degree: u32,
}

/// Full adaptive-barrier experiment result.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// One row per phase.
    pub rows: Vec<AdaptivePhaseResult>,
    /// Processor count.
    pub p: u32,
    /// Re-decision window (iterations).
    pub window: usize,
}

/// Runs the adaptive-degree experiment. The phase script itself is
/// inherently sequential (the controller carries its degree and RNG
/// across phases), but each phase's oracle depends only on the phase's
/// σ, so the oracle searches evaluate up front as a parallel
/// [`Sweep`].
pub fn run(p: u32, phases: &[Phase], window: usize) -> AdaptiveResult {
    let tc = Duration::from_us(TC_US);
    let advisor = DegreeAdvisor::new(p, TC_US);
    let mut rng = Xoshiro256pp::seed_from_u64(seeds::adaptive());

    let oracles = Sweep::new(seeds::BASE, phases.to_vec()).run(|cell| {
        let cfg = SweepConfig {
            tc,
            sigma_us: cell.param.sigma_tc * TC_US,
            reps: 15,
            seed: seeds::adaptive_oracle(cell.param.sigma_tc),
            style: TreeStyle::Combining,
        };
        let swept = sweep_degrees(p, &default_degree_sweep(p), &cfg);
        optimal_degree(&swept).clone()
    });

    let mut rows = Vec::new();
    // The adaptive barrier starts at the classical degree and carries
    // its state across phases (it does not know where phases begin).
    let mut current_degree = 4u32;
    let mut window_spreads: Vec<f64> = Vec::new();

    for (&phase, oracle) in phases.iter().zip(&oracles) {
        let sigma_us = phase.sigma_tc * TC_US;
        let fixed_topo = build_tree(TreeStyle::Combining, p, 4);
        let mut fixed = OnlineStats::new();
        let mut adaptive = OnlineStats::new();
        let mut degree_use: std::collections::BTreeMap<u32, usize> = Default::default();

        for _ in 0..phase.iterations {
            let arrivals = normal_arrivals(p as usize, sigma_us, &mut rng);
            // fixed-4
            let rf = run_episode(&fixed_topo, fixed_topo.homes(), &arrivals, tc);
            fixed.push(rf.sync_delay_us);
            // adaptive: current degree, plus measurement
            let topo = build_tree(TreeStyle::Combining, p, current_degree);
            let ra = run_episode(&topo, topo.homes(), &arrivals, tc);
            adaptive.push(ra.sync_delay_us);
            *degree_use.entry(current_degree).or_default() += 1;
            window_spreads.push(std_dev(&arrivals));
            if window_spreads.len() >= window {
                let sigma_hat = window_spreads.iter().sum::<f64>() / window_spreads.len() as f64;
                current_degree = advisor.recommend_for_sigma(sigma_hat);
                window_spreads.clear();
            }
        }

        let adapted_degree = degree_use
            .into_iter()
            .max_by_key(|&(_, n)| n)
            .map(|(d, _)| d)
            .unwrap_or(current_degree);
        rows.push(AdaptivePhaseResult {
            phase,
            fixed4_us: fixed.mean(),
            adaptive_us: adaptive.mean(),
            oracle_us: oracle.sync_delay.mean(),
            adapted_degree,
            oracle_degree: oracle.degree,
        });
    }
    AdaptiveResult { rows, p, window }
}

impl AdaptiveResult {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "Adaptive-degree barrier ({} procs, window {} iterations)",
                self.p, self.window
            ),
            &[
                "phase σ/tc",
                "fixed-4",
                "adaptive",
                "oracle",
                "adapted d",
                "oracle d",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                format!("{}", r.phase.sigma_tc),
                fmt_us(r.fixed4_us),
                fmt_us(r.adaptive_us),
                fmt_us(r.oracle_us),
                r.adapted_degree.to_string(),
                r.oracle_degree.to_string(),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phases() -> Vec<Phase> {
        vec![
            Phase {
                sigma_tc: 0.0,
                iterations: 30,
            },
            Phase {
                sigma_tc: 50.0,
                iterations: 30,
            },
            Phase {
                sigma_tc: 12.5,
                iterations: 30,
            },
        ]
    }

    /// After the imbalance jumps, the adaptive barrier beats fixed-4
    /// and lands near the oracle.
    #[test]
    fn adaptive_tracks_the_oracle_after_a_shift() {
        let res = run(1024, &phases(), 10);
        let busy = &res.rows[1]; // σ = 50·t_c phase
        assert!(
            busy.adaptive_us < busy.fixed4_us,
            "adaptive {} vs fixed {}",
            busy.adaptive_us,
            busy.fixed4_us
        );
        assert!(
            busy.adaptive_us < busy.oracle_us * 1.7,
            "adaptive {} vs oracle {}",
            busy.adaptive_us,
            busy.oracle_us
        );
        assert!(busy.adapted_degree > 4);
    }

    /// In the quiet phase the adaptive barrier stays at (or returns to)
    /// the classical degree and pays nothing.
    #[test]
    fn adaptive_is_free_when_quiet() {
        let res = run(1024, &phases(), 10);
        let quiet = &res.rows[0];
        assert_eq!(quiet.adapted_degree, 4);
        assert!((quiet.adaptive_us / quiet.fixed4_us - 1.0).abs() < 0.05);
    }

    #[test]
    fn render_has_all_phases() {
        let res = run(256, &phases(), 10);
        let s = res.render();
        assert!(s.contains("oracle"));
        assert_eq!(res.rows.len(), 3);
    }
}
