//! Fuzzy-barrier idle time vs slack (the companion-paper result the
//! paper leans on in Section 5).
//!
//! Eichenberger & Abraham's earlier study — reference \[13\] — showed
//! "the expected idle time at a fuzzy barrier is inversely proportional
//! to the slack time". Here the chained iteration simulator measures
//! mean idle per processor-iteration against the slack, alongside the
//! arrival-spread growth that makes dynamic placement's predictions
//! possible.

use crate::experiments::seeds;
use crate::table::Table;
use combar::presets::TC_US;
use combar_des::Duration;
use combar_exec::Sweep;
use combar_rng::stats::{mean, std_dev, OnlineStats};
use combar_rng::{Histogram, SeedableRng, Xoshiro256pp};
use combar_sim::{run_iterations, IterateConfig, PlacementMode, Topology, Workload};

/// One slack point.
#[derive(Debug, Clone)]
pub struct FuzzyIdleRow {
    /// Fuzzy slack (µs).
    pub slack_us: f64,
    /// Mean idle per processor-iteration at the enforce point (µs).
    pub idle_us: f64,
    /// Mean synchronization delay (µs).
    pub sync_us: f64,
    /// Steady-state arrival spread (µs) — grows with slack as the
    /// chained begin-times decouple from the release.
    pub spread_us: f64,
}

/// Result of the idle-vs-slack sweep.
#[derive(Debug, Clone)]
pub struct FuzzyIdleResult {
    /// One row per slack.
    pub rows: Vec<FuzzyIdleRow>,
    /// Processor count.
    pub p: u32,
    /// Per-iteration work-time σ (µs).
    pub sigma_us: f64,
    /// Steady-state arrival-offset histogram at the largest slack,
    /// centred on the per-iteration mean — shows the *asymmetric*
    /// distribution the paper describes ("a few processors being much
    /// slower than average").
    pub asymmetry: Histogram,
    /// Skewness of those offsets (> 0 confirms the right tail).
    pub skewness: f64,
}

/// Runs the sweep. Each slack value is an independent chained run (its
/// seed depends only on the slack), so the axis evaluates as a parallel
/// [`Sweep`]; the asymmetry histogram and skewness are folded from the
/// cells' standardized offsets in grid order afterwards, keeping the
/// result identical for any thread count.
pub fn run(p: u32, sigma_us: f64, slacks_us: &[f64], iterations: usize) -> FuzzyIdleResult {
    let topo = Topology::mcs(p, 4);
    let max_slack = slacks_us.iter().copied().fold(0.0f64, f64::max);
    let cells: Vec<(FuzzyIdleRow, Option<Vec<f64>>)> = Sweep::new(seeds::BASE, slacks_us.to_vec())
        .run(|cell| {
            let &slack = cell.param;
            let cfg = IterateConfig {
                tc: Duration::from_us(TC_US),
                slack: Duration::from_us(slack),
                iterations,
                warmup: 15,
                mode: PlacementMode::Static,
                record_arrivals: true,
                release_model: combar_sim::ReleaseModel::CentralFlag,
            };
            let mut w = combar_sim::Seeded::new(
                Workload::iid_normal(10.0 * sigma_us + 1_000.0, sigma_us),
                Xoshiro256pp::seed_from_u64(seeds::fuzzy_idle(slack)),
            );
            let rep = run_iterations(&topo, &cfg, &mut w);
            let mut spread = OnlineStats::new();
            for a in &rep.arrivals {
                spread.push(std_dev(a));
            }
            let offsets = (slack == max_slack).then(|| {
                // standardized arrival offsets for the asymmetry view
                let mut zs = Vec::new();
                for a in &rep.arrivals {
                    let m = mean(a);
                    let s = std_dev(a).max(1e-9);
                    zs.extend(a.iter().map(|&x| (x - m) / s));
                }
                zs
            });
            let row = FuzzyIdleRow {
                slack_us: slack,
                idle_us: rep.idle.mean(),
                sync_us: rep.sync_delay.mean(),
                spread_us: spread.mean(),
            };
            (row, offsets)
        });
    let mut rows = Vec::with_capacity(cells.len());
    let mut asymmetry = Histogram::new(-4.0, 8.0, 24);
    let mut skew_num = 0.0f64;
    let mut skew_den = 0.0f64;
    let mut skew_n = 0usize;
    for (row, offsets) in cells {
        if let Some(zs) = offsets {
            for z in zs {
                asymmetry.record(z);
                skew_num += z * z * z;
                skew_den += z * z;
                skew_n += 1;
            }
        }
        rows.push(row);
    }
    let skewness = if skew_n > 0 {
        (skew_num / skew_n as f64) / (skew_den / skew_n as f64).powf(1.5)
    } else {
        0.0
    };
    FuzzyIdleResult {
        rows,
        p,
        sigma_us,
        asymmetry,
        skewness,
    }
}

impl FuzzyIdleResult {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "Fuzzy idle vs slack ({} procs, work σ = {} µs)",
                self.p, self.sigma_us
            ),
            &["slack µs", "idle µs", "sync delay µs", "arrival spread µs"],
        );
        for r in &self.rows {
            t.row(vec![
                format!("{:.0}", r.slack_us),
                format!("{:.1}", r.idle_us),
                format!("{:.1}", r.sync_us),
                format!("{:.0}", r.spread_us),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "
arrival-offset distribution at the largest slack (σ-units; skewness {:+.2}):
{}",
            self.skewness,
            self.asymmetry.render(40)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_falls_and_spread_grows_with_slack() {
        let res = run(128, 100.0, &[0.0, 400.0, 1_600.0], 60);
        let first = &res.rows[0];
        let last = res.rows.last().unwrap();
        assert!(
            last.idle_us < first.idle_us / 2.0,
            "{} vs {}",
            last.idle_us,
            first.idle_us
        );
        assert!(
            last.spread_us > first.spread_us,
            "spread should grow: {} vs {}",
            last.spread_us,
            first.spread_us
        );
    }

    #[test]
    fn render_has_one_row_per_slack() {
        let res = run(64, 50.0, &[0.0, 800.0], 40);
        assert_eq!(res.rows.len(), 2);
        assert!(res.render().contains("arrival spread"));
        assert!(res.render().contains("skewness"));
    }

    /// The paper: with fuzzy barriers, "processor arrival times are
    /// asymmetrically distributed with a few processors being much
    /// slower than average" — positive skewness at large slack.
    #[test]
    fn large_slack_arrivals_are_right_skewed() {
        let res = run(128, 100.0, &[0.0, 3_200.0], 80);
        assert!(res.skewness > 0.3, "skewness {}", res.skewness);
        assert!(res.asymmetry.total() > 0);
    }
}
