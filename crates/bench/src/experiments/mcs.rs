//! Section 4's side experiment: combining trees vs Mellor-Crummey &
//! Scott owner trees.
//!
//! The paper: "we noticed performance improvements of 5%, on average,
//! for all combining trees with an optimal degree of four. However,
//! this performance improvement vanishes when the optimal degree is
//! larger than four" — because the fraction of processors attached
//! above the leaves shrinks with the degree.

use crate::experiments::seeds;
use crate::table::{fmt_ratio, fmt_us, Table};
use combar::presets::TC_US;
use combar_des::Duration;
use combar_exec::par_map;
use combar_sim::{sweep_degrees, SweepConfig, TreeStyle};

/// One degree's comparison.
#[derive(Debug, Clone)]
pub struct McsRow {
    /// Tree degree.
    pub degree: u32,
    /// Combining-tree mean delay (µs).
    pub combining_us: f64,
    /// MCS owner-tree mean delay (µs).
    pub mcs_us: f64,
    /// `combining / mcs` — above 1 when MCS wins.
    pub mcs_advantage: f64,
}

/// Result of the comparison.
#[derive(Debug, Clone)]
pub struct McsResult {
    /// Per-degree rows.
    pub rows: Vec<McsRow>,
    /// Processor count.
    pub p: u32,
    /// σ in µs.
    pub sigma_us: f64,
}

/// Runs the comparison at `p` processors and spread `sigma_us` over the
/// given degrees. The two tree styles share one seed (paired
/// comparison) and evaluate in parallel via [`par_map`].
pub fn run(p: u32, sigma_us: f64, degrees: &[u32], reps: usize) -> McsResult {
    let base = SweepConfig {
        tc: Duration::from_us(TC_US),
        sigma_us,
        reps,
        seed: seeds::mcs(),
        style: TreeStyle::Combining,
    };
    let styles = [TreeStyle::Combining, TreeStyle::Mcs];
    let mut swept = par_map(&styles, |&style| {
        sweep_degrees(
            p,
            degrees,
            &SweepConfig {
                style,
                ..base.clone()
            },
        )
    });
    let mcs = swept.pop().expect("two styles");
    let comb = swept.pop().expect("two styles");
    let rows = comb
        .iter()
        .zip(&mcs)
        .map(|(c, m)| McsRow {
            degree: c.degree,
            combining_us: c.sync_delay.mean(),
            mcs_us: m.sync_delay.mean(),
            mcs_advantage: c.sync_delay.mean() / m.sync_delay.mean(),
        })
        .collect();
    McsResult { rows, p, sigma_us }
}

impl McsResult {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "Section 4: combining vs MCS owner trees ({} procs, σ = {} µs)",
                self.p, self.sigma_us
            ),
            &["degree", "combining", "MCS", "MCS advantage"],
        );
        for r in &self.rows {
            t.row(vec![
                r.degree.to_string(),
                fmt_us(r.combining_us),
                fmt_us(r.mcs_us),
                fmt_ratio(r.mcs_advantage),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// MCS wins at small degrees (owners sit above the leaves) and the
    /// advantage shrinks as the degree grows, as the paper reports.
    #[test]
    fn mcs_advantage_shrinks_with_degree() {
        let res = run(4096, 0.0, &[2, 4, 16, 64], 1);
        let small = res.rows.iter().find(|r| r.degree == 4).unwrap();
        let large = res.rows.iter().find(|r| r.degree == 64).unwrap();
        assert!(
            small.mcs_advantage >= large.mcs_advantage - 0.02,
            "advantage should shrink: d4 {} vs d64 {}",
            small.mcs_advantage,
            large.mcs_advantage
        );
        assert!(small.mcs_advantage > 1.0, "MCS should win at degree 4");
    }

    #[test]
    fn render_lists_all_degrees() {
        let res = run(256, 124.0, &[4, 16], 5);
        let s = res.render();
        assert!(s.contains("MCS advantage"));
        assert_eq!(res.rows.len(), 2);
    }
}
