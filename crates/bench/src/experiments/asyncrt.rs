//! Beyond-paper experiment: the async epoch runtime at logical scale —
//! the *real* [`combar_async::AsyncBarrier`] driven by the in-tree
//! executor, rendered as schedule invariants.
//!
//! Unlike the virtual-time models in this directory, every cell here
//! executes the production runtime: `p` logical participants (parked
//! wakers) cross [`AsyncLoad::episodes`] epochs on a driver pool sized
//! by `COMBAR_THREADS` (via [`combar_exec::thread_count`]), each doing
//! its seeded σ-imbalanced busy work before arriving. The table still
//! diffs byte-identically across runs and thread counts because every
//! column is either a protocol invariant the runtime must deliver
//! regardless of scheduling (arrival totals, exactly-one-release-per-
//! epoch, no poison, full drain) or a pure function of the seeded work
//! schedule (total and straggler statistics from
//! [`combar_async::work_iters`]). CI diffs the rendering under
//! `COMBAR_THREADS=1` vs `2` — a schedule-dependent byte anywhere is a
//! determinism regression.
//!
//! The wall-clock companion (epochs/s, wakeup-batch latency
//! percentiles, the million-participant headline) is
//! `benches/async_throughput.rs` → `BENCH_async.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::experiments::seeds;
use crate::table::Table;
use combar::presets::AsyncLoad;
use combar_async::{busy_work, work_iters, AsyncBarrier, Deadline, Executor};

/// One (participants, σ) cell's outcome.
#[derive(Debug, Clone)]
pub struct AsyncRow {
    /// Logical participants.
    pub p: u32,
    /// Relative work imbalance σ/mean.
    pub sigma: f64,
    /// Arrivals counted at run time; the contract demands exactly
    /// `p · episodes`.
    pub arrivals: u64,
    /// The barrier's final epoch (exactly `episodes` on a clean run).
    pub final_epoch: u32,
    /// Seats still live after the run (0: every crossing completed).
    pub live: u32,
    /// Whether the run poisoned the barrier.
    pub poisoned: bool,
    /// Total scheduled work iterations (pure function of the seed).
    pub work_total: u64,
    /// Straggler factor: mean over epochs of (slowest participant's
    /// work / mean work), the deterministic imbalance the σ knob buys.
    pub straggler: f64,
}

/// Everything the async experiment produces.
#[derive(Debug, Clone)]
pub struct AsyncResult {
    /// The grid shape.
    pub preset: AsyncLoad,
    /// One row per (participants, σ), participants-major.
    pub rows: Vec<AsyncRow>,
}

/// Deterministic schedule statistics: total iterations and the mean
/// per-epoch straggler factor, straight from the pure work function.
fn schedule_stats(seed: u64, p: u32, episodes: u32, mean: u32, sigma: f64) -> (u64, f64) {
    let mut total = 0u64;
    let mut straggler_sum = 0.0f64;
    for e in 0..episodes {
        let mut epoch_total = 0u64;
        let mut epoch_max = 0u64;
        for tid in 0..p {
            let w = u64::from(work_iters(seed, tid, e, mean, sigma));
            epoch_total += w;
            epoch_max = epoch_max.max(w);
        }
        total += epoch_total;
        let epoch_mean = epoch_total as f64 / f64::from(p);
        if epoch_mean > 0.0 {
            straggler_sum += epoch_max as f64 / epoch_mean;
        }
    }
    (total, straggler_sum / f64::from(episodes.max(1)))
}

fn cell(preset: &AsyncLoad, p: u32, sigma: f64) -> AsyncRow {
    let seed = seeds::async_load(p, sigma);
    let b = AsyncBarrier::new(p, preset.shards);
    let exec = Executor::new(combar_exec::thread_count());
    let arrivals = Arc::new(AtomicU64::new(0));
    for tid in 0..p {
        let b = b.clone();
        let arrivals = Arc::clone(&arrivals);
        let episodes = preset.episodes;
        let mean = preset.work_mean;
        exec.spawn(async move {
            let mut w = b.waiter_for(tid);
            for e in 0..episodes {
                busy_work(work_iters(seed, tid, e, mean, sigma));
                arrivals.fetch_add(1, Ordering::AcqRel);
                w.wait_async().await.unwrap();
            }
        });
    }
    let drained = exec.wait_idle(Deadline::after(Duration::from_secs(240)));
    assert!(drained, "async cell p={p} σ={sigma} failed to drain");
    assert_eq!(exec.panics(), 0, "async cell p={p} σ={sigma} panicked");
    let (work_total, straggler) = schedule_stats(seed, p, preset.episodes, preset.work_mean, sigma);
    AsyncRow {
        p,
        sigma,
        arrivals: arrivals.load(Ordering::Acquire),
        final_epoch: b.epoch(),
        live: b.live_count(),
        poisoned: b.is_poisoned(),
        work_total,
        straggler,
    }
}

/// Runs the grid, participants-major then σ.
pub fn run(preset: &AsyncLoad) -> AsyncResult {
    let mut rows = Vec::new();
    for &p in &preset.participants {
        for &sigma in &preset.sigmas {
            rows.push(cell(preset, p, sigma));
        }
    }
    AsyncResult {
        preset: preset.clone(),
        rows,
    }
}

impl AsyncResult {
    /// Renders the table.
    pub fn render(&self) -> String {
        let pr = &self.preset;
        let mut t = Table::new(
            format!(
                "async: logical-scale epoch runtime (shards={}, epochs={}, work mean={} iters; invariant columns, byte-stable under any COMBAR_THREADS)",
                pr.shards, pr.episodes, pr.work_mean
            ),
            &[
                "participants",
                "sigma",
                "arrivals",
                "epoch",
                "live",
                "poisoned",
                "work_iters",
                "straggler",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.p.to_string(),
                format!("{:.1}", r.sigma),
                r.arrivals.to_string(),
                r.final_epoch.to_string(),
                r.live.to_string(),
                r.poisoned.to_string(),
                r.work_total.to_string(),
                format!("{:.2}", r.straggler),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> AsyncResult {
        run(&AsyncLoad::quick())
    }

    #[test]
    fn rendering_is_deterministic_across_driver_counts() {
        let one = combar_exec::with_thread_count(1, || result().render());
        let two = combar_exec::with_thread_count(2, || result().render());
        assert_eq!(one, two, "driver count leaked into the table");
    }

    #[test]
    fn every_cell_satisfies_the_contract() {
        let res = result();
        assert_eq!(
            res.rows.len(),
            res.preset.participants.len() * res.preset.sigmas.len()
        );
        for r in &res.rows {
            assert_eq!(r.arrivals, u64::from(r.p) * u64::from(res.preset.episodes));
            assert_eq!(r.final_epoch, res.preset.episodes);
            assert_eq!(r.live, r.p, "no seat departed");
            assert!(!r.poisoned);
        }
    }

    #[test]
    fn sigma_buys_deterministic_imbalance() {
        let res = result();
        // Rows come sigma-minor: for each p, σ=0 then σ=1.
        for pair in res.rows.chunks(2) {
            let (flat, skewed) = (&pair[0], &pair[1]);
            assert_eq!(flat.sigma, 0.0);
            assert!((flat.straggler - 1.0).abs() < 1e-9, "σ=0 has no straggler");
            assert!(
                skewed.straggler > 1.2,
                "σ={} straggler {} too flat",
                skewed.sigma,
                skewed.straggler
            );
        }
    }
}
