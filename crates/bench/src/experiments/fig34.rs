//! Figures 3 and 4: the optimal-degree grid.
//!
//! Figure 3: for each (p, σ/t_c) cell, the degree with the smallest
//! simulated synchronization delay, and the speedup of that degree over
//! degree 4. Figure 4 adds the analytic estimate and the gap between
//! the speedups — the paper reports the estimated degrees cost only
//! ~7 % on average.

use crate::experiments::seeds;
use crate::table::{fmt_ratio, Table};
use combar::model::BarrierModel;
use combar::model_topo::estimate_optimal_degree_any;
use combar::presets::{Fig3Grid, TC_US};
use combar::LastArrival;
use combar_des::Duration;
use combar_sim::{default_degree_sweep, optimal_degree, sweep_degrees, SweepConfig, TreeStyle};

/// One grid cell.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Processor count.
    pub p: u32,
    /// Arrival spread in t_c units.
    pub sigma_tc: f64,
    /// Simulated optimal degree (all power-of-two degrees plus `p`).
    pub sim_degree: u32,
    /// Simulated speedup of the optimal degree vs degree 4.
    pub sim_speedup: f64,
    /// Analytically estimated optimal degree (full-tree degrees).
    pub est_degree: u32,
    /// *Simulated* speedup of the estimated degree vs degree 4 (the
    /// honest cost of trusting the model).
    pub est_speedup: f64,
    /// Simulated mean delay of the simulated-optimal degree (µs).
    pub sim_delay_us: f64,
    /// Simulated mean delay of the estimated degree (µs).
    pub est_delay_us: f64,
    /// Degree chosen by the generalized any-degree estimator (beyond
    /// paper: Algorithm 1 over all degrees, not just full trees).
    pub est_any_degree: u32,
    /// Simulated mean delay of that degree (µs).
    pub est_any_delay_us: f64,
}

/// Full grid result.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// All cells, row-major over (procs × sigmas).
    pub cells: Vec<GridCell>,
    /// The preset used.
    pub preset: Fig3Grid,
}

/// Runs the Figure 3/4 grid. Every `(p, σ)` cell is independent — its
/// seed depends only on `p` — so the grid evaluates as one parallel
/// [`Sweep`](combar_exec::Sweep) in table row order.
pub fn run(preset: &Fig3Grid) -> GridResult {
    let cells = preset.sweep().run(|cell| {
        let &(p, sigma_tc) = cell.param;
        let degrees = default_degree_sweep(p);
        let cfg = SweepConfig {
            tc: Duration::from_us(TC_US),
            sigma_us: sigma_tc * TC_US,
            reps: preset.reps,
            seed: seeds::fig34(p),
            style: TreeStyle::Combining,
        };
        let swept = sweep_degrees(p, &degrees, &cfg);
        let best = optimal_degree(&swept);
        let four = swept
            .iter()
            .find(|r| r.degree == 4)
            .expect("4 is in the sweep");

        let model = BarrierModel::new(p, sigma_tc * TC_US, TC_US).expect("valid");
        let est_degree = model.estimate_optimal_degree().degree;
        // honest evaluation: simulate the estimated degree with the
        // same common random numbers
        let est_sim = swept
            .iter()
            .find(|r| r.degree == est_degree)
            .cloned()
            .unwrap_or_else(|| {
                sweep_degrees(p, &[est_degree], &cfg)
                    .into_iter()
                    .next()
                    .unwrap()
            });
        let (est_any_degree, _) =
            estimate_optimal_degree_any(p, sigma_tc * TC_US, TC_US, LastArrival::default())
                .expect("valid parameters");
        let est_any_sim = swept
            .iter()
            .find(|r| r.degree == est_any_degree)
            .cloned()
            .unwrap_or_else(|| {
                sweep_degrees(p, &[est_any_degree], &cfg)
                    .into_iter()
                    .next()
                    .unwrap()
            });

        GridCell {
            p,
            sigma_tc,
            sim_degree: best.degree,
            sim_speedup: four.sync_delay.mean() / best.sync_delay.mean(),
            est_degree,
            est_speedup: four.sync_delay.mean() / est_sim.sync_delay.mean(),
            sim_delay_us: best.sync_delay.mean(),
            est_delay_us: est_sim.sync_delay.mean(),
            est_any_degree,
            est_any_delay_us: est_any_sim.sync_delay.mean(),
        }
    });
    GridResult {
        cells,
        preset: preset.clone(),
    }
}

impl GridResult {
    /// Mean percentage by which the simulated-optimal degree beats the
    /// estimated degree (the paper: ≈7 %).
    pub fn mean_estimation_gap_percent(&self) -> f64 {
        let gaps: Vec<f64> = self
            .cells
            .iter()
            .map(|c| (c.est_delay_us / c.sim_delay_us - 1.0) * 100.0)
            .collect();
        gaps.iter().sum::<f64>() / gaps.len() as f64
    }

    /// Same metric for the generalized any-degree estimator.
    pub fn mean_any_estimation_gap_percent(&self) -> f64 {
        let gaps: Vec<f64> = self
            .cells
            .iter()
            .map(|c| (c.est_any_delay_us / c.sim_delay_us - 1.0) * 100.0)
            .collect();
        gaps.iter().sum::<f64>() / gaps.len() as f64
    }

    /// Renders the Figure 3 table (simulated optima).
    pub fn render_fig3(&self) -> String {
        let mut headers: Vec<String> = vec!["procs".into()];
        headers.extend(self.preset.sigma_tc.iter().map(|s| format!("σ={s}tc")));
        let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            "Figure 3: simulated optimal degree (speedup vs degree 4)",
            &hdr_refs,
        );
        for &p in &self.preset.procs {
            let mut row = vec![p.to_string()];
            for &s in &self.preset.sigma_tc {
                let c = self.cell(p, s);
                row.push(format!("{} ({})", c.sim_degree, fmt_ratio(c.sim_speedup)));
            }
            t.row(row);
        }
        t.render()
    }

    /// Renders the Figure 4 table (estimated vs simulated optima).
    pub fn render_fig4(&self) -> String {
        let mut headers: Vec<String> = vec!["procs".into()];
        headers.extend(self.preset.sigma_tc.iter().map(|s| format!("σ={s}tc")));
        let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            "Figure 4: opt vs est optimal degree (speedup vs degree 4)",
            &hdr_refs,
        );
        for &p in &self.preset.procs {
            let mut opt_row = vec![format!("{p} opt")];
            let mut est_row = vec![format!("{p} est")];
            for &s in &self.preset.sigma_tc {
                let c = self.cell(p, s);
                opt_row.push(format!("{} ({})", c.sim_degree, fmt_ratio(c.sim_speedup)));
                est_row.push(format!("{} ({})", c.est_degree, fmt_ratio(c.est_speedup)));
            }
            t.row(opt_row);
            t.row(est_row);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "mean cost of trusting the estimate: {:.1}% (paper: ~7%); generalized \
             any-degree estimator (beyond paper): {:.1}%\n",
            self.mean_estimation_gap_percent(),
            self.mean_any_estimation_gap_percent()
        ));
        s
    }

    /// Looks up one cell.
    pub fn cell(&self, p: u32, sigma_tc: f64) -> &GridCell {
        self.cells
            .iter()
            .find(|c| c.p == p && c.sigma_tc == sigma_tc)
            .expect("cell exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> Fig3Grid {
        Fig3Grid {
            procs: vec![64, 256],
            sigma_tc: vec![0.0, 6.2, 25.0],
            reps: 10,
        }
    }

    /// The paper's legible anchors: degree 4 at σ = 0 (speedup 1.0) and
    /// a single counter for 64 procs at σ = 25·t_c.
    #[test]
    fn paper_anchor_cells() {
        let res = run(&small_grid());
        for &p in &[64u32, 256] {
            let c = res.cell(p, 0.0);
            assert_eq!(c.sim_degree, 4, "p={p} σ=0");
            assert!((c.sim_speedup - 1.0).abs() < 1e-9);
            assert_eq!(c.est_degree, 4);
        }
        let wide = res.cell(64, 25.0);
        assert!(
            wide.sim_degree >= 32,
            "64@25tc should be very wide, got {}",
            wide.sim_degree
        );
        assert!(wide.sim_speedup > 1.5);
    }

    /// Optimal degree is (weakly) monotone in σ along each row.
    #[test]
    fn rows_are_monotone() {
        let res = run(&small_grid());
        for &p in &res.preset.procs {
            let mut prev = 0u32;
            for &s in &res.preset.sigma_tc {
                let c = res.cell(p, s);
                assert!(c.sim_degree >= prev, "p={p} σ={s}");
                prev = c.sim_degree;
            }
        }
    }

    /// The estimate never costs an order of magnitude. The worst cells
    /// are the extreme-σ ones where the simulated optimum is the flat
    /// tree but the model's subset-simultaneity assumption overprices
    /// it (see `ablate`); everywhere else the estimate lands within a
    /// few tens of percent, and the grid mean stays modest.
    #[test]
    fn estimation_gap_is_modest() {
        let res = run(&small_grid());
        for c in &res.cells {
            let gap = c.est_delay_us / c.sim_delay_us - 1.0;
            assert!(
                gap < 1.2,
                "p={} σ={}tc: est {} vs opt {} ({}%)",
                c.p,
                c.sigma_tc,
                c.est_delay_us,
                c.sim_delay_us,
                gap * 100.0
            );
        }
        let mean = res.mean_estimation_gap_percent();
        assert!(mean < 30.0, "mean gap {mean}% (paper reports ~7%)");
    }

    #[test]
    fn rendering_mentions_every_processor_count() {
        let res = run(&Fig3Grid {
            procs: vec![64],
            sigma_tc: vec![0.0, 6.2],
            reps: 4,
        });
        let f3 = res.render_fig3();
        let f4 = res.render_fig4();
        assert!(f3.contains("64"));
        assert!(f4.contains("64 opt") && f4.contains("64 est"));
        assert!(f4.contains("paper: ~7%"));
    }
}
