//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p combar-bench --release --bin experiments -- all
//! cargo run -p combar-bench --release --bin experiments -- fig2 fig8
//! cargo run -p combar-bench --release --bin experiments -- --only fig2,fig8
//! cargo run -p combar-bench --release --bin experiments -- --list
//! ```
//!
//! Available ids: fig2, fig3, fig4, fig5, sec4-mcs, fig8, fig9, fig10,
//! fig11, fig12, fig13, ablate, adaptive, chaos, churn, server, async,
//! trace, balance, scale,
//! fuzzy-idle, release, baselines, verify, all. A `--quick` flag
//! shrinks replication counts for smoke runs; `--list` prints the
//! available ids and exits; `--only a,b,c` selects a comma-separated
//! subset. `verify` grades the reproduction against the paper's
//! reference values and exits non-zero on failure. `--json` emits one
//! JSON object per id (JSON Lines) instead of text tables — derived by
//! parsing the rendered tables, so the text renderers (and their
//! golden snapshots) stay the single source of truth. The first JSON
//! line is a header object naming the stream's schema version
//! (`{"schema":"combar-experiments/1"}`); consumers should skip
//! objects whose keys they do not recognize. Parallelism is governed
//! by `COMBAR_THREADS` (default: all cores) and never changes any
//! output byte.

use combar::presets::{
    AsyncLoad, Balance, Fig12, Fig13, Fig2, Fig3Grid, Fig5, Fig8, RestartSim, Scale, ScalingSweep,
    ServerSim,
};
use combar_bench::experiments::{
    ablate, adaptive, asyncrt, balance, baselines, chaos, churn, fig2, fig34, fig5, fig8,
    fuzzy_idle, ksr, mcs, release, restart, scale, scaling, seeds, server, trace,
};
use combar_bench::table::{json_escape, parse_rendered};
use std::time::Instant;

/// The `all` expansion, in presentation order.
const ALL_IDS: &[&str] = &[
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "sec4-mcs",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "ablate",
    "adaptive",
    "chaos",
    "churn",
    "server",
    "restart",
    "async",
    "trace",
    "balance",
    "scale",
    "fuzzy-idle",
    "release",
    "baselines",
    "verify",
];

/// Prints one experiment's output: text verbatim, or one JSON-Lines
/// object with the tables parsed back out of the rendering (non-table
/// output is carried under `"raw"` instead).
fn emit(json: bool, id: &str, out: &str) {
    if !json {
        print!("{out}");
        return;
    }
    let tables = parse_rendered(out);
    if tables.is_empty() {
        println!(
            "{{\"id\":\"{}\",\"raw\":\"{}\"}}",
            json_escape(id),
            json_escape(out)
        );
    } else {
        let rendered: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
        println!(
            "{{\"id\":\"{}\",\"tables\":[{}]}}",
            json_escape(id),
            rendered.join(",")
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut json = false;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "--only" => {
                let Some(names) = it.next() else {
                    eprintln!("--only requires a comma-separated list of ids");
                    std::process::exit(2);
                };
                ids.extend(names.split(',').filter(|s| !s.is_empty()).map(String::from));
            }
            other => {
                if let Some(names) = other.strip_prefix("--only=") {
                    ids.extend(names.split(',').filter(|s| !s.is_empty()).map(String::from));
                } else {
                    ids.push(other.to_string());
                }
            }
        }
    }
    let ids: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.contains(&"all") {
        ALL_IDS.to_vec()
    } else {
        ids
    };

    if json {
        // Stream header: names the JSON-Lines schema so consumers can
        // detect incompatible changes instead of misparsing them.
        println!("{{\"schema\":\"combar-experiments/1\"}}");
    }

    // Figures 3/4 share one grid computation.
    let mut grid_cache: Option<fig34::GridResult> = None;
    let mut scaling_cache: Option<scaling::ScalingResult> = None;

    for id in ids {
        let t0 = Instant::now();
        let out: String = match id {
            "fig2" => {
                let preset = if quick {
                    Fig2 {
                        reps: 5,
                        ..Fig2::default()
                    }
                } else {
                    Fig2::default()
                };
                format!("{}\n", fig2::run(&preset).render())
            }
            "fig3" | "fig4" => {
                if grid_cache.is_none() {
                    let preset = if quick {
                        Fig3Grid {
                            reps: 6,
                            procs: vec![64, 256],
                            ..Fig3Grid::default()
                        }
                    } else {
                        Fig3Grid::default()
                    };
                    grid_cache = Some(fig34::run(&preset));
                }
                let grid = grid_cache.as_ref().unwrap();
                if id == "fig3" {
                    format!("{}\n", grid.render_fig3())
                } else {
                    format!("{}\n", grid.render_fig4())
                }
            }
            "fig5" => {
                let preset = if quick {
                    Fig5 {
                        p: 256,
                        iterations: 60,
                        ..Fig5::default()
                    }
                } else {
                    Fig5::default()
                };
                format!("{}\n", fig5::run(&preset).render())
            }
            "sec4-mcs" => {
                let (p, reps) = if quick { (256, 10) } else { (4096, 20) };
                let res = mcs::run(p, 250.0, &[2, 4, 8, 16, 64], reps);
                format!("{}\n", res.render())
            }
            "fig8" => {
                let preset = if quick {
                    Fig8 {
                        p: 256,
                        iterations: 60,
                        warmup: 10,
                        ..Fig8::default()
                    }
                } else {
                    Fig8::default()
                };
                format!("{}\n", fig8::run(&preset).render())
            }
            "fig9" | "fig10" | "fig11" => {
                if scaling_cache.is_none() {
                    let preset = if quick {
                        ScalingSweep {
                            procs: vec![16, 64, 256],
                            iterations: 30,
                            reps: 6,
                            ..ScalingSweep::default()
                        }
                    } else {
                        ScalingSweep::default()
                    };
                    scaling_cache = Some(scaling::run(&preset));
                }
                let res = scaling_cache.as_ref().unwrap();
                if id == "fig9" {
                    format!("{}\n", res.render_fig9())
                } else if id == "fig10" {
                    res.render_fig10_11()
                } else {
                    // fig11 is included in render_fig10_11; avoid
                    // printing it twice when both were requested
                    String::new()
                }
            }
            "fig12" => {
                let preset = if quick {
                    Fig12 {
                        iterations: 60,
                        warmup: 5,
                        ..Fig12::default()
                    }
                } else {
                    Fig12::default()
                };
                format!("{}\n", ksr::run_fig12(&preset).render())
            }
            "fig13" => {
                let preset = if quick {
                    Fig13 {
                        iterations: 60,
                        warmup: 5,
                        ..Fig13::default()
                    }
                } else {
                    Fig13::default()
                };
                format!("{}\n", ksr::run_fig13(&preset).render())
            }
            "ablate" => {
                let reps = if quick { 8 } else { 20 };
                let shapes = ablate::run_shapes(256, &[6.2, 25.0], reps);
                let err = ablate::run_model_error(256, &[0.0, 6.2, 25.0, 100.0], reps);
                let prof = ablate::run_level_profile(4096, 12.5, &[4, 16, 64], reps);
                let iters = if quick { 80 } else { 200 };
                let corr = ksr::run_fig13_correlation(&[0.0, 0.3, 0.6, 0.9], 2_000.0, iters);
                format!(
                    "{}\n{}\n{}\n{}\n",
                    ablate::render_shapes(&shapes, 256),
                    ablate::render_model_error(&err),
                    ablate::render_level_profile(&prof, 4096, 12.5),
                    ksr::render_fig13_correlation(&corr, 2_000.0)
                )
            }
            "adaptive" => {
                let p = if quick { 1024 } else { 4096 };
                let phases = [
                    adaptive::Phase {
                        sigma_tc: 0.0,
                        iterations: 50,
                    },
                    adaptive::Phase {
                        sigma_tc: 50.0,
                        iterations: 50,
                    },
                    adaptive::Phase {
                        sigma_tc: 12.5,
                        iterations: 50,
                    },
                    adaptive::Phase {
                        sigma_tc: 100.0,
                        iterations: 50,
                    },
                ];
                format!("{}\n", adaptive::run(p, &phases, 10).render())
            }
            "chaos" => {
                let preset = if quick {
                    chaos::ChaosPreset::quick(seeds::chaos())
                } else {
                    chaos::ChaosPreset::full(seeds::chaos())
                };
                format!("{}\n", chaos::run(&preset).render())
            }
            "churn" => {
                let preset = if quick {
                    churn::ChurnPreset::quick()
                } else {
                    churn::ChurnPreset::full()
                };
                format!("{}\n", churn::run(&preset).render())
            }
            "server" => {
                let preset = if quick {
                    ServerSim::quick()
                } else {
                    ServerSim::full()
                };
                format!("{}\n", server::run(&preset).render())
            }
            "restart" => {
                let preset = if quick {
                    RestartSim::quick()
                } else {
                    RestartSim::full()
                };
                format!("{}\n", restart::run(&preset).render())
            }
            "async" => {
                let preset = if quick {
                    AsyncLoad::quick()
                } else {
                    AsyncLoad::full()
                };
                format!("{}\n", asyncrt::run(&preset).render())
            }
            "trace" => {
                let preset = if quick {
                    trace::TracePreset::quick()
                } else {
                    trace::TracePreset::full()
                };
                trace::run(&preset).render()
            }
            "balance" => {
                let preset = if quick {
                    Balance::quick()
                } else {
                    Balance::full()
                };
                format!("{}\n", balance::run(&preset).render())
            }
            "scale" => {
                let preset = if quick { Scale::quick() } else { Scale::full() };
                format!("{}\n", scale::run(&preset).render())
            }
            "dot" => {
                // Figure 6's mechanism, rendered: a small owner tree
                // before and after a slow processor migrates.
                use combar::combar_des::Duration;
                use combar::combar_rng::{SeedableRng, Xoshiro256pp};
                use combar_sim::{
                    apply_dynamic_swaps, run_iterations, IterateConfig, Placement, PlacementMode,
                    Seeded, Topology, WorkSource, Workload,
                };
                let topo = Topology::mcs(16, 2);
                let before = format!("// initial placement\n{}", topo.to_dot(None));
                // run a few iterations with one systemically slow proc
                let cfg = IterateConfig {
                    tc: Duration::from_us(20.0),
                    slack: Duration::from_us(4_000.0),
                    iterations: 30,
                    warmup: 0,
                    mode: PlacementMode::Dynamic,
                    record_arrivals: false,
                    release_model: combar_sim::ReleaseModel::CentralFlag,
                };
                let make = || {
                    let mut seed_rng = Xoshiro256pp::seed_from_u64(2);
                    Seeded::new(
                        Workload::systemic(16, 9_500.0, 300.0, 20.0, &mut seed_rng),
                        Xoshiro256pp::seed_from_u64(1),
                    )
                };
                let _ = run_iterations(&topo, &cfg, &mut make());
                // reconstruct the converged placement by replaying the
                // same run through a placement we keep
                let mut placement = Placement::initial(&topo);
                let mut w = make();
                let mut begin = [0.0f64; 16];
                let mut works = vec![0.0f64; 16];
                for e in 0..30 {
                    use combar_sim::run_episode;
                    w.sample_episode(e, &mut works);
                    let arrivals: Vec<f64> = begin.iter().zip(&works).map(|(b, w)| b + w).collect();
                    let homes = placement.homes().to_vec();
                    let r = run_episode(&topo, &homes, &arrivals, Duration::from_us(20.0));
                    apply_dynamic_swaps(&topo, &mut placement, &r.winners);
                    for (b, done) in begin.iter_mut().zip(&r.signal_done_us) {
                        *b = (done + 4_000.0).max(r.release_us);
                    }
                }
                format!(
                    "{}\n// after 30 iterations with a systemic slow set\n{}\n",
                    before,
                    topo.to_dot(Some(&placement))
                )
            }
            "verify" => {
                let verdicts = combar_bench::verify::run(quick);
                let (table, all_ok) = combar_bench::verify::render(&verdicts);
                if !all_ok {
                    emit(json, id, &format!("{table}\n"));
                    eprintln!("verification FAILED");
                    std::process::exit(1);
                }
                format!("{table}\nall claims verified against the paper ✓\n")
            }
            "baselines" => {
                let (p, reps) = if quick { (256, 8) } else { (1024, 20) };
                let rows = baselines::run(p, &[0.0, 1.6, 6.2, 12.5, 25.0, 50.0, 100.0], reps);
                format!("{}\n", baselines::render(&rows, p))
            }
            "release" => {
                let reps = if quick { 3 } else { 10 };
                let rows = release::run(&[64, 256, 1024, 4096], &[2, 4, 16], 2.0, reps);
                format!("{}\n", release::render(&rows, 2.0))
            }
            "fuzzy-idle" => {
                let (p, iters) = if quick { (256, 60) } else { (1024, 120) };
                let slacks = [0.0, 250.0, 500.0, 1_000.0, 2_000.0, 4_000.0, 16_000.0];
                format!("{}\n", fuzzy_idle::run(p, 250.0, &slacks, iters).render())
            }
            other => {
                eprintln!("unknown experiment id: {other}");
                eprintln!("known: {} all (see --list)", ALL_IDS.join(" "));
                std::process::exit(2);
            }
        };
        emit(json, id, &out);
        eprintln!("[{id}] done in {:.1}s", t0.elapsed().as_secs_f64());
    }
}
