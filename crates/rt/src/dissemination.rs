//! The dissemination barrier (Hensgen/Finkel/Manber; also in
//! Mellor-Crummey & Scott).
//!
//! A literature baseline with no combining tree at all: in round `r`
//! each thread signals the thread `2^r` positions ahead (mod `p`) and
//! waits for the thread `2^r` behind, completing in `⌈log₂ p⌉` rounds
//! with no single hot location. Its critical path is `⌈log₂ p⌉`
//! regardless of arrival spread, which makes it a useful contrast to
//! the paper's adaptive-degree trees: it can never exploit imbalance
//! the way a wide tree does.
//!
//! Signalling uses per-slot episode numbers instead of sense flags:
//! slot `(r, i)` holds the episode in which thread `i` was signalled in
//! round `r`, so no reset phase is needed.
//!
//! # Fault model
//!
//! Waits can be bounded ([`DisseminationWaiter::wait_timeout`]) — the
//! waiter checkpoints its round and resumes where it stopped, and the
//! partner store is idempotent so re-running a round is safe. A waiter
//! dropped mid-episode poisons the barrier. **Eviction is structurally
//! impossible** here: every thread is a distinct signalling *source* in
//! every round, so a proxy would have to impersonate the dead thread's
//! entire future signal schedule — equivalent to rebuilding the barrier
//! with `p-1` threads. Use a counter-tree barrier where graceful
//! degradation is required.

use crate::error::BarrierError;
use crate::pad::CachePadded;
use crate::spin::{wait_for_epoch_fallible, EpochWait};
use crate::sync::{AtomicU32, Ordering};
use combar_trace as trace;
use std::time::{Duration, Instant};

/// A dissemination barrier for `p` threads.
#[derive(Debug)]
pub struct DisseminationBarrier {
    /// `flags[r][i]`: episode number signalled to thread `i` in round
    /// `r`.
    flags: Vec<Vec<CachePadded<AtomicU32>>>,
    /// Last completed episode, recorded so waiters created between
    /// phases resume from the live count.
    episode_hint: CachePadded<AtomicU32>,
    poison: CachePadded<AtomicU32>,
    rounds: u32,
    p: u32,
}

impl DisseminationBarrier {
    /// Creates a barrier for `p` threads.
    ///
    /// Prefer building through [`crate::BarrierBuilder`] when a
    /// trait-object ([`crate::Barrier`]) surface, supervision, or a
    /// trace sink is wanted; the direct constructor stays for
    /// statically-typed embedding.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: u32) -> Self {
        assert!(p > 0, "barrier needs at least one thread");
        let rounds = if p == 1 { 0 } else { (p - 1).ilog2() + 1 };
        let flags = (0..rounds)
            .map(|_| {
                (0..p)
                    .map(|_| CachePadded::new(AtomicU32::new(0)))
                    .collect()
            })
            .collect();
        Self {
            flags,
            episode_hint: CachePadded::new(AtomicU32::new(0)),
            poison: CachePadded::new(AtomicU32::new(0)),
            rounds,
            p,
        }
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.p
    }

    /// Number of rounds, `⌈log₂ p⌉`.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Whether a participant died mid-episode, wedging the barrier.
    pub fn is_poisoned(&self) -> bool {
        self.poison.load(Ordering::Acquire) != 0
    }

    /// Creates the per-thread handle for thread `tid`.
    ///
    /// Waiters may be created at any quiescent point (no episode in
    /// flight): they resume from the barrier's last completed episode,
    /// so the barrier survives reuse across thread-team phases.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn waiter(&self, tid: u32) -> DisseminationWaiter<'_> {
        assert!(tid < self.p, "thread id out of range");
        DisseminationWaiter {
            barrier: self,
            tid,
            episode: self.episode_hint.load(Ordering::Acquire),
            round: 0,
            mid: false,
        }
    }
}

/// Per-thread handle to a [`DisseminationBarrier`].
///
/// Dropping a waiter mid-episode poisons the barrier: peers receive
/// [`BarrierError::Poisoned`] instead of spinning forever.
#[derive(Debug)]
pub struct DisseminationWaiter<'a> {
    barrier: &'a DisseminationBarrier,
    tid: u32,
    episode: u32,
    /// Resume point for a timed-out episode.
    round: u32,
    /// Whether an episode is in flight (entered but not completed).
    mid: bool,
}

impl DisseminationWaiter<'_> {
    /// A full barrier episode.
    ///
    /// Dissemination has no separable signal/enforce split — every
    /// round interleaves both — so it implements only `wait` (no fuzzy
    /// variant; the paper's fuzzy discussion applies to counter trees).
    ///
    /// # Panics
    ///
    /// Panics if the barrier is (or becomes) poisoned.
    pub fn wait(&mut self) {
        if let Err(e) = self.wait_deadline(None) {
            panic!("barrier wait failed: {e}");
        }
    }

    /// A full barrier episode bounded by `timeout`.
    ///
    /// On [`BarrierError::Timeout`] the rounds already completed stay
    /// completed: call a wait method again to resume the same episode
    /// at the round that stalled. A timed-out waiter must not simply be
    /// dropped — that poisons the barrier; retry until release instead.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
        self.wait_deadline(Some(Instant::now() + timeout))
    }

    /// Unbounded fallible full barrier: like [`Self::wait`] but
    /// returning poisoning as an error instead of panicking. Reads no
    /// clock, so schedules stay deterministic under the `combar-check`
    /// model checker.
    pub fn try_wait(&mut self) -> Result<(), BarrierError> {
        self.wait_deadline(None)
    }

    fn wait_deadline(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        let b = self.barrier;
        if b.is_poisoned() {
            return Err(BarrierError::Poisoned);
        }
        if !self.mid {
            self.episode = self.episode.wrapping_add(1);
            self.round = 0;
            self.mid = true;
            trace::emit(self.episode, self.tid, trace::Kind::Arrive);
        }
        while self.round < b.rounds {
            let r = self.round as usize;
            let partner = (self.tid + (1 << self.round)) % b.p;
            trace::emit(
                self.episode,
                self.tid,
                trace::Kind::CombineStart(self.round),
            );
            // Idempotent on resume: re-storing the same episode is fine.
            b.flags[r][partner as usize].store(self.episode, Ordering::Release);
            match wait_for_epoch_fallible(
                &b.flags[r][self.tid as usize],
                self.episode,
                &b.poison,
                deadline,
            ) {
                EpochWait::Released => {
                    trace::emit(self.episode, self.tid, trace::Kind::CombineEnd(self.round));
                    self.round += 1;
                }
                EpochWait::TimedOut => return Err(BarrierError::Timeout),
                EpochWait::Poisoned => return Err(BarrierError::Poisoned),
            }
        }
        // Benign race: every thread stores the same value.
        b.episode_hint.store(self.episode, Ordering::Release);
        self.mid = false;
        trace::emit(self.episode, self.tid, trace::Kind::Release);
        Ok(())
    }

    /// This thread's id.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

impl Drop for DisseminationWaiter<'_> {
    fn drop(&mut self) {
        if self.mid {
            self.barrier.poison.store(1, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn rounds_are_ceil_log2() {
        assert_eq!(DisseminationBarrier::new(1).rounds(), 0);
        assert_eq!(DisseminationBarrier::new(2).rounds(), 1);
        assert_eq!(DisseminationBarrier::new(3).rounds(), 2);
        assert_eq!(DisseminationBarrier::new(4).rounds(), 2);
        assert_eq!(DisseminationBarrier::new(5).rounds(), 3);
        assert_eq!(DisseminationBarrier::new(8).rounds(), 3);
        assert_eq!(DisseminationBarrier::new(9).rounds(), 4);
    }

    #[test]
    fn lockstep_for_non_power_of_two() {
        for p in [2usize, 3, 5, 8] {
            let barrier = DisseminationBarrier::new(p as u32);
            let phases: Vec<AtomicU32> = (0..p).map(|_| AtomicU32::new(0)).collect();
            std::thread::scope(|s| {
                for tid in 0..p {
                    let barrier = &barrier;
                    let phases = &phases;
                    s.spawn(move || {
                        let mut w = barrier.waiter(tid as u32);
                        for e in 0..150u32 {
                            phases[tid].store(e + 1, Ordering::Release);
                            w.wait();
                            for q in phases {
                                let ph = q.load(Ordering::Acquire);
                                assert!(
                                    ph == e + 1 || ph == e + 2,
                                    "p={p} episode {e}: phase {ph}"
                                );
                            }
                        }
                    });
                }
            });
        }
    }

    #[test]
    fn single_thread_never_blocks() {
        let b = DisseminationBarrier::new(1);
        let mut w = b.waiter(0);
        for _ in 0..10 {
            w.wait();
        }
    }

    #[test]
    fn timeout_resumes_at_the_stalled_round() {
        let b = DisseminationBarrier::new(2);
        let mut w0 = b.waiter(0);
        // Alone, thread 0 stalls in round 0 waiting on thread 1.
        assert_eq!(
            w0.wait_timeout(Duration::from_millis(2)),
            Err(BarrierError::Timeout)
        );
        // Partner completes its episode concurrently with the resume.
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut w1 = b.waiter(1);
                w1.wait_timeout(Duration::from_secs(2)).unwrap();
            });
            w0.wait_timeout(Duration::from_secs(2)).unwrap();
        });
    }

    #[test]
    fn dropping_mid_episode_poisons_peers() {
        let b = DisseminationBarrier::new(3);
        {
            let mut dying = b.waiter(0);
            let _ = dying.wait_timeout(Duration::from_millis(1));
        }
        assert!(b.is_poisoned());
        let mut peer = b.waiter(1);
        assert_eq!(
            peer.wait_timeout(Duration::from_secs(1)),
            Err(BarrierError::Poisoned)
        );
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn waiter_bounds_checked() {
        let b = DisseminationBarrier::new(2);
        let _ = b.waiter(2);
    }
}
