//! The dissemination barrier (Hensgen/Finkel/Manber; also in
//! Mellor-Crummey & Scott).
//!
//! A literature baseline with no combining tree at all: in round `r`
//! each thread signals the thread `2^r` positions ahead (mod `p`) and
//! waits for the thread `2^r` behind, completing in `⌈log₂ p⌉` rounds
//! with no single hot location. Its critical path is `⌈log₂ p⌉`
//! regardless of arrival spread, which makes it a useful contrast to
//! the paper's adaptive-degree trees: it can never exploit imbalance
//! the way a wide tree does.
//!
//! Signalling uses per-slot episode numbers instead of sense flags:
//! slot `(r, i)` holds the episode in which thread `i` was signalled in
//! round `r`, so no reset phase is needed.

use crate::pad::CachePadded;
use crate::spin::wait_for_epoch;
use std::sync::atomic::{AtomicU32, Ordering};

/// A dissemination barrier for `p` threads.
#[derive(Debug)]
pub struct DisseminationBarrier {
    /// `flags[r][i]`: episode number signalled to thread `i` in round
    /// `r`.
    flags: Vec<Vec<CachePadded<AtomicU32>>>,
    /// Last completed episode, recorded so waiters created between
    /// phases resume from the live count.
    episode_hint: CachePadded<AtomicU32>,
    rounds: u32,
    p: u32,
}

impl DisseminationBarrier {
    /// Creates a barrier for `p` threads.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: u32) -> Self {
        assert!(p > 0, "barrier needs at least one thread");
        let rounds = if p == 1 { 0 } else { (p - 1).ilog2() + 1 };
        let flags = (0..rounds)
            .map(|_| (0..p).map(|_| CachePadded::new(AtomicU32::new(0))).collect())
            .collect();
        Self { flags, episode_hint: CachePadded::new(AtomicU32::new(0)), rounds, p }
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.p
    }

    /// Number of rounds, `⌈log₂ p⌉`.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Creates the per-thread handle for thread `tid`.
    ///
    /// Waiters may be created at any quiescent point (no episode in
    /// flight): they resume from the barrier's last completed episode,
    /// so the barrier survives reuse across thread-team phases.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn waiter(&self, tid: u32) -> DisseminationWaiter<'_> {
        assert!(tid < self.p, "thread id out of range");
        DisseminationWaiter {
            barrier: self,
            tid,
            episode: self.episode_hint.load(Ordering::Acquire),
        }
    }
}

/// Per-thread handle to a [`DisseminationBarrier`].
#[derive(Debug)]
pub struct DisseminationWaiter<'a> {
    barrier: &'a DisseminationBarrier,
    tid: u32,
    episode: u32,
}

impl DisseminationWaiter<'_> {
    /// A full barrier episode.
    ///
    /// Dissemination has no separable signal/enforce split — every
    /// round interleaves both — so it implements only `wait` (no fuzzy
    /// variant; the paper's fuzzy discussion applies to counter trees).
    pub fn wait(&mut self) {
        let b = self.barrier;
        self.episode = self.episode.wrapping_add(1);
        for r in 0..b.rounds {
            let partner = (self.tid + (1 << r)) % b.p;
            b.flags[r as usize][partner as usize].store(self.episode, Ordering::Release);
            wait_for_epoch(&b.flags[r as usize][self.tid as usize], self.episode);
        }
        // Benign race: every thread stores the same value.
        b.episode_hint.store(self.episode, Ordering::Release);
    }

    /// This thread's id.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn rounds_are_ceil_log2() {
        assert_eq!(DisseminationBarrier::new(1).rounds(), 0);
        assert_eq!(DisseminationBarrier::new(2).rounds(), 1);
        assert_eq!(DisseminationBarrier::new(3).rounds(), 2);
        assert_eq!(DisseminationBarrier::new(4).rounds(), 2);
        assert_eq!(DisseminationBarrier::new(5).rounds(), 3);
        assert_eq!(DisseminationBarrier::new(8).rounds(), 3);
        assert_eq!(DisseminationBarrier::new(9).rounds(), 4);
    }

    #[test]
    fn lockstep_for_non_power_of_two() {
        for p in [2usize, 3, 5, 8] {
            let barrier = DisseminationBarrier::new(p as u32);
            let phases: Vec<AtomicU32> = (0..p).map(|_| AtomicU32::new(0)).collect();
            std::thread::scope(|s| {
                for tid in 0..p {
                    let barrier = &barrier;
                    let phases = &phases;
                    s.spawn(move || {
                        let mut w = barrier.waiter(tid as u32);
                        for e in 0..150u32 {
                            phases[tid].store(e + 1, Ordering::Release);
                            w.wait();
                            for q in phases {
                                let ph = q.load(Ordering::Acquire);
                                assert!(
                                    ph == e + 1 || ph == e + 2,
                                    "p={p} episode {e}: phase {ph}"
                                );
                            }
                        }
                    });
                }
            });
        }
    }

    #[test]
    fn single_thread_never_blocks() {
        let b = DisseminationBarrier::new(1);
        let mut w = b.waiter(0);
        for _ in 0..10 {
            w.wait();
        }
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn waiter_bounds_checked() {
        let b = DisseminationBarrier::new(2);
        let _ = b.waiter(2);
    }
}
