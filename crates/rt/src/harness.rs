//! Reusable correctness harness for barrier implementations.
//!
//! The fundamental barrier contract is *lockstep*: when any thread
//! leaves episode `e`, every thread has entered episode `e` — so no
//! thread is ever more than one episode ahead of another. This module
//! packages that check (with optional adversarial staggering) so the
//! crate's own tests, the integration tests and downstream users can
//! soak-test any barrier — including their own — identically.
//!
//! Two fault-tolerance provisions make contract violations *fail fast*
//! instead of wedging the whole test process:
//!
//! * a shared **abort flag**: the first worker to panic (skew
//!   violation, injected fault, unexpected error) flips it, and every
//!   other worker drains out at its next timeout instead of spinning
//!   forever on a barrier that will never release;
//! * a **watchdog** thread that converts a total lack of progress into
//!   a panic, so a deadlocked barrier fails the test rather than
//!   hanging CI.
//!
//! Both require the step closures to use bounded waits
//! (`wait_timeout`): a worker parked in an infallible `wait()` can
//! observe neither the abort flag nor the watchdog.
//!
//! For runs with injected *deaths* (participants that stop arriving),
//! use [`chaos_torture`]: it drives eviction through a per-barrier
//! rescue closure and reports per-thread survival.

use crate::barrier::Barrier;
use crate::error::BarrierError;
use combar_chaos::{apply_transient, DeathMode, FaultKind, FaultPlan};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How the harness perturbs thread timing to shake out races.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stagger {
    /// No artificial delays: maximal arrival rate.
    None,
    /// Deterministic mix of sleeps and yields, different per
    /// (thread, episode) — the default adversary.
    Mixed,
    /// One designated thread is systematically slow (models systemic
    /// load imbalance; drives dynamic placement's migration).
    SlowThread(u32),
    /// Seeded fault injection from `combar-chaos`: per-(thread,
    /// episode) stalls, yield storms and deaths. A `Die(Stall)` fault
    /// makes the thread stop participating (peers wedge unless the
    /// step closures evict — prefer [`chaos_torture`] for death
    /// plans); a `Die(Panic)` fault panics the worker.
    Chaos(FaultPlan),
}

/// Outcome of a torture run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TortureReport {
    /// Episodes each thread completed.
    pub episodes: u32,
    /// Threads that participated.
    pub threads: u32,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
    /// Maximum phase skew ever observed (must be ≤ 1 for a correct
    /// barrier; the harness panics otherwise, so a returned report
    /// always carries 1 or 0 here).
    pub max_skew: u32,
    /// Total `BarrierError::Timeout` results observed (each is retried).
    pub timeouts: u64,
}

impl TortureReport {
    /// Mean wall time per episode.
    pub fn per_episode(&self) -> Duration {
        self.elapsed / self.episodes.max(1)
    }
}

/// Decrements the live-worker count on the way out and trips the abort
/// flag when leaving by panic, so peers drain instead of wedging.
struct WorkerGuard<'a> {
    abort: &'a AtomicBool,
    remaining: &'a AtomicU32,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.abort.store(true, Ordering::Release);
        }
        self.remaining.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Panics when `progress` stops advancing while workers are still live:
/// the deadlock becomes a test failure instead of a hang.
fn watchdog(
    abort: &AtomicBool,
    remaining: &AtomicU32,
    progress: &AtomicU64,
    stall_limit: Duration,
) {
    let mut last = progress.load(Ordering::Relaxed);
    let mut since = Instant::now();
    while remaining.load(Ordering::Acquire) > 0 {
        std::thread::sleep(Duration::from_millis(10));
        let now = progress.load(Ordering::Relaxed);
        if now != last {
            last = now;
            since = Instant::now();
        } else if since.elapsed() > stall_limit && !abort.load(Ordering::Acquire) {
            abort.store(true, Ordering::Release);
            panic!(
                "watchdog: no barrier progress for {:.1}s — deadlock converted into failure",
                since.elapsed().as_secs_f64()
            );
        }
    }
}

/// Runs `threads` threads for `episodes` barrier episodes and asserts
/// the lockstep contract on every crossing.
///
/// `make(tid)` builds each thread's step closure (typically
/// `move || waiter.wait_timeout(SOME_BOUND)`). A step returning
/// [`BarrierError::Timeout`] is retried; any other error fails the
/// run.
///
/// # Panics
///
/// Panics (from inside a worker) if any thread observes another more
/// than one episode away — i.e. if the barrier is broken — or, via the
/// watchdog, if no thread makes progress for several seconds.
pub fn lockstep_torture<F, G>(
    threads: u32,
    episodes: u32,
    stagger: Stagger,
    make: F,
) -> TortureReport
where
    F: Fn(u32) -> G + Sync,
    G: FnMut() -> Result<(), BarrierError> + Send,
{
    assert!(threads > 0, "need at least one thread");
    let phases: Vec<AtomicU32> = (0..threads).map(|_| AtomicU32::new(0)).collect();
    let max_skew = AtomicU32::new(0);
    let abort = AtomicBool::new(false);
    let remaining = AtomicU32::new(threads);
    let progress = AtomicU64::new(0);
    let timeouts = AtomicU64::new(0);
    let plan = match stagger {
        Stagger::Chaos(p) => Some(p),
        _ => None,
    };
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let phases = &phases;
            let max_skew = &max_skew;
            let abort = &abort;
            let remaining = &remaining;
            let progress = &progress;
            let timeouts = &timeouts;
            let mut step = make(tid);
            s.spawn(move || {
                let _guard = WorkerGuard { abort, remaining };
                'episodes: for e in 0..episodes {
                    if abort.load(Ordering::Acquire) {
                        break;
                    }
                    match stagger {
                        Stagger::None => {}
                        Stagger::Mixed => match (e as u64 + tid as u64 * 13) % 7 {
                            0 => std::thread::sleep(Duration::from_micros(150)),
                            3 => std::thread::yield_now(),
                            _ => {}
                        },
                        Stagger::SlowThread(slow) => {
                            if tid == slow {
                                std::thread::sleep(Duration::from_micros(800));
                            }
                        }
                        Stagger::Chaos(plan) => match plan.fault(tid, e) {
                            Some(FaultKind::Die(DeathMode::Stall)) => break 'episodes,
                            Some(FaultKind::Die(DeathMode::Panic)) => {
                                panic!("chaos: injected panic (tid {tid}, episode {e})")
                            }
                            Some(ref f) => apply_transient(f),
                            None => {}
                        },
                    }
                    phases[tid as usize].store(e + 1, Ordering::Release);
                    loop {
                        match step() {
                            Ok(()) => {
                                progress.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(BarrierError::Timeout) => {
                                timeouts.fetch_add(1, Ordering::Relaxed);
                                if abort.load(Ordering::Acquire) {
                                    break 'episodes;
                                }
                            }
                            Err(err) => {
                                panic!(
                                    "barrier failed under torture: {err} (tid {tid}, episode {e})"
                                )
                            }
                        }
                    }
                    if abort.load(Ordering::Acquire) {
                        break;
                    }
                    for (q, ph) in phases.iter().enumerate() {
                        if plan
                            .and_then(|p| p.death_episode(q as u32))
                            .is_some_and(|k| e + 1 >= k)
                        {
                            continue; // peer died on schedule; its phase froze
                        }
                        let ph = ph.load(Ordering::Acquire);
                        let skew = ph.abs_diff(e + 1);
                        max_skew.fetch_max(skew, Ordering::Relaxed);
                        assert!(
                            skew <= 1,
                            "lockstep violated: tid {tid} at episode {e} saw phase {ph}"
                        );
                    }
                }
            });
        }
        let (abort, remaining, progress) = (&abort, &remaining, &progress);
        s.spawn(move || watchdog(abort, remaining, progress, Duration::from_secs(5)));
    });
    TortureReport {
        episodes,
        threads,
        elapsed: start.elapsed(),
        max_skew: max_skew.load(Ordering::Relaxed),
        timeouts: timeouts.load(Ordering::Relaxed),
    }
}

/// Outcome of a [`chaos_torture`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Threads that started.
    pub threads: u32,
    /// Episodes requested per thread.
    pub episodes: u32,
    /// Episodes actually completed, per thread.
    pub completed: Vec<u32>,
    /// Threads still participating at the end (not dead, evicted,
    /// poisoned out, or given up).
    pub survivors: u32,
    /// Deaths the plan scheduled within the run's episode range.
    pub planned_deaths: u32,
    /// Evictions performed by rescue closures.
    pub evictions: u64,
    /// Total timeout results observed (each is retried).
    pub timeouts: u64,
    /// Threads that exhausted their retry budget.
    pub gave_up: u32,
    /// Whether the barrier ended up poisoned.
    pub poisoned: bool,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
    /// Maximum phase skew observed among live participants (≤ 1 or the
    /// run panicked).
    pub max_skew: u32,
}

/// Soak-tests a barrier under a seeded [`FaultPlan`], including
/// participant deaths, asserting lockstep among the survivors.
///
/// `make(tid)` builds each thread's pair of closures:
///
/// * **step**: one bounded barrier crossing, typically
///   `move |d| waiter.wait_timeout(d)`;
/// * **rescue**: invoked after repeated timeouts; it should evict the
///   stragglers wedging the barrier (e.g.
///   `move || barrier.evict_stragglers()`) and return the evicted ids
///   so the harness can exclude them from the lockstep check. Barriers
///   without eviction support may return an empty vec — the wedged run
///   then ends in give-ups rather than survival.
///
/// Threads scheduled to `Die(Stall)` silently stop arriving (their
/// waiter drops *clean*, no poisoning): survivors' rescues must evict
/// them. Threads scheduled to `Die(Panic)` abandon a registered
/// arrival, modelling a mid-episode crash: the barrier poisons and
/// every peer drains out with [`BarrierError::Poisoned`].
///
/// # Panics
///
/// Panics if two live participants drift more than one episode apart,
/// or (via the watchdog) if nothing progresses for far longer than
/// `step_timeout`.
pub fn chaos_torture<F, S, R>(
    threads: u32,
    episodes: u32,
    plan: FaultPlan,
    step_timeout: Duration,
    make: F,
) -> ChaosReport
where
    F: Fn(u32) -> (S, R) + Sync,
    S: FnMut(Duration) -> Result<(), BarrierError> + Send,
    R: FnMut() -> Vec<u32> + Send,
{
    assert!(threads > 0, "need at least one thread");
    assert!(
        step_timeout > Duration::ZERO,
        "step timeout must be positive"
    );
    const MAX_ATTEMPTS: u32 = 25;
    let phases: Vec<AtomicU32> = (0..threads).map(|_| AtomicU32::new(0)).collect();
    let completed: Vec<AtomicU32> = (0..threads).map(|_| AtomicU32::new(0)).collect();
    let excluded: Vec<AtomicBool> = (0..threads).map(|_| AtomicBool::new(false)).collect();
    let max_skew = AtomicU32::new(0);
    let abort = AtomicBool::new(false);
    let remaining = AtomicU32::new(threads);
    let progress = AtomicU64::new(0);
    let timeouts = AtomicU64::new(0);
    let evictions = AtomicU64::new(0);
    let gave_up = AtomicU32::new(0);
    let poisoned = AtomicBool::new(false);
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let phases = &phases;
            let completed = &completed;
            let excluded = &excluded;
            let max_skew = &max_skew;
            let abort = &abort;
            let remaining = &remaining;
            let progress = &progress;
            let timeouts = &timeouts;
            let evictions = &evictions;
            let gave_up = &gave_up;
            let poisoned = &poisoned;
            let (mut step, mut rescue) = make(tid);
            s.spawn(move || {
                let _guard = WorkerGuard { abort, remaining };
                'episodes: for e in 0..episodes {
                    if abort.load(Ordering::Acquire) {
                        break;
                    }
                    let mut done_early = false;
                    match plan.fault(tid, e) {
                        Some(FaultKind::Die(DeathMode::Stall)) => {
                            // Goes silent before arriving: the waiter
                            // drops clean and survivors must evict.
                            excluded[tid as usize].store(true, Ordering::Release);
                            break 'episodes;
                        }
                        Some(FaultKind::Die(DeathMode::Panic)) => {
                            // Register an arrival and abandon it: the
                            // step closure is dropped mid-episode on the
                            // way out, poisoning the barrier. Stepping
                            // until a timeout guarantees the abandoned
                            // arrival did not itself release an episode.
                            while step(Duration::ZERO) == Ok(()) {}
                            excluded[tid as usize].store(true, Ordering::Release);
                            break 'episodes;
                        }
                        Some(FaultKind::SpuriousWake) => {
                            // An extra early crossing attempt; resumes
                            // normally below if it merely times out.
                            phases[tid as usize].store(e + 1, Ordering::Release);
                            match step(Duration::ZERO) {
                                Ok(()) => done_early = true,
                                Err(BarrierError::Timeout) => {
                                    timeouts.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(BarrierError::Poisoned | BarrierError::Diverged) => {
                                    poisoned.store(true, Ordering::Release);
                                    excluded[tid as usize].store(true, Ordering::Release);
                                    break 'episodes;
                                }
                                Err(BarrierError::Evicted) => {
                                    excluded[tid as usize].store(true, Ordering::Release);
                                    break 'episodes;
                                }
                            }
                        }
                        Some(ref f) => apply_transient(f),
                        None => {}
                    }
                    phases[tid as usize].store(e + 1, Ordering::Release);
                    let mut attempts = 0u32;
                    if !done_early {
                        loop {
                            match step(step_timeout) {
                                Ok(()) => break,
                                Err(BarrierError::Timeout) => {
                                    timeouts.fetch_add(1, Ordering::Relaxed);
                                    if abort.load(Ordering::Acquire) {
                                        break 'episodes;
                                    }
                                    attempts += 1;
                                    if attempts % 2 == 0 {
                                        // Peers are overdue: evict whoever is
                                        // wedging the episode. Mark them
                                        // excluded *before* our own arrival
                                        // can release any later episode, so
                                        // the skew check below never compares
                                        // against an evictee.
                                        for t in rescue() {
                                            excluded[t as usize].store(true, Ordering::Release);
                                            evictions.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                    if attempts >= MAX_ATTEMPTS {
                                        gave_up.fetch_add(1, Ordering::Relaxed);
                                        excluded[tid as usize].store(true, Ordering::Release);
                                        break 'episodes;
                                    }
                                }
                                Err(BarrierError::Poisoned | BarrierError::Diverged) => {
                                    poisoned.store(true, Ordering::Release);
                                    excluded[tid as usize].store(true, Ordering::Release);
                                    break 'episodes;
                                }
                                Err(BarrierError::Evicted) => {
                                    excluded[tid as usize].store(true, Ordering::Release);
                                    break 'episodes;
                                }
                            }
                        }
                    }
                    progress.fetch_add(1, Ordering::Relaxed);
                    completed[tid as usize].fetch_add(1, Ordering::Relaxed);
                    if abort.load(Ordering::Acquire) {
                        break;
                    }
                    for (q, ph) in phases.iter().enumerate() {
                        if excluded[q].load(Ordering::Acquire)
                            || plan
                                .death_episode(q as u32)
                                .is_some_and(|k| e + 1 >= k)
                        {
                            continue; // dead or evicted; phase frozen
                        }
                        let ph = ph.load(Ordering::Acquire);
                        let skew = ph.abs_diff(e + 1);
                        max_skew.fetch_max(skew, Ordering::Relaxed);
                        assert!(
                            skew <= 1,
                            "lockstep violated among survivors: tid {tid} at episode {e} saw phase {ph}"
                        );
                    }
                }
            });
        }
        let (abort, remaining, progress) = (&abort, &remaining, &progress);
        let stall_limit = (step_timeout * 8 * MAX_ATTEMPTS).max(Duration::from_secs(5));
        s.spawn(move || watchdog(abort, remaining, progress, stall_limit));
    });
    let planned_deaths = (0..threads)
        .filter(|&t| plan.death_episode(t).is_some_and(|k| k < episodes))
        .count() as u32;
    let excluded_count = excluded
        .iter()
        .filter(|x| x.load(Ordering::Acquire))
        .count() as u32;
    ChaosReport {
        threads,
        episodes,
        completed: completed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        survivors: threads - excluded_count,
        planned_deaths,
        evictions: evictions.load(Ordering::Relaxed),
        timeouts: timeouts.load(Ordering::Relaxed),
        gave_up: gave_up.load(Ordering::Relaxed),
        poisoned: poisoned.load(Ordering::Acquire),
        elapsed: start.elapsed(),
        max_skew: max_skew.load(Ordering::Relaxed),
    }
}

/// What [`churn_torture`] asks a worker closure to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// One bounded barrier crossing (`wait_timeout`).
    Step,
    /// One bounded rejoin attempt (`rejoin_within`); returns `Ok(true)`
    /// once readmitted, `Ok(false)` if the waiter was never evicted.
    Revive,
}

/// Outcome of a [`churn_torture`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// Threads that started.
    pub threads: u32,
    /// Barrier crossings each thread completed.
    pub crossings: Vec<u32>,
    /// Rejoins the plan scheduled (stall deaths with a comeback).
    pub planned_rejoins: u32,
    /// Successful rejoins observed — scheduled comebacks plus any
    /// false-positive evictions healed through the same protocol.
    pub rejoins: u32,
    /// Evictions performed by rescue closures.
    pub evictions: u64,
    /// Total timeout results observed (each is retried).
    pub timeouts: u64,
    /// Threads that exhausted a retry budget and left mid-episode.
    pub gave_up: u32,
    /// Whether the barrier ended up poisoned.
    pub poisoned: bool,
    /// `probe()` sampled once at full membership — after every
    /// scheduled rejoin landed, before the run wound down. `None` if
    /// the run aborted (poison, give-up) before reaching that state.
    pub probe_at_full: Option<u32>,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
    /// Maximum phase skew observed among continuously-live threads.
    pub max_skew: u32,
}

/// Soak-tests a barrier under a churn plan: scripted deaths *and*
/// scripted comebacks, exercising the full detect → detach → rejoin
/// loop end to end.
///
/// `make(tid)` builds each thread's closure pair:
///
/// * **worker** `FnMut(ChurnOp, Duration)`: [`ChurnOp::Step`] performs
///   one bounded crossing (`wait_timeout(d).map(|()| true)`),
///   [`ChurnOp::Revive`] one bounded rejoin attempt (`rejoin_within(d)`).
///   One closure handles both so it can own the waiter.
/// * **rescue** `FnMut() -> Vec<u32>`: detaches the stragglers wedging
///   the barrier (e.g. `|| barrier.detach_stragglers()` or
///   `|| barrier.evict_stragglers()`) and returns their ids.
///
/// A thread whose plan schedules `Die(Stall)` with a rejoin episode
/// goes silent, waits until the surviving cohort has crossed that many
/// episodes (survivors detach it via rescue in the meantime), then
/// drives the rejoin protocol and resumes crossing. Threads the rescue
/// closures detach *by mistake* (slow but alive) heal the same way:
/// an `Evicted` step result flows into `Revive` attempts.
///
/// Unlike [`chaos_torture`], the run is not bounded by an episode
/// count: workers cross until a controller observes that (a) every
/// scheduled rejoin has landed and (b) every continuously-live thread
/// has crossed at least `min_episodes`. At that moment the controller
/// samples `probe()` — membership is provably full, so probing
/// e.g. `critical_depth()` measures the *healed* shape — and stops the
/// run. Threads that leave first are detached by the remaining ones'
/// rescues, so wind-down cannot wedge.
///
/// # Panics
///
/// Panics if two continuously-live threads drift more than one episode
/// apart, or (via the watchdog) if nothing progresses for far longer
/// than `step_timeout`.
pub fn churn_torture<F, W, R, P>(
    threads: u32,
    min_episodes: u32,
    plan: FaultPlan,
    step_timeout: Duration,
    probe: P,
    make: F,
) -> ChurnReport
where
    F: Fn(u32) -> (W, R) + Sync,
    W: FnMut(ChurnOp, Duration) -> Result<bool, BarrierError> + Send,
    R: FnMut() -> Vec<u32> + Send,
    P: Fn() -> u32 + Sync,
{
    assert!(threads > 0, "need at least one thread");
    assert!(
        step_timeout > Duration::ZERO,
        "step timeout must be positive"
    );
    const MAX_ATTEMPTS: u32 = 25;
    let phases: Vec<AtomicU32> = (0..threads).map(|_| AtomicU32::new(0)).collect();
    let crossings: Vec<AtomicU32> = (0..threads).map(|_| AtomicU32::new(0)).collect();
    let excluded: Vec<AtomicBool> = (0..threads).map(|_| AtomicBool::new(false)).collect();
    let rejoined: Vec<AtomicBool> = (0..threads).map(|_| AtomicBool::new(false)).collect();
    let max_skew = AtomicU32::new(0);
    let abort = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let remaining = AtomicU32::new(threads);
    let progress = AtomicU64::new(0);
    let timeouts = AtomicU64::new(0);
    let evictions = AtomicU64::new(0);
    let gave_up = AtomicU32::new(0);
    let poisoned = AtomicBool::new(false);
    let probe_at_full: AtomicU32 = AtomicU32::new(u32::MAX);
    let probed = AtomicBool::new(false);
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let phases = &phases;
            let crossings = &crossings;
            let excluded = &excluded;
            let rejoined = &rejoined;
            let max_skew = &max_skew;
            let abort = &abort;
            let stop = &stop;
            let remaining = &remaining;
            let progress = &progress;
            let timeouts = &timeouts;
            let evictions = &evictions;
            let gave_up = &gave_up;
            let poisoned = &poisoned;
            let (mut worker, mut rescue) = make(tid);
            let plan = &plan;
            s.spawn(move || {
                let _guard = WorkerGuard { abort, remaining };
                let death = plan.death_episode(tid);
                let comeback = plan.rejoin_episode(tid);
                let mut died = false;
                let mut e = 0u32;
                // Drives rejoin attempts until readmitted. Returns
                // false when the run is winding down instead.
                let revive = |worker: &mut W| -> Result<bool, ()> {
                    loop {
                        if abort.load(Ordering::Acquire) || stop.load(Ordering::Acquire) {
                            return Ok(false);
                        }
                        match worker(ChurnOp::Revive, step_timeout) {
                            Ok(true) => return Ok(true),
                            Ok(false) => {
                                // Not evicted yet: the survivors'
                                // rescue will detach us shortly.
                                std::thread::sleep(Duration::from_micros(500));
                            }
                            Err(BarrierError::Timeout) => {
                                timeouts.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(BarrierError::Poisoned | BarrierError::Diverged) => {
                                poisoned.store(true, Ordering::Release);
                                return Err(());
                            }
                            Err(BarrierError::Evicted) => {
                                // Evicted mid-attempt; just try again.
                            }
                        }
                    }
                };
                'run: loop {
                    if abort.load(Ordering::Acquire) || stop.load(Ordering::Acquire) {
                        break;
                    }
                    if !died && death == Some(e) {
                        died = true;
                        excluded[tid as usize].store(true, Ordering::Release);
                        match plan.fault(tid, e) {
                            Some(FaultKind::Die(DeathMode::Panic)) => {
                                // Abandon a registered arrival on the
                                // way out: the drop poisons the barrier.
                                while worker(ChurnOp::Step, Duration::ZERO) == Ok(true) {}
                                break 'run;
                            }
                            _ => {
                                let Some(back) = comeback else {
                                    break 'run; // dead for good, clean drop
                                };
                                // Dormant until the survivors have
                                // crossed the comeback episode.
                                loop {
                                    if abort.load(Ordering::Acquire)
                                        || stop.load(Ordering::Acquire)
                                        || poisoned.load(Ordering::Acquire)
                                    {
                                        break 'run;
                                    }
                                    let front = phases
                                        .iter()
                                        .map(|p| p.load(Ordering::Acquire))
                                        .max()
                                        .unwrap_or(0);
                                    if front >= back {
                                        break;
                                    }
                                    std::thread::sleep(Duration::from_micros(500));
                                }
                                match revive(&mut worker) {
                                    Ok(true) => {
                                        rejoined[tid as usize].store(true, Ordering::Release);
                                    }
                                    Ok(false) | Err(()) => break 'run,
                                }
                                // Fall through: the next Step completes
                                // the granting episode and crossing
                                // resumes (skew-excluded from here on).
                            }
                        }
                    } else if let Some(f) = plan.fault(tid, e) {
                        if !matches!(f, FaultKind::Die(_)) {
                            apply_transient(&f);
                        }
                    }
                    if !excluded[tid as usize].load(Ordering::Acquire) {
                        phases[tid as usize].store(e + 1, Ordering::Release);
                    }
                    let mut attempts = 0u32;
                    loop {
                        match worker(ChurnOp::Step, step_timeout) {
                            Ok(_) => break,
                            Err(BarrierError::Timeout) => {
                                timeouts.fetch_add(1, Ordering::Relaxed);
                                if abort.load(Ordering::Acquire) {
                                    break 'run;
                                }
                                attempts += 1;
                                // During wind-down rescue on every
                                // timeout so leavers cannot wedge us.
                                let cadence = if stop.load(Ordering::Acquire) { 1 } else { 2 };
                                if attempts % cadence == 0 {
                                    for t in rescue() {
                                        excluded[t as usize].store(true, Ordering::Release);
                                        evictions.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                if attempts >= MAX_ATTEMPTS {
                                    gave_up.fetch_add(1, Ordering::Relaxed);
                                    excluded[tid as usize].store(true, Ordering::Release);
                                    break 'run;
                                }
                            }
                            Err(BarrierError::Poisoned | BarrierError::Diverged) => {
                                poisoned.store(true, Ordering::Release);
                                excluded[tid as usize].store(true, Ordering::Release);
                                break 'run;
                            }
                            Err(BarrierError::Evicted) => {
                                // A peer's rescue detached us while we
                                // were merely slow: heal by rejoining.
                                excluded[tid as usize].store(true, Ordering::Release);
                                if stop.load(Ordering::Acquire) {
                                    break 'run;
                                }
                                match revive(&mut worker) {
                                    Ok(true) => {
                                        rejoined[tid as usize].store(true, Ordering::Release);
                                        attempts = 0;
                                    }
                                    Ok(false) | Err(()) => break 'run,
                                }
                            }
                        }
                    }
                    progress.fetch_add(1, Ordering::Relaxed);
                    crossings[tid as usize].fetch_add(1, Ordering::Relaxed);
                    if !excluded[tid as usize].load(Ordering::Acquire) {
                        for (q, ph) in phases.iter().enumerate() {
                            if excluded[q].load(Ordering::Acquire)
                                || plan.death_episode(q as u32).is_some_and(|k| e + 1 >= k)
                            {
                                continue; // churned or evicted; phase frozen
                            }
                            let ph = ph.load(Ordering::Acquire);
                            let skew = ph.abs_diff(e + 1);
                            max_skew.fetch_max(skew, Ordering::Relaxed);
                            assert!(
                                skew <= 1,
                                "lockstep violated among live threads: tid {tid} at episode {e} saw phase {ph}"
                            );
                        }
                    }
                    e += 1;
                }
            });
        }
        // Controller: stop once healed and soaked; sample the probe at
        // provably full membership.
        {
            let (abort, stop, remaining) = (&abort, &stop, &remaining);
            let (crossings, rejoined, poisoned) = (&crossings, &rejoined, &poisoned);
            let (probed, probe_at_full, probe) = (&probed, &probe_at_full, &probe);
            let plan = &plan;
            s.spawn(move || loop {
                if remaining.load(Ordering::Acquire) == 0 || abort.load(Ordering::Acquire) {
                    return;
                }
                if poisoned.load(Ordering::Acquire) {
                    stop.store(true, Ordering::Release);
                    return;
                }
                let rejoins_met = (0..threads)
                    .filter(|&t| plan.rejoin_episode(t).is_some())
                    .all(|t| rejoined[t as usize].load(Ordering::Acquire));
                let soaked = (0..threads)
                    .filter(|&t| plan.death_episode(t).is_none())
                    .all(|t| crossings[t as usize].load(Ordering::Relaxed) >= min_episodes);
                if rejoins_met && soaked {
                    probe_at_full.store(probe(), Ordering::Release);
                    probed.store(true, Ordering::Release);
                    stop.store(true, Ordering::Release);
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            });
        }
        let (abort, remaining, progress) = (&abort, &remaining, &progress);
        let stall_limit = (step_timeout * 8 * MAX_ATTEMPTS).max(Duration::from_secs(5));
        s.spawn(move || watchdog(abort, remaining, progress, stall_limit));
    });
    let planned_rejoins = (0..threads)
        .filter(|&t| plan.rejoin_episode(t).is_some())
        .count() as u32;
    ChurnReport {
        threads,
        crossings: crossings
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        planned_rejoins,
        rejoins: rejoined
            .iter()
            .filter(|r| r.load(Ordering::Acquire))
            .count() as u32,
        evictions: evictions.load(Ordering::Relaxed),
        timeouts: timeouts.load(Ordering::Relaxed),
        gave_up: gave_up.load(Ordering::Relaxed),
        poisoned: poisoned.load(Ordering::Acquire),
        probe_at_full: probed
            .load(Ordering::Acquire)
            .then(|| probe_at_full.load(Ordering::Acquire)),
        elapsed: start.elapsed(),
        max_skew: max_skew.load(Ordering::Relaxed),
    }
}

/// Times `episodes` barrier crossings across `threads` threads without
/// the (cache-hostile) lockstep assertions — a quick throughput probe
/// for examples and benches. Returns mean wall time per episode.
pub fn time_episodes<F, G>(threads: u32, episodes: u32, make: F) -> Duration
where
    F: Fn(u32) -> G + Sync,
    G: FnMut() + Send,
{
    let counter = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let counter = &counter;
            let mut step = make(tid);
            s.spawn(move || {
                for _ in 0..episodes {
                    step();
                }
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), threads as u64);
    start.elapsed() / episodes.max(1)
}

/// [`lockstep_torture`] over the unified [`Barrier`] trait: builds one
/// waiter per thread through the trait object and steps each with
/// `wait_timeout(step)`. If the barrier carries a trace sink
/// ([`crate::barrier::AnyBarrier::attach`] works too, but this path is
/// for plain trait objects), attach writers before calling.
pub fn lockstep_torture_on<B: Barrier + ?Sized>(
    barrier: &B,
    episodes: u32,
    stagger: Stagger,
    step: Duration,
) -> TortureReport {
    lockstep_torture(barrier.threads(), episodes, stagger, |tid| {
        let mut w = barrier.waiter(tid);
        move || w.wait_timeout(step)
    })
}

/// [`lockstep_torture`] driven by a shared-seam work model instead of
/// an ad-hoc [`Stagger`]: before each crossing, thread `tid` burns
/// `model.work_iters(episode, tid, iters_per_us)` of real CPU work.
///
/// Because [`combar_work::WorkModel`] is a pure function of
/// `(seed, tid, episode)`, this reproduces *exactly* the imbalance
/// shape (systemic, evolving, heavy-tailed…) that the simulator and
/// the DES fault timelines study — the same seed stresses the same
/// "slow" threads here, on real barriers, that
/// `FaultTimeline::from_work_model` stalls in virtual time.
///
/// # Panics
///
/// Panics if `model.participants()` disagrees with the barrier's
/// thread count, or on any lockstep violation (as
/// [`lockstep_torture`]).
pub fn work_torture_on<B: Barrier + ?Sized>(
    barrier: &B,
    episodes: u32,
    model: &combar_work::WorkModel,
    iters_per_us: f64,
    step: Duration,
) -> TortureReport {
    assert_eq!(
        model.participants(),
        barrier.threads(),
        "work model sized for a different participant count"
    );
    lockstep_torture(barrier.threads(), episodes, Stagger::None, |tid| {
        let mut w = barrier.waiter(tid);
        let model = model.clone();
        let mut e = 0u32;
        move || {
            combar_work::busy_work(model.work_iters(e, tid, iters_per_us));
            let r = w.wait_timeout(step);
            if r.is_ok() {
                e += 1;
            }
            r
        }
    })
}

/// [`chaos_torture`] over the unified [`Barrier`] trait: steps are
/// bounded waits, rescues are `evict_stragglers` through the trait.
pub fn chaos_torture_on<B: Barrier + ?Sized>(
    barrier: &B,
    episodes: u32,
    plan: FaultPlan,
    step_timeout: Duration,
) -> ChaosReport {
    chaos_torture(barrier.threads(), episodes, plan, step_timeout, |tid| {
        let mut w = barrier.waiter(tid);
        (
            move |d: Duration| w.wait_timeout(d),
            move || barrier.evict_stragglers(),
        )
    })
}

/// [`churn_torture`] over the unified [`Barrier`] trait: crossings are
/// bounded waits, revivals are `rejoin_within`, rescues and the
/// full-membership probe go through the trait's capability methods.
pub fn churn_torture_on<B: Barrier + ?Sized>(
    barrier: &B,
    min_episodes: u32,
    plan: FaultPlan,
    step_timeout: Duration,
) -> ChurnReport {
    churn_torture(
        barrier.threads(),
        min_episodes,
        plan,
        step_timeout,
        || barrier.live_count(),
        |tid| {
            let mut w = barrier.waiter(tid);
            (
                move |op, d| match op {
                    ChurnOp::Step => w.wait_timeout(d).map(|()| true),
                    ChurnOp::Revive => w.rejoin_within(d),
                },
                move || barrier.evict_stragglers(),
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::central::CentralBarrier;
    use crate::dynamic::DynamicBarrier;
    use crate::tree::TreeBarrier;
    use combar_chaos::ChaosConfig;

    const STEP: Duration = Duration::from_secs(5);

    #[test]
    fn torture_passes_for_correct_barriers() {
        let b = CentralBarrier::new(3);
        let rep = lockstep_torture(3, 80, Stagger::Mixed, |_| {
            let mut w = b.waiter();
            move || w.wait_timeout(STEP)
        });
        assert_eq!(rep.episodes, 80);
        assert!(rep.max_skew <= 1);
        assert!(rep.per_episode() > Duration::ZERO);
    }

    #[test]
    fn torture_with_slow_thread_drives_dynamic_swaps() {
        let b = DynamicBarrier::mcs(6, 2);
        lockstep_torture(6, 40, Stagger::SlowThread(5), |tid| {
            let mut w = b.waiter(tid);
            move || w.wait_timeout(STEP)
        });
        assert!(b.swap_count() > 0);
    }

    /// The shared-seam work model drives real threads: a systemic
    /// model keeps the same threads slow every episode, which dynamic
    /// placement detects and converts into swaps — the runtime-side
    /// mirror of the simulator's balance study.
    #[test]
    fn work_torture_exercises_systemic_imbalance_on_real_barriers() {
        use crate::barrier::Barrier;
        let p = 6u32;
        let model = combar_work::WorkModel::systemic(p, 0x10ad_ba1a, 300.0, 150.0, 10.0);
        let b = DynamicBarrier::mcs(p, 2);
        let rep = work_torture_on(&b as &dyn Barrier, 40, &model, 1.0, STEP);
        assert_eq!(rep.episodes, 40);
        assert!(rep.max_skew <= 1);
        assert!(
            b.swap_count() > 0,
            "persistent model-driven imbalance should trigger swaps"
        );
    }

    #[test]
    #[should_panic(expected = "different participant count")]
    fn work_torture_rejects_mismatched_model() {
        let model = combar_work::WorkModel::uniform(4, 1, 100.0);
        let b = CentralBarrier::new(3);
        let _ = work_torture_on(&b as &dyn crate::barrier::Barrier, 1, &model, 1.0, STEP);
    }

    /// A deliberately broken "barrier" (does nothing) must be caught.
    #[test]
    fn torture_catches_a_broken_barrier() {
        let result = std::panic::catch_unwind(|| {
            lockstep_torture(3, 200, Stagger::Mixed, |_| {
                move || {
                    // no synchronization at all
                    std::hint::spin_loop();
                    Ok(())
                }
            });
        });
        assert!(result.is_err(), "a no-op barrier must fail the torture");
    }

    #[test]
    fn torture_under_transient_chaos() {
        let plan = FaultPlan::new(ChaosConfig {
            seed: 0xC0FFEE,
            stall_prob: 0.1,
            max_stall_us: 200,
            yield_prob: 0.2,
            max_yields: 8,
            spurious_prob: 0.0,
            ..ChaosConfig::default()
        });
        let b = TreeBarrier::combining(4, 2);
        let rep = lockstep_torture(4, 60, Stagger::Chaos(plan), |tid| {
            let mut w = b.waiter(tid);
            move || w.wait_timeout(STEP)
        });
        assert!(rep.max_skew <= 1);
    }

    #[test]
    fn chaos_torture_evicts_a_silent_death_and_survivors_finish() {
        let plan = FaultPlan::quiet(7).with_death(3, 5, DeathMode::Stall);
        let b = CentralBarrier::new(4);
        let rep = chaos_torture(4, 40, plan, Duration::from_millis(100), |tid| {
            let b = &b;
            let mut w = b.waiter_for(tid);
            (move |d| w.wait_timeout(d), move || b.evict_stragglers())
        });
        assert_eq!(rep.planned_deaths, 1);
        assert_eq!(rep.survivors, 3);
        assert!(rep.evictions >= 1);
        assert!(!rep.poisoned);
        for t in 0..3 {
            assert_eq!(
                rep.completed[t], 40,
                "survivor {t} must finish every episode"
            );
        }
        assert_eq!(
            rep.completed[3], 5,
            "the dead thread stopped at its death episode"
        );
    }

    #[test]
    fn chaos_torture_panic_death_poisons_the_run() {
        let plan = FaultPlan::quiet(11).with_death(2, 4, DeathMode::Panic);
        let b = CentralBarrier::new(3);
        let rep = chaos_torture(3, 30, plan, Duration::from_millis(30), |tid| {
            let b = &b;
            let mut w = b.waiter_for(tid);
            (move |d| w.wait_timeout(d), move || b.evict_stragglers())
        });
        assert!(rep.poisoned, "an abandoned arrival must poison the barrier");
        assert!(rep.survivors <= 2);
    }

    #[test]
    fn churn_torture_heals_a_scheduled_comeback() {
        let plan = FaultPlan::quiet(13).with_churn(1, 6, DeathMode::Stall, 14);
        let b = CentralBarrier::new(4);
        let rep = churn_torture(
            4,
            30,
            plan,
            Duration::from_millis(50),
            || b.live_count(),
            |tid| {
                let b = &b;
                let mut w = b.waiter_for(tid);
                (
                    move |op, d| match op {
                        ChurnOp::Step => w.wait_timeout(d).map(|()| true),
                        ChurnOp::Revive => w.rejoin_within(d),
                    },
                    move || b.evict_stragglers(),
                )
            },
        );
        assert_eq!(rep.planned_rejoins, 1);
        assert!(rep.rejoins >= 1, "the scheduled comeback must land");
        assert!(!rep.poisoned);
        assert_eq!(rep.gave_up, 0);
        assert_eq!(
            rep.probe_at_full,
            Some(4),
            "at the probe point every thread must be live again"
        );
        assert!(
            rep.evictions >= 1,
            "survivors must have detached the victim"
        );
        for t in [0u32, 2, 3] {
            assert!(
                rep.crossings[t as usize] >= 30,
                "continuously-live thread {t} must soak the minimum"
            );
        }
        assert!(rep.max_skew <= 1);
    }

    #[test]
    fn churn_torture_on_a_tree_restores_full_membership() {
        let plan = FaultPlan::quiet(29)
            .with_churn(2, 4, DeathMode::Stall, 10)
            .with_churn(5, 7, DeathMode::Stall, 16);
        let b = TreeBarrier::combining(6, 2);
        let rep = churn_torture(
            6,
            25,
            plan,
            Duration::from_millis(50),
            || b.live_count(),
            |tid| {
                let b = &b;
                let mut w = b.waiter(tid);
                (
                    move |op, d| match op {
                        ChurnOp::Step => w.wait_timeout(d).map(|()| true),
                        ChurnOp::Revive => w.rejoin_within(d),
                    },
                    move || b.evict_stragglers(),
                )
            },
        );
        assert_eq!(rep.planned_rejoins, 2);
        assert!(rep.rejoins >= 2);
        assert!(!rep.poisoned);
        // Full membership at the probe point is the healed-state check;
        // the wind-down that follows deliberately re-degrades the tree
        // (leavers are detached by whoever exits last), so no
        // post-run shape assertion is meaningful here.
        assert_eq!(rep.probe_at_full, Some(6));
    }

    #[test]
    fn time_episodes_reports_positive_duration() {
        let b = TreeBarrier::combining(2, 2);
        let per = time_episodes(2, 200, |tid| {
            let mut w = b.waiter(tid);
            move || w.wait()
        });
        assert!(per > Duration::ZERO);
    }
}
