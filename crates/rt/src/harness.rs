//! Reusable correctness harness for barrier implementations.
//!
//! The fundamental barrier contract is *lockstep*: when any thread
//! leaves episode `e`, every thread has entered episode `e` — so no
//! thread is ever more than one episode ahead of another. This module
//! packages that check (with optional adversarial staggering) so the
//! crate's own tests, the integration tests and downstream users can
//! soak-test any barrier — including their own — identically.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How the harness perturbs thread timing to shake out races.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stagger {
    /// No artificial delays: maximal arrival rate.
    None,
    /// Deterministic mix of sleeps and yields, different per
    /// (thread, episode) — the default adversary.
    Mixed,
    /// One designated thread is systematically slow (models systemic
    /// load imbalance; drives dynamic placement's migration).
    SlowThread(u32),
}

/// Outcome of a torture run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TortureReport {
    /// Episodes each thread completed.
    pub episodes: u32,
    /// Threads that participated.
    pub threads: u32,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
    /// Maximum phase skew ever observed (must be ≤ 1 for a correct
    /// barrier; the harness panics otherwise, so a returned report
    /// always carries 1 or 0 here).
    pub max_skew: u32,
}

impl TortureReport {
    /// Mean wall time per episode.
    pub fn per_episode(&self) -> Duration {
        self.elapsed / self.episodes.max(1)
    }
}

/// Runs `threads` threads for `episodes` barrier episodes and asserts
/// the lockstep contract on every crossing.
///
/// `make(tid)` builds each thread's step closure (typically
/// `move || waiter.wait()`).
///
/// # Panics
///
/// Panics (from inside a worker) if any thread observes another more
/// than one episode away — i.e. if the barrier is broken.
pub fn lockstep_torture<F, G>(
    threads: u32,
    episodes: u32,
    stagger: Stagger,
    make: F,
) -> TortureReport
where
    F: Fn(u32) -> G + Sync,
    G: FnMut() + Send,
{
    assert!(threads > 0, "need at least one thread");
    let phases: Vec<AtomicU32> = (0..threads).map(|_| AtomicU32::new(0)).collect();
    let max_skew = AtomicU32::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let phases = &phases;
            let max_skew = &max_skew;
            let mut step = make(tid);
            s.spawn(move || {
                for e in 0..episodes {
                    match stagger {
                        Stagger::None => {}
                        Stagger::Mixed => match (e as u64 + tid as u64 * 13) % 7 {
                            0 => std::thread::sleep(Duration::from_micros(150)),
                            3 => std::thread::yield_now(),
                            _ => {}
                        },
                        Stagger::SlowThread(slow) => {
                            if tid == slow {
                                std::thread::sleep(Duration::from_micros(800));
                            }
                        }
                    }
                    phases[tid as usize].store(e + 1, Ordering::Release);
                    step();
                    for q in phases {
                        let ph = q.load(Ordering::Acquire);
                        let skew = ph.abs_diff(e + 1);
                        max_skew.fetch_max(skew, Ordering::Relaxed);
                        assert!(
                            skew <= 1,
                            "lockstep violated: tid {tid} at episode {e} saw phase {ph}"
                        );
                    }
                }
            });
        }
    });
    TortureReport {
        episodes,
        threads,
        elapsed: start.elapsed(),
        max_skew: max_skew.load(Ordering::Relaxed),
    }
}

/// Times `episodes` barrier crossings across `threads` threads without
/// the (cache-hostile) lockstep assertions — a quick throughput probe
/// for examples and benches. Returns mean wall time per episode.
pub fn time_episodes<F, G>(threads: u32, episodes: u32, make: F) -> Duration
where
    F: Fn(u32) -> G + Sync,
    G: FnMut() + Send,
{
    let counter = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let counter = &counter;
            let mut step = make(tid);
            s.spawn(move || {
                for _ in 0..episodes {
                    step();
                }
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), threads as u64);
    start.elapsed() / episodes.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::central::CentralBarrier;
    use crate::dynamic::DynamicBarrier;
    use crate::tree::TreeBarrier;

    #[test]
    fn torture_passes_for_correct_barriers() {
        let b = CentralBarrier::new(3);
        let rep = lockstep_torture(3, 80, Stagger::Mixed, |_| {
            let mut w = b.waiter();
            move || w.wait()
        });
        assert_eq!(rep.episodes, 80);
        assert!(rep.max_skew <= 1);
        assert!(rep.per_episode() > Duration::ZERO);
    }

    #[test]
    fn torture_with_slow_thread_drives_dynamic_swaps() {
        let b = DynamicBarrier::mcs(6, 2);
        lockstep_torture(6, 40, Stagger::SlowThread(5), |tid| {
            let mut w = b.waiter(tid);
            move || w.wait()
        });
        assert!(b.swap_count() > 0);
    }

    /// A deliberately broken "barrier" (does nothing) must be caught.
    #[test]
    fn torture_catches_a_broken_barrier() {
        let result = std::panic::catch_unwind(|| {
            lockstep_torture(3, 200, Stagger::Mixed, |_| move || {
                // no synchronization at all
                std::hint::spin_loop();
            });
        });
        assert!(result.is_err(), "a no-op barrier must fail the torture");
    }

    #[test]
    fn time_episodes_reports_positive_duration() {
        let b = TreeBarrier::combining(2, 2);
        let per = time_episodes(2, 200, |tid| {
            let mut w = b.waiter(tid);
            move || w.wait()
        });
        assert!(per > Duration::ZERO);
    }
}
