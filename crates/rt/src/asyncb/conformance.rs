//! Conformance checks at *logical* scale.
//!
//! The threaded harness in [`crate::conformance`] spawns one OS thread
//! per participant, which caps honest p at the low hundreds. These
//! drivers express the same contracts — release-after-all-arrivals,
//! lockstep reuse, membership churn, the timeout/resume contract — as
//! tasks on the in-tree [`Executor`], so a 4096-participant cell runs
//! on four driver threads.
//!
//! The ordering check is O(1) per crossing instead of O(p): every
//! participant increments a shared arrival total *before* waiting, and
//! asserts `total ≥ (e + 1) · p` *after* episode `e` releases. A
//! premature release (any peer not yet arrived) makes the inequality
//! fail for whoever crossed early; p² stamp scans would drown a
//! 4096-seat debug run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::{AsyncBarrier, Executor, Timer};
use crate::error::BarrierError;
use crate::spin::Deadline;

/// Shape of one logical-scale conformance cell.
#[derive(Debug, Clone, Copy)]
pub struct LogicalConfig {
    /// Logical participants.
    pub p: u32,
    /// Arrival shards.
    pub shards: u32,
    /// Driver OS threads.
    pub drivers: usize,
    /// Barrier episodes each participant crosses.
    pub episodes: u32,
}

impl LogicalConfig {
    /// A cell of `p` logical participants on 4 drivers / 4 shards.
    pub fn logical(p: u32, episodes: u32) -> Self {
        Self {
            p,
            shards: 4,
            drivers: 4,
            episodes,
        }
    }
}

const IDLE_BUDGET: Duration = Duration::from_secs(240);

fn drain(exec: &Executor, what: &str) {
    assert!(
        exec.wait_idle(Deadline::after(IDLE_BUDGET)),
        "{what}: executor failed to drain within {IDLE_BUDGET:?}"
    );
    assert_eq!(exec.panics(), 0, "{what}: task panicked");
}

/// Release-after-all-arrivals plus lockstep reuse, at logical scale.
///
/// # Panics
///
/// Panics when the contract is violated or the run fails to drain.
pub fn check_logical_contract(cfg: LogicalConfig) {
    let b = AsyncBarrier::new(cfg.p, cfg.shards);
    let exec = Executor::new(cfg.drivers);
    let arrivals = Arc::new(AtomicU64::new(0));
    for tid in 0..cfg.p {
        let b = b.clone();
        let arrivals = Arc::clone(&arrivals);
        let p = u64::from(cfg.p);
        let episodes = cfg.episodes;
        exec.spawn(async move {
            let mut w = b.waiter_for(tid);
            for e in 0..episodes {
                arrivals.fetch_add(1, Ordering::AcqRel);
                w.wait_async().await.unwrap();
                let seen = arrivals.load(Ordering::Acquire);
                assert!(
                    seen >= u64::from(e + 1) * p,
                    "tid {tid} released from episode {e} after only {seen} arrivals"
                );
            }
        });
    }
    drain(&exec, "logical contract");
    assert_eq!(b.epoch(), cfg.episodes, "exactly one release per episode");
    assert!(!b.is_poisoned());
}

/// Membership churn at logical scale: a quarter of the seats leave
/// mid-run and rejoin at the next boundary; every crossing still
/// releases and nothing wedges or poisons.
///
/// A rejoiner is not part of epochs it was absent from, so after the
/// churn point its epoch numbering may trail its peers by one —
/// sessions therefore end with a graceful [`AsyncWaiter::leave`]
/// (exactly how a real session ends), letting stragglers finish among
/// the shrinking membership instead of waiting on departed peers.
///
/// # Panics
///
/// Panics when a participant observes an error or the run fails to
/// drain.
pub fn check_logical_churn(cfg: LogicalConfig) {
    let b = AsyncBarrier::new(cfg.p, cfg.shards);
    let exec = Executor::new(cfg.drivers);
    let churn_at = cfg.episodes / 2;
    for tid in 0..cfg.p {
        let b = b.clone();
        let episodes = cfg.episodes;
        exec.spawn(async move {
            let mut w = b.waiter_for(tid);
            for e in 0..episodes {
                if e == churn_at && tid % 4 == 1 {
                    w.leave();
                    assert_eq!(
                        w.wait_async().await,
                        Err(BarrierError::Evicted),
                        "a departed seat must not cross"
                    );
                    assert_eq!(w.rejoin(), Ok(true));
                }
                w.wait_async().await.unwrap();
            }
            w.leave();
        });
    }
    drain(&exec, "logical churn");
    assert_eq!(b.live_count(), 0, "every session departed");
    assert!(b.epoch() >= cfg.episodes);
    assert!(!b.is_poisoned());
}

/// The timeout/resume contract at logical scale: one participant's
/// bounded wait times out (its deadline is its own, not a driver
/// thread's), the arrival stays registered, and the same episode
/// resumes and completes once the held-back peers arrive.
///
/// # Panics
///
/// Panics when the contract is violated or the run fails to drain.
pub fn check_logical_timeout(cfg: LogicalConfig) {
    let b = AsyncBarrier::new(cfg.p, cfg.shards);
    let exec = Executor::new(cfg.drivers);
    let timer = Timer::new();
    let timed_out = Arc::new(AtomicBool::new(false));
    for tid in 0..cfg.p {
        let b = b.clone();
        let timer = timer.clone();
        let timed_out = Arc::clone(&timed_out);
        let episodes = cfg.episodes;
        exec.spawn(async move {
            let mut w = b.waiter_for(tid);
            if tid == 0 {
                let short = Instant::now() + Duration::from_millis(10);
                assert_eq!(
                    w.wait_deadline(short, &timer).await,
                    Err(BarrierError::Timeout),
                    "peers are held back; the bounded wait must expire"
                );
                timed_out.store(true, Ordering::Release);
                let long = Instant::now() + IDLE_BUDGET;
                assert_eq!(
                    w.wait_deadline(long, &timer).await,
                    Ok(()),
                    "the timed-out arrival must resume the same episode"
                );
            } else {
                // Hold back until the timeout was observed, so the
                // short deadline reliably fires first.
                while !timed_out.load(Ordering::Acquire) {
                    timer.sleep(Duration::from_millis(2)).await;
                }
                w.wait_async().await.unwrap();
            }
            // Reuse after the stutter: ordinary episodes still work.
            for _ in 0..episodes.min(5) {
                w.wait_async().await.unwrap();
            }
        });
    }
    drain(&exec, "logical timeout");
    assert!(!b.is_poisoned());
}
