//! The minimal in-tree executor, timer, and `block_on` bridge for the
//! async epoch runtime.
//!
//! The design constraint is the ISSUE's: ≥ 1M logical participants
//! over ≤ 8 *driver* OS threads, with zero dependencies. That rules
//! out anything clever — this is the textbook shared-injector
//! executor:
//!
//! * a [`Task`] is `Arc<{Mutex<Option<BoxFuture>>, queued flag}>`; its
//!   [`std::task::Wake`] impl re-enqueues it on the shared run queue
//!   (the `queued` flag dedupes concurrent wakes, so a batch release
//!   waking the same task through several stale wakers costs one
//!   requeue);
//! * driver threads pop and poll; a panicking task is counted and
//!   dropped, never unwound into the driver loop;
//! * [`Executor::kill_driver`] makes one driver exit cooperatively —
//!   the chaos hook for "driver-thread death"; queued tasks survive in
//!   the injector and drain on the remaining drivers;
//! * [`Timer`] is one hierarchical timing wheel
//!   ([`combar_des::TickWheel`], ~1 ms ticks) + one thread delivering
//!   deadline wakes — the recovery path that turns a *lost* wakeup
//!   into a bounded retry instead of a hang, and the pacing primitive
//!   the session multiplexer sleeps on; insertion is O(1) where the
//!   old binary heap paid O(log n) per deadline at 10⁶ sleepers;
//! * [`block_on`] adapts any future to the synchronous
//!   [`crate::barrier::Waiter`] contract with a Mutex+Condvar parker,
//!   re-polling at the deadline so a bounded wait observes
//!   [`crate::BarrierError::Timeout`] even if no wake ever arrives.
//!
//! Everything here uses plain `std` primitives, *not* the
//! [`crate::sync`] facade: the executor is scheduling machinery, not
//! barrier protocol state, and model-checked fixtures drive
//! [`super::AsyncWaiter::poll_wait`] manually on virtual threads
//! instead of through an executor.

use std::collections::VecDeque;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

use crate::spin::Deadline;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// One spawned logical participant: the future plus its requeue state.
struct Task {
    fut: Mutex<Option<BoxFuture>>,
    queued: AtomicBool,
    exec: Weak<Shared>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        // Dedupe: only the first wake between polls enqueues. The
        // driver clears the flag *before* polling, so a wake landing
        // mid-poll re-enqueues and the task is polled again — the
        // standard no-lost-wakeup handshake.
        if self.queued.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(exec) = self.exec.upgrade() {
            exec.push(self);
        }
    }
}

/// State shared by the drivers and the [`Executor`] handle.
struct Shared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    ready: Condvar,
    shutdown: AtomicBool,
    /// Per-driver cooperative kill flags (chaos: driver death).
    kills: Mutex<Vec<bool>>,
    /// Spawned minus completed tasks.
    active: AtomicU64,
    /// Tasks that completed by panicking (counted, not propagated).
    panics: AtomicU64,
    idle: Condvar,
    idle_lock: Mutex<()>,
}

impl Shared {
    fn push(&self, task: Arc<Task>) {
        self.queue.lock().unwrap().push_back(task);
        self.ready.notify_one();
    }
}

/// A fixed pool of driver threads multiplexing parked logical
/// participants. Dropping the executor shuts the drivers down; any
/// still-pending tasks are dropped with it.
pub struct Executor {
    shared: Arc<Shared>,
    drivers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("drivers", &self.drivers.len())
            .field("active", &self.active())
            .finish()
    }
}

impl Executor {
    /// Starts `drivers` driver threads (at least one).
    pub fn new(drivers: usize) -> Self {
        let drivers = drivers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            kills: Mutex::new(vec![false; drivers]),
            active: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            idle: Condvar::new(),
            idle_lock: Mutex::new(()),
        });
        let handles = (0..drivers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("combar-driver-{i}"))
                    .spawn(move || drive(&shared, i))
                    .expect("spawn driver thread")
            })
            .collect();
        Self {
            shared,
            drivers: handles,
        }
    }

    /// Spawns a logical participant.
    pub fn spawn<F>(&self, fut: F)
    where
        F: Future<Output = ()> + Send + 'static,
    {
        self.shared.active.fetch_add(1, Ordering::AcqRel);
        let task = Arc::new(Task {
            fut: Mutex::new(Some(Box::pin(fut))),
            // Born queued: the initial push must not race a wake.
            queued: AtomicBool::new(true),
            exec: Arc::downgrade(&self.shared),
        });
        self.shared.push(task);
    }

    /// Tasks spawned and not yet completed.
    pub fn active(&self) -> u64 {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Tasks that completed by panicking.
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Acquire)
    }

    /// Number of driver threads still running (not killed).
    pub fn live_drivers(&self) -> usize {
        self.shared
            .kills
            .lock()
            .unwrap()
            .iter()
            .filter(|k| !**k)
            .count()
    }

    /// Cooperatively kills driver `i`: it exits after its current poll.
    /// Tasks it would have run drain on the surviving drivers. Returns
    /// `false` for an unknown or already-killed driver, or when it is
    /// the last driver alive (killing every driver would silently
    /// strand the task set).
    pub fn kill_driver(&self, i: usize) -> bool {
        let mut kills = self.shared.kills.lock().unwrap();
        if i >= kills.len() || kills[i] || kills.iter().filter(|k| !**k).count() <= 1 {
            return false;
        }
        kills[i] = true;
        drop(kills);
        self.shared.ready.notify_all();
        true
    }

    /// Blocks until every spawned task has completed, or the deadline
    /// passes. Returns whether the executor drained.
    pub fn wait_idle(&self, deadline: Deadline) -> bool {
        let mut guard = self.shared.idle_lock.lock().unwrap();
        loop {
            if self.shared.active.load(Ordering::Acquire) == 0 {
                return true;
            }
            let wait = match deadline.remaining() {
                Some(rem) if rem.is_zero() => return false,
                Some(rem) => rem.min(Duration::from_millis(50)),
                None => Duration::from_millis(50),
            };
            let (g, _timed_out) = self.shared.idle.wait_timeout(guard, wait).unwrap();
            guard = g;
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.ready.notify_all();
        for h in self.drivers.drain(..) {
            let _ = h.join();
        }
    }
}

/// One driver thread's loop.
fn drive(shared: &Shared, me: usize) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) || shared.kills.lock().unwrap()[me] {
            return;
        }
        let task = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(t) = q.pop_front() {
                    break t;
                }
                // Re-check the kill flag while parked so a killed idle
                // driver exits promptly.
                drop(q);
                if shared.kills.lock().unwrap()[me] {
                    return;
                }
                q = shared.queue.lock().unwrap();
                let (guard, _t) = shared
                    .ready
                    .wait_timeout(q, Duration::from_millis(20))
                    .unwrap();
                q = guard;
            }
        };
        poll_task(shared, &task);
    }
}

fn poll_task(shared: &Shared, task: &Arc<Task>) {
    // Clear before polling: a wake arriving mid-poll re-enqueues.
    task.queued.store(false, Ordering::Release);
    let waker = Waker::from(Arc::clone(task));
    let mut cx = Context::from_waker(&waker);
    let mut fut_slot = task.fut.lock().unwrap();
    let Some(fut) = fut_slot.as_mut() else {
        return; // stale requeue of a completed task
    };
    let done = match catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx))) {
        Ok(Poll::Ready(())) => true,
        Ok(Poll::Pending) => false,
        Err(_) => {
            shared.panics.fetch_add(1, Ordering::AcqRel);
            true
        }
    };
    if done {
        *fut_slot = None;
        drop(fut_slot);
        if shared.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = shared.idle_lock.lock().unwrap();
            shared.idle.notify_all();
        }
    }
}

/// Timer-wheel tick size: 2²⁰ ns ≈ 1.05 ms. Deadline wakes are
/// re-poll *hints* (the sleeping future re-checks its own clock), so
/// millisecond bucketing costs nothing semantically while making
/// registration O(1) instead of the heap's O(log n).
const TICK_SHIFT: u32 = 20;

/// The deadline store behind the timer lock: a hierarchical timing
/// wheel of coarse future deadlines plus an `imminent` side list with
/// precise `Instant`s.
///
/// Invariant: the wheel only holds entries whose tick is strictly
/// beyond its current tick *at insertion time*; anything at or before
/// current lands in `imminent`. The wheel's current tick only ever
/// advances to the earliest occupied bucket, so a late registration
/// can never be delayed by an earlier advance — it just rides the
/// side list, whose minimum bounds the next sleep exactly.
struct TimerWheel {
    base: Instant,
    wheel: combar_des::TickWheel<(Instant, Waker)>,
    imminent: Vec<(Instant, Waker)>,
    scratch: Vec<(Instant, Waker)>,
}

impl TimerWheel {
    fn new() -> Self {
        Self {
            base: Instant::now(),
            wheel: combar_des::TickWheel::new(),
            imminent: Vec::new(),
            scratch: Vec::new(),
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        (at.saturating_duration_since(self.base).as_nanos() >> TICK_SHIFT) as u64
    }

    fn pending(&self) -> usize {
        self.wheel.len() + self.imminent.len()
    }

    fn insert(&mut self, at: Instant, waker: Waker) {
        let tick = self.tick_of(at);
        if tick <= self.wheel.current_tick() {
            self.imminent.push((at, waker));
        } else {
            self.wheel.insert(tick, (at, waker));
        }
    }

    /// Moves every waker due by `now` into `due` and returns the
    /// earliest pending deadline (a bucket's start is a lower bound
    /// for its entries, so sleeping until it never oversleeps).
    fn collect_due(&mut self, now: Instant, due: &mut Vec<Waker>) -> Option<Instant> {
        let mut i = 0;
        while i < self.imminent.len() {
            if self.imminent[i].0 <= now {
                due.push(self.imminent.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        let now_tick = self.tick_of(now);
        let mut keep = |_: &(Instant, Waker)| true;
        while let Some(tick) = self.wheel.next_event_tick(&mut keep) {
            if tick > now_tick {
                break;
            }
            self.wheel.drain_next(&mut keep, &mut self.scratch);
            for (at, waker) in self.scratch.drain(..) {
                if at <= now {
                    due.push(waker);
                } else {
                    self.imminent.push((at, waker));
                }
            }
        }
        let soon = self.imminent.iter().map(|&(at, _)| at).min();
        let wheel_next = self
            .wheel
            .next_event_tick(&mut keep)
            .map(|tick| self.base + Duration::from_nanos(tick.saturating_mul(1 << TICK_SHIFT)));
        match (soon, wheel_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

struct TimerShared {
    wheel: Mutex<TimerWheel>,
    cv: Condvar,
    shutdown: AtomicBool,
}

/// A deadline service: one thread, one timing wheel, many thousands
/// of *per-logical-participant* deadlines.
///
/// This is the structural fix the ISSUE's timing audit demands: a
/// bounded wait used to mean "this OS thread sleeps until the
/// deadline" ([`crate::spin::Deadline`] driven by the waiting thread's
/// own clock polling), which cannot work when thousands of logical
/// waiters share one driver thread. Here every parked waiter registers
/// `(deadline, waker)` and the timer wakes it for a re-poll; the
/// deadline belongs to the logical participant, never to whichever
/// driver happens to poll it.
///
/// Cloning shares the underlying service. The thread stops when the
/// last clone drops.
#[derive(Clone)]
pub struct Timer {
    shared: Arc<TimerShared>,
    _thread: Arc<TimerThread>,
}

struct TimerThread {
    shared: Arc<TimerShared>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for TimerThread {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        if let Some(h) = self.handle.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Timer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timer")
            .field("pending", &self.shared.wheel.lock().unwrap().pending())
            .finish()
    }
}

impl Default for Timer {
    fn default() -> Self {
        Self::new()
    }
}

impl Timer {
    /// Starts the timer thread.
    pub fn new() -> Self {
        let shared = Arc::new(TimerShared {
            wheel: Mutex::new(TimerWheel::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let s2 = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("combar-timer".into())
            .spawn(move || timer_loop(&s2))
            .expect("spawn timer thread");
        Self {
            _thread: Arc::new(TimerThread {
                shared: Arc::clone(&shared),
                handle: Mutex::new(Some(handle)),
            }),
            shared,
        }
    }

    /// Registers `waker` to be woken at (or shortly after) `at`.
    /// Registering the same waker repeatedly is fine — spurious wakes
    /// are part of the polling contract.
    pub fn register(&self, at: Instant, waker: Waker) {
        self.shared.wheel.lock().unwrap().insert(at, waker);
        self.shared.cv.notify_one();
    }

    /// A future that resolves at `at`.
    pub fn sleep_until(&self, at: Instant) -> Sleep {
        Sleep {
            timer: self.clone(),
            at,
        }
    }

    /// A future that resolves after `dur`.
    pub fn sleep(&self, dur: Duration) -> Sleep {
        self.sleep_until(Instant::now() + dur)
    }
}

fn timer_loop(shared: &TimerShared) {
    let mut due: Vec<Waker> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let wait = {
            let mut wheel = shared.wheel.lock().unwrap();
            let now = Instant::now();
            match wheel.collect_due(now, &mut due) {
                Some(at) => at.saturating_duration_since(now),
                None => Duration::from_millis(50),
            }
        };
        // Wake outside the wheel lock: a wake may synchronously
        // re-register.
        for w in due.drain(..) {
            w.wake();
        }
        if wait > Duration::ZERO {
            let guard = shared.wheel.lock().unwrap();
            let _ = shared.cv.wait_timeout(guard, wait).unwrap();
        }
    }
}

/// Future returned by [`Timer::sleep_until`].
#[derive(Debug)]
pub struct Sleep {
    timer: Timer,
    at: Instant,
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.at {
            return Poll::Ready(());
        }
        self.timer.register(self.at, cx.waker().clone());
        // Re-check: the deadline may have passed between the test and
        // the registration racing the timer thread's sweep.
        if Instant::now() >= self.at {
            return Poll::Ready(());
        }
        Poll::Pending
    }
}

/// Future returned by [`yield_now`]: pending exactly once.
#[derive(Debug, Default)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            return Poll::Ready(());
        }
        self.yielded = true;
        // Wake-before-pending: the task goes straight back on the run
        // queue, behind everything already queued.
        cx.waker().wake_by_ref();
        Poll::Pending
    }
}

/// Cooperatively yields the current task back to its driver.
///
/// The executor is cooperative: a task that loops without awaiting
/// starves every other task on its driver. Long-running multiplexer
/// loops (one task driving many sessions) await this between rounds so
/// peers interleave even on a single driver.
pub fn yield_now() -> YieldNow {
    YieldNow::default()
}

/// The `block_on` parker: one Mutex+Condvar token per blocking call.
struct Parker {
    lock: Mutex<bool>,
    cv: Condvar,
}

impl Wake for Parker {
    fn wake(self: Arc<Self>) {
        *self.lock.lock().unwrap() = true;
        self.cv.notify_one();
    }
}

/// Runs a future to completion on the calling OS thread.
///
/// This is the bridge that lets [`super::AsyncWaiter`] satisfy the
/// synchronous [`crate::barrier::Waiter`] contract: `wait_timeout`
/// builds a deadline-carrying wait future and blocks on it here. The
/// parker re-polls when woken *and* at `deadline`, so a future whose
/// wakeup was lost (or that needs to report [`super::AsyncWaiter`]'s
/// timeout) is guaranteed a poll at the deadline without any timer
/// thread involved.
pub fn block_on<F: Future>(fut: F, deadline: Deadline) -> F::Output {
    let parker = Arc::new(Parker {
        lock: Mutex::new(false),
        cv: Condvar::new(),
    });
    let waker = Waker::from(Arc::clone(&parker));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
            return v;
        }
        let mut notified = parker.lock.lock().unwrap();
        while !*notified {
            match deadline.remaining() {
                Some(rem) if rem.is_zero() => break, // deadline poll
                Some(rem) => {
                    let (g, _t) = parker.cv.wait_timeout(notified, rem).unwrap();
                    notified = g;
                    if deadline.expired() {
                        break;
                    }
                }
                None => {
                    notified = parker.cv.wait(notified).unwrap();
                }
            }
        }
        *notified = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(async { 42 }, Deadline::never()), 42);
    }

    #[test]
    fn executor_runs_tasks_to_completion() {
        let exec = Executor::new(2);
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            exec.spawn(async move {
                hits.fetch_add(1, Ordering::AcqRel);
            });
        }
        assert!(exec.wait_idle(Deadline::after(Duration::from_secs(10))));
        assert_eq!(hits.load(Ordering::Acquire), 64);
        assert_eq!(exec.panics(), 0);
    }

    #[test]
    fn panicking_task_is_counted_not_propagated() {
        let exec = Executor::new(1);
        exec.spawn(async { panic!("task panic") });
        exec.spawn(async {});
        assert!(exec.wait_idle(Deadline::after(Duration::from_secs(10))));
        assert_eq!(exec.panics(), 1);
    }

    #[test]
    fn killed_driver_leaves_tasks_to_survivors() {
        let exec = Executor::new(2);
        assert!(exec.kill_driver(0));
        assert!(!exec.kill_driver(0), "double kill refused");
        assert!(!exec.kill_driver(1), "last driver must survive");
        assert_eq!(exec.live_drivers(), 1);
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..32 {
            let hits = Arc::clone(&hits);
            exec.spawn(async move {
                hits.fetch_add(1, Ordering::AcqRel);
            });
        }
        assert!(exec.wait_idle(Deadline::after(Duration::from_secs(10))));
        assert_eq!(hits.load(Ordering::Acquire), 32);
    }

    #[test]
    fn timer_fires_registered_wakers_and_sleep_completes() {
        let timer = Timer::new();
        let t0 = Instant::now();
        block_on(
            timer.sleep(Duration::from_millis(5)),
            Deadline::after(Duration::from_secs(10)),
        );
        assert!(t0.elapsed() >= Duration::from_millis(5));
        // An already-due sleep resolves immediately.
        block_on(timer.sleep_until(Instant::now()), Deadline::never());
    }

    #[test]
    fn yield_now_suspends_exactly_once_and_interleaves() {
        let polls = Arc::new(AtomicU32::new(0));
        let p = Arc::clone(&polls);
        block_on(
            async move {
                p.fetch_add(1, Ordering::AcqRel);
                yield_now().await;
                p.fetch_add(1, Ordering::AcqRel);
            },
            Deadline::after(Duration::from_secs(10)),
        );
        assert_eq!(polls.load(Ordering::Acquire), 2);
        // On a single driver, two yielding loops interleave instead of
        // one starving the other.
        let exec = Executor::new(1);
        let turns = Arc::new(AtomicU32::new(0));
        for _ in 0..2 {
            let turns = Arc::clone(&turns);
            exec.spawn(async move {
                for _ in 0..100 {
                    turns.fetch_add(1, Ordering::AcqRel);
                    yield_now().await;
                }
            });
        }
        assert!(exec.wait_idle(Deadline::after(Duration::from_secs(10))));
        assert_eq!(turns.load(Ordering::Acquire), 200);
        assert_eq!(exec.panics(), 0);
    }

    #[test]
    fn block_on_deadline_forces_a_poll() {
        // A future that never wakes itself: only the deadline re-poll
        // can observe the flag.
        struct Flagged(Arc<AtomicU32>);
        impl Future for Flagged {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                if self.0.load(Ordering::Acquire) >= 2 {
                    Poll::Ready(())
                } else {
                    self.0.fetch_add(1, Ordering::AcqRel);
                    Poll::Pending
                }
            }
        }
        let polls = Arc::new(AtomicU32::new(0));
        let t0 = Instant::now();
        block_on(
            Flagged(Arc::clone(&polls)),
            Deadline::after(Duration::from_millis(5)),
        );
        // First poll, deadline re-poll(s): at least two, and it did
        // not return before the deadline passed.
        assert!(polls.load(Ordering::Acquire) >= 2);
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}
