//! The async epoch runtime: logical participants as parked wakers.
//!
//! Every other barrier in this crate equates "participant" with "OS
//! thread" — a waiter spins or sleeps on its own stack, which caps
//! realistic p at hundreds. Here a participant is a *wait-list entry*:
//! [`AsyncWaiter::poll_wait`] registers the arrival, parks the task's
//! [`Waker`] on its shard's wait list, and returns `Poll::Pending`; a
//! handful of driver threads ([`Executor`]) multiplex millions of such
//! entries. The protocol is the sharded-counter/batched-release design
//! the hybrid-barrier literature converges on:
//!
//! * **Arrival**: each logical participant is statically mapped to one
//!   of ~driver-core many shards (`tid % shards`); arriving increments
//!   the shard's count under a cache-line-padded per-shard lock whose
//!   critical section is a handful of plain-integer ops. The last
//!   arrival of a shard combines into the **root** (one counter for
//!   the whole barrier), so an epoch costs one root transition per
//!   *shard*, not per participant.
//! * **Release**: the arrival that completes the last shard becomes
//!   the releaser. It folds queued membership changes into each
//!   shard's expected count inside the root-locked quiescent window
//!   (exactly like the threaded barriers' releaser-side membership
//!   fold), publishes the new epoch, and only *then* takes each
//!   shard's parked-waker list and wakes it as one batch — the
//!   releaser never walks one million-entry list under a single lock.
//! * **No lost wakeups**: parking is `push waker; re-check epoch`.
//!   Because the epoch bump happens before any wait list is taken, a
//!   waker pushed after its list was swept is guaranteed to observe
//!   the bumped epoch on the re-check and completes immediately;
//!   spurious wakes (a stale waker swept into the next epoch's batch)
//!   are benign under the polling contract.
//! * **Cancellation safety**: dropping a parked [`WaitFuture`] leaves
//!   the arrival registered (the `wait_timeout` resume contract);
//!   dropping the *waiter* mid-episode leaves gracefully — the shard's
//!   `fold_epoch` stamp decides, atomically under the shard lock,
//!   whether the departing seat's detach made this epoch's membership
//!   fold or must proxy-arrive for the next epoch. The
//!   `tests/model_check.rs` fixtures explore exactly these races.
//!
//! Timing is **per logical participant**: a bounded wait carries its
//! own [`Deadline`] in the future, re-polled via [`Timer`] (async) or
//! the [`block_on`] parker (sync bridge) — never an OS-thread sleep,
//! which would stall the thousands of other waiters sharing the
//! driver. A seeded [`WakeFaultPlan`] can drop wakeups from release
//! batches; the deadline re-poll is what turns that loss into bounded
//! recovery instead of a hang.
//!
//! All cross-shard signalling (`epoch`, `poison`) goes through the
//! [`crate::sync`] facade so model-checked fixtures can explore the
//! park/release interleavings; the mutex-guarded sections contain no
//! facade operations, so the checker never deschedules a lock holder.

pub mod conformance;
mod exec;

pub use exec::{block_on, yield_now, Executor, Sleep, Timer, YieldNow};

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use combar_chaos::WakeFaultPlan;
use combar_trace as trace;

use crate::error::BarrierError;
use crate::pad::CachePadded;
use crate::spin::Deadline;
use crate::sync::{AtomicU32, Ordering};

/// One arrival shard: a padded lock over plain counters and the parked
/// wakers of the logical participants mapped here.
#[derive(Debug, Default)]
struct ShardState {
    /// Arrivals registered for the shard's current epoch.
    count: u32,
    /// Arrivals the current epoch expects from this shard.
    expected: u32,
    /// Seats leaving at the next membership fold.
    detach_q: u32,
    /// Seats joining at the next membership fold.
    attach_q: u32,
    /// The epoch whose boundary will next fold the queues. Reading it
    /// under the shard lock tells admit/leave, race-free against the
    /// releaser's sweep, which epoch a queued change lands in.
    fold_epoch: u32,
    /// Parked wakers awaiting this epoch's release (plus, possibly,
    /// stale entries that will be woken spuriously — benign).
    wakers: Vec<Waker>,
}

/// Root combine state. The root lock doubles as the membership
/// serializer: the releaser holds it across the whole fold sweep, and
/// `admit`/`leave` commit their live-count change under it, so the
/// sweep always sees a queue entry for every committed change.
#[derive(Debug)]
struct Root {
    /// Shards whose current epoch has completed.
    done: u32,
    /// Shards with `expected > 0` (the completion target).
    target: u32,
    /// Committed live seats (eager: updated at admit/leave, which the
    /// folds then catch up to).
    live: u32,
    /// A releaser is mid-sweep; completions observed meanwhile are
    /// picked up by its follow-up check instead of firing twice.
    releasing: bool,
    /// Next seat id handed to [`AsyncBarrier::admit`].
    next_id: u32,
}

/// Log₂-bucketed wakeup-batch latency histogram (nanoseconds per
/// released batch). Disabled by default so the release path stays
/// clock-free; the load benches enable it for the percentile columns.
#[derive(Debug)]
struct WakeLatency {
    enabled: std::sync::atomic::AtomicBool,
    // std atomics on purpose: measurement plumbing, not barrier
    // protocol state — it must not add model-checker schedule points.
    buckets: Vec<std::sync::atomic::AtomicU64>,
}

const LAT_BUCKETS: usize = 40; // 2^40 ns ≈ 18 min; plenty

impl WakeLatency {
    fn new() -> Self {
        Self {
            enabled: std::sync::atomic::AtomicBool::new(false),
            buckets: (0..LAT_BUCKETS)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
        }
    }

    fn record(&self, ns: u64) {
        let b = (64 - ns.max(1).leading_zeros() as usize - 1).min(LAT_BUCKETS - 1);
        self.buckets[b].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// The latency at quantile `q` (0..=1), as the upper edge of the
    /// histogram bucket it falls in.
    fn percentile(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(std::sync::atomic::Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(1u64 << (i + 1));
            }
        }
        None
    }
}

/// Shared state behind every [`AsyncBarrier`] clone and waiter.
#[derive(Debug)]
struct Inner {
    threads: u32,
    shards: Box<[CachePadded<Mutex<ShardState>>]>,
    root: Mutex<Root>,
    /// Published epoch (release happens-before via this bump).
    epoch: AtomicU32,
    /// Non-zero once poisoned.
    poison: AtomicU32,
    /// Seeded lost-wakeup injection for the release fan-out.
    faults: Mutex<Option<WakeFaultPlan>>,
    lat: WakeLatency,
}

/// The async-capable barrier: sharded arrival counters, one root
/// combine per epoch, batched wakeups per shard.
///
/// Clones share the barrier. Logical participants come from
/// [`AsyncBarrier::waiter_for`] (seats `0..p` the barrier was built
/// with) or [`AsyncBarrier::admit`] (membership growth at the next
/// epoch boundary).
#[derive(Debug, Clone)]
pub struct AsyncBarrier {
    inner: Arc<Inner>,
}

impl AsyncBarrier {
    /// A barrier for `participants` logical seats over `shards`
    /// arrival shards (clamped to ≥ 1; size it ~ driver cores).
    ///
    /// # Panics
    ///
    /// Panics if `participants == 0`.
    pub fn new(participants: u32, shards: u32) -> Self {
        assert!(participants > 0, "a barrier needs at least one seat");
        let shards = shards.max(1) as usize;
        // Seats are dealt round-robin (`tid % shards`): shard s holds
        // seats s, s+shards, s+2·shards, … below p.
        let shard_vec: Box<[CachePadded<Mutex<ShardState>>]> = (0..shards)
            .map(|s| {
                let expected = ((participants as usize + shards - 1 - s) / shards) as u32;
                CachePadded::new(Mutex::new(ShardState {
                    expected,
                    ..ShardState::default()
                }))
            })
            .collect();
        let target = shard_vec
            .iter()
            .filter(|s| s.lock().unwrap().expected > 0)
            .count() as u32;
        Self {
            inner: Arc::new(Inner {
                threads: participants,
                shards: shard_vec,
                root: Mutex::new(Root {
                    done: 0,
                    target,
                    live: participants,
                    releasing: false,
                    next_id: participants,
                }),
                epoch: AtomicU32::new(0),
                poison: AtomicU32::new(0),
                faults: Mutex::new(None),
                lat: WakeLatency::new(),
            }),
        }
    }

    /// Installs a seeded lost-wakeup plan consulted by every release
    /// fan-out (chaos testing). Pass `None` to clear.
    pub fn inject_wake_faults(&self, plan: Option<WakeFaultPlan>) {
        *self.inner.faults.lock().unwrap() = plan;
    }

    /// Enables wakeup-batch latency recording (one `Instant` pair per
    /// released batch). Off by default so the release path reads no
    /// clock.
    pub fn record_wake_latency(&self) {
        self.inner
            .lat
            .enabled
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// `(p50, p95, p99)` wakeup-batch latency in nanoseconds, if
    /// recording was enabled and at least one batch was released.
    pub fn wake_latency_percentiles(&self) -> Option<(u64, u64, u64)> {
        Some((
            self.inner.lat.percentile(0.50)?,
            self.inner.lat.percentile(0.95)?,
            self.inner.lat.percentile(0.99)?,
        ))
    }

    /// Seats the barrier was built for.
    pub fn threads(&self) -> u32 {
        self.inner.threads
    }

    /// Number of arrival shards.
    pub fn shards(&self) -> u32 {
        self.inner.shards.len() as u32
    }

    /// The published epoch (completed releases since construction).
    pub fn epoch(&self) -> u32 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Committed live seats.
    pub fn live_count(&self) -> u32 {
        self.inner.root.lock().unwrap().live
    }

    /// Whether the barrier is poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.inner.poison.load(Ordering::Acquire) != 0
    }

    /// One-line snapshot of the protocol state, for wedge diagnostics
    /// in soak tests and bug reports.
    pub fn debug_state(&self) -> String {
        use std::fmt::Write as _;
        let r = self.inner.root.lock().unwrap();
        let mut s = format!(
            "epoch={} root{{done={} target={} live={} releasing={}}}",
            self.inner.epoch.load(Ordering::Acquire),
            r.done,
            r.target,
            r.live,
            r.releasing
        );
        for (i, sh) in self.inner.shards.iter().enumerate() {
            let st = sh.lock().unwrap();
            let _ = write!(
                s,
                " s{i}{{c={} e={} +{} -{} f={} w={}}}",
                st.count,
                st.expected,
                st.attach_q,
                st.detach_q,
                st.fold_epoch,
                st.wakers.len()
            );
        }
        s
    }

    /// Poisons the barrier and wakes every parked participant so they
    /// observe [`BarrierError::Poisoned`] instead of hanging.
    pub fn poison(&self) {
        self.inner.poison.store(1, Ordering::Release);
        for sh in self.inner.shards.iter() {
            let batch = std::mem::take(&mut sh.lock().unwrap().wakers);
            for w in batch {
                w.wake();
            }
        }
    }

    /// The handle for seat `tid` (0..p as built, or the id returned by
    /// [`AsyncBarrier::admit`]). At most one live waiter per seat; the
    /// epoch is snapped race-free from the seat's shard.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not a seat this barrier has handed out.
    pub fn waiter_for(&self, tid: u32) -> AsyncWaiter {
        let known = self.inner.root.lock().unwrap().next_id;
        assert!(tid < known, "tid {tid} out of range (seats 0..{known})");
        let shard = tid % self.shards();
        let epoch = self.inner.shards[shard as usize].lock().unwrap().fold_epoch;
        AsyncWaiter {
            inner: Arc::clone(&self.inner),
            tid,
            shard,
            epoch,
            pending: false,
            left: false,
        }
    }

    /// Admits a brand-new seat: membership grows at the next epoch
    /// boundary (or immediately if the barrier has drained to zero
    /// seats, when no boundary could ever come). The returned waiter's
    /// first `wait` completes with the epoch that folds it in.
    pub fn admit(&self) -> AsyncWaiter {
        let inner = &self.inner;
        let mut r = inner.root.lock().unwrap();
        let tid = r.next_id;
        r.next_id += 1;
        let shard = tid % self.shards();
        // Root is held across the shard update (root → shard is the
        // one permitted nesting order), serializing against the
        // releaser's fold sweep.
        let mut st = inner.shards[shard as usize].lock().unwrap();
        if r.live == 0 {
            // Drained barrier: no release will ever fold an attach, so
            // apply the membership now — quiescent by definition.
            r.live = 1;
            if st.expected == 0 {
                r.target += 1;
            }
            st.expected += 1;
            let epoch = st.fold_epoch;
            drop(st);
            drop(r);
            return AsyncWaiter {
                inner: Arc::clone(inner),
                tid,
                shard,
                epoch,
                pending: true,
                left: false,
            }
            .with_pending(false);
        }
        r.live += 1;
        st.attach_q += 1;
        let epoch = st.fold_epoch;
        drop(st);
        drop(r);
        // pending=true at the fold epoch: the first wait completes with
        // that epoch's release, after which the seat is expected.
        AsyncWaiter {
            inner: Arc::clone(inner),
            tid,
            shard,
            epoch,
            pending: true,
            left: false,
        }
    }

    /// Registers an arrival on `shard` and runs the release protocol
    /// if it completed the epoch. Called by waiters; exposed to the
    /// crate's model-check fixtures via the waiter API only.
    fn arrive(inner: &Arc<Inner>, shard: u32, by: u32) {
        let complete = {
            let mut st = inner.shards[shard as usize].lock().unwrap();
            st.count += 1;
            debug_assert!(
                st.count <= st.expected,
                "shard {shard}: {} arrivals for {} seats",
                st.count,
                st.expected
            );
            st.expected > 0 && st.count == st.expected
        };
        if complete {
            Self::shard_complete(inner, by);
        }
    }

    /// One shard finished its epoch: combine into the root; the
    /// completion that matches the target claims the release.
    fn shard_complete(inner: &Arc<Inner>, by: u32) {
        let fire = {
            let mut r = inner.root.lock().unwrap();
            r.done += 1;
            debug_assert!(r.done <= r.target, "root over-completed");
            if r.target > 0 && r.done == r.target && !r.releasing {
                r.releasing = true;
                true
            } else {
                false
            }
        };
        if fire {
            Self::release(inner, by);
        }
    }

    /// The release protocol. Exactly one thread runs this per epoch
    /// (guarded by `Root::releasing`); the loop handles an epoch that
    /// completes during its predecessor's own sweep (possible only via
    /// cancellation proxies, which may arrive before the bump).
    fn release(inner: &Arc<Inner>, by: u32) {
        loop {
            // Only this releaser bumps, so the load is stable.
            let e = inner.epoch.load(Ordering::Acquire);
            {
                let mut r = inner.root.lock().unwrap();
                debug_assert_eq!(r.done, r.target, "release without completion");
                let mut live = 0u32;
                let mut target = 0u32;
                for sh in inner.shards.iter() {
                    let mut st = sh.lock().unwrap();
                    debug_assert_eq!(st.count, st.expected, "incomplete shard at release");
                    debug_assert!(
                        st.detach_q <= st.expected + st.attach_q,
                        "more detaches than seats"
                    );
                    st.count = 0;
                    st.expected = st.expected + st.attach_q - st.detach_q;
                    st.attach_q = 0;
                    st.detach_q = 0;
                    st.fold_epoch = e.wrapping_add(1);
                    live += st.expected;
                    if st.expected > 0 {
                        target += 1;
                    }
                }
                debug_assert_eq!(r.live, live, "eager live count diverged from folds");
                r.done = 0;
                r.target = target;
            }
            trace::emit(e, by, trace::Kind::Release);
            // Publish the release *before* sweeping wait lists: a
            // parker that pushes after its list was taken re-checks
            // the epoch and observes this bump.
            inner.epoch.fetch_add(1, Ordering::Release);
            Self::fan_out(inner, e, by);
            // Follow-up: cancellation proxies may have completed the
            // *next* epoch while we swept. They could not fire (the
            // releasing flag was up), so it is on us to loop.
            let again = {
                let mut r = inner.root.lock().unwrap();
                if r.target > 0 && r.done == r.target {
                    true
                } else {
                    r.releasing = false;
                    false
                }
            };
            if !again {
                return;
            }
        }
    }

    /// Wakes each shard's parked batch, applying the lost-wakeup fault
    /// plan and recording per-batch latency when enabled.
    fn fan_out(inner: &Arc<Inner>, epoch: u32, by: u32) {
        let faults = *inner.faults.lock().unwrap();
        let record = inner.lat.enabled.load(std::sync::atomic::Ordering::Acquire);
        let mut slot = 0u64;
        for (si, sh) in inner.shards.iter().enumerate() {
            let batch = {
                let mut st = sh.lock().unwrap();
                if st.wakers.is_empty() {
                    continue;
                }
                let cap = st.wakers.len();
                std::mem::replace(&mut st.wakers, Vec::with_capacity(cap))
            };
            trace::emit(epoch, by, trace::Kind::Wake(si as u32));
            let t0 = record.then(Instant::now);
            for w in batch {
                let dropped = faults.is_some_and(|p| p.drops_wake(epoch, slot));
                slot += 1;
                if !dropped {
                    w.wake();
                }
            }
            if let Some(t0) = t0 {
                inner.lat.record(t0.elapsed().as_nanos() as u64);
            }
        }
    }
}

/// One logical participant's handle. Single-owner mutable state, like
/// every waiter in this crate: `Send`, used from one task at a time.
///
/// Dropping the handle while an episode is in flight (arrived, not yet
/// released) leaves **gracefully**: the seat detaches at the proper
/// boundary and peers keep crossing — the async analogue of a session
/// disappearing, which must degrade membership, not poison a million
/// peers. Dropping an idle handle keeps the seat; build a fresh waiter
/// for the same tid to resume it.
pub struct AsyncWaiter {
    inner: Arc<Inner>,
    tid: u32,
    shard: u32,
    /// The epoch this seat is arriving for / awaiting the release of.
    epoch: u32,
    /// Whether the arrival for `epoch` is registered.
    pending: bool,
    /// The seat left the barrier; waits fail with `Evicted` until
    /// `rejoin`.
    left: bool,
}

impl std::fmt::Debug for AsyncWaiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncWaiter")
            .field("tid", &self.tid)
            .field("shard", &self.shard)
            .field("epoch", &self.epoch)
            .field("pending", &self.pending)
            .field("left", &self.left)
            .finish()
    }
}

impl AsyncWaiter {
    fn with_pending(mut self, pending: bool) -> Self {
        self.pending = pending;
        self
    }

    /// This seat's id.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// The shard this seat arrives on.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Core poll: arrive once, then park until the epoch's release
    /// (or the deadline). The deadline belongs to this *logical*
    /// participant; `timer` (if any) schedules the deadline re-poll so
    /// a lost wakeup cannot hang the wait.
    fn poll_step(
        &mut self,
        waker: &Waker,
        deadline: Deadline,
        timer: Option<&Timer>,
    ) -> Poll<Result<(), BarrierError>> {
        if self.left {
            return Poll::Ready(Err(BarrierError::Evicted));
        }
        if self.inner.poison.load(Ordering::Acquire) != 0 {
            return Poll::Ready(Err(BarrierError::Poisoned));
        }
        if !self.pending {
            trace::emit(self.epoch, self.tid, trace::Kind::Arrive);
            self.pending = true;
            AsyncBarrier::arrive(&self.inner, self.shard, self.tid);
        }
        let released = self.epoch.wrapping_add(1);
        if self.reached(released) {
            self.epoch = released;
            self.pending = false;
            return Poll::Ready(Ok(()));
        }
        if deadline.expired() {
            // The arrival stands: a later wait resumes this episode.
            return Poll::Ready(Err(BarrierError::Timeout));
        }
        // Park, then re-check: the releaser bumps the epoch before
        // taking wait lists, so missing the sweep implies seeing the
        // bump here.
        self.inner.shards[self.shard as usize]
            .lock()
            .unwrap()
            .wakers
            .push(waker.clone());
        trace::emit(self.epoch, self.tid, trace::Kind::Park(self.shard));
        if self.reached(released) {
            self.epoch = released;
            self.pending = false;
            return Poll::Ready(Ok(()));
        }
        if self.inner.poison.load(Ordering::Acquire) != 0 {
            return Poll::Ready(Err(BarrierError::Poisoned));
        }
        if let (Some(timer), Some(at)) = (timer, deadline.instant()) {
            timer.register(at, waker.clone());
        }
        Poll::Pending
    }

    fn reached(&self, target: u32) -> bool {
        self.inner
            .epoch
            .load(Ordering::Acquire)
            .wrapping_sub(target)
            <= u32::MAX / 2
    }

    /// Polls one barrier crossing: the episode's arrival is registered
    /// on first poll; `Poll::Pending` parks the waker until release.
    pub fn poll_wait(&mut self, cx: &mut Context<'_>) -> Poll<Result<(), BarrierError>> {
        self.poll_step(cx.waker(), Deadline::never(), None)
    }

    /// One full crossing as a future.
    pub fn wait_async(&mut self) -> WaitFuture<'_> {
        WaitFuture {
            waiter: self,
            deadline: Deadline::never(),
            timer: None,
        }
    }

    /// One crossing bounded by `deadline`, with the re-poll scheduled
    /// on `timer` — the per-logical-participant bounded wait. On
    /// [`BarrierError::Timeout`] the arrival stays registered; a later
    /// wait resumes the episode.
    pub fn wait_deadline(&mut self, deadline: Instant, timer: &Timer) -> WaitFuture<'_> {
        WaitFuture {
            waiter: self,
            deadline: Deadline::at(deadline),
            timer: Some(timer.clone()),
        }
    }

    /// Synchronous arrival without blocking — the fuzzy "release
    /// phase". No-op if the episode's arrival is already registered or
    /// the barrier is poisoned.
    pub fn arrive(&mut self) {
        if self.left || self.pending || self.inner.poison.load(Ordering::Acquire) != 0 {
            return;
        }
        trace::emit(self.epoch, self.tid, trace::Kind::Arrive);
        self.pending = true;
        AsyncBarrier::arrive(&self.inner, self.shard, self.tid);
    }

    /// Synchronous unbounded crossing (the sync-bridge path).
    pub fn try_wait(&mut self) -> Result<(), BarrierError> {
        let deadline = Deadline::never();
        block_on(
            WaitFuture {
                waiter: self,
                deadline,
                timer: None,
            },
            deadline,
        )
    }

    /// Synchronous bounded crossing: blocks the calling OS thread (the
    /// bridge into the threaded [`crate::barrier::Waiter`] contract).
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
        let deadline = Deadline::after(timeout);
        block_on(
            WaitFuture {
                waiter: self,
                deadline,
                timer: None,
            },
            deadline,
        )
    }

    /// Synchronous crossing, panicking on failure.
    ///
    /// # Panics
    ///
    /// Panics if the barrier is poisoned or this seat has left.
    pub fn wait(&mut self) {
        if let Err(e) = self.try_wait() {
            panic!("async barrier wait failed: {e}");
        }
    }

    /// Gracefully releases this seat. If an episode is in flight the
    /// already-registered arrival stands; if the membership fold for
    /// the current epoch has already run (a release sweep is racing
    /// us), the seat owes the *next* epoch one arrival and delivers it
    /// by proxy — both decided atomically under the shard lock via the
    /// `fold_epoch` stamp, so the epoch can neither wedge nor release
    /// twice. Waits fail with [`BarrierError::Evicted`] afterwards
    /// until [`AsyncWaiter::rejoin`].
    pub fn leave(&mut self) {
        if self.left {
            return;
        }
        self.left = true;
        let inner = Arc::clone(&self.inner);
        let mut proxy = false;
        let complete = {
            let mut r = inner.root.lock().unwrap();
            debug_assert!(r.live > 0);
            r.live -= 1;
            let mut st = inner.shards[self.shard as usize].lock().unwrap();
            st.detach_q += 1;
            let folded_past =
                st.fold_epoch.wrapping_sub(self.epoch.wrapping_add(1)) <= u32::MAX / 2;
            if !self.pending || folded_past {
                // Either this epoch still needs our arrival (never
                // registered), or our detach missed this epoch's fold
                // and the next epoch already counts us: proxy once.
                st.count += 1;
                proxy = true;
                st.expected > 0 && st.count == st.expected
            } else {
                false
            }
        };
        if proxy {
            trace::emit(self.epoch, self.tid, trace::Kind::ProxyArrival(self.shard));
        }
        self.pending = false;
        if complete {
            AsyncBarrier::shard_complete(&inner, self.tid);
        }
    }

    /// Rejoins after [`AsyncWaiter::leave`] (or a drop-while-pending
    /// elsewhere followed by `waiter_for`): files an attach that the
    /// next epoch boundary folds in; the following wait blocks until
    /// that boundary. Returns `Ok(false)` if the seat never left.
    pub fn rejoin(&mut self) -> Result<bool, BarrierError> {
        if self.inner.poison.load(Ordering::Acquire) != 0 {
            return Err(BarrierError::Poisoned);
        }
        if !self.left {
            return Ok(false);
        }
        let inner = Arc::clone(&self.inner);
        let mut r = inner.root.lock().unwrap();
        let mut st = inner.shards[self.shard as usize].lock().unwrap();
        if r.live == 0 {
            r.live = 1;
            if st.expected == 0 {
                r.target += 1;
            }
            st.expected += 1;
            self.epoch = st.fold_epoch;
            self.pending = false;
        } else {
            r.live += 1;
            st.attach_q += 1;
            self.epoch = st.fold_epoch;
            self.pending = true;
        }
        drop(st);
        drop(r);
        self.left = false;
        trace::emit(self.epoch, self.tid, trace::Kind::Rejoin);
        Ok(true)
    }

    /// Whether this seat has left the barrier.
    pub fn has_left(&self) -> bool {
        self.left
    }
}

impl Drop for AsyncWaiter {
    fn drop(&mut self) {
        // Mid-episode drop = the session vanished: degrade gracefully
        // instead of wedging (or poisoning) a million peers. An idle
        // drop keeps the seat for a future `waiter_for`.
        if self.pending && !self.left {
            self.leave();
        }
    }
}

/// Future for one barrier crossing; see [`AsyncWaiter::wait_async`] /
/// [`AsyncWaiter::wait_deadline`].
///
/// Dropping it mid-wait (cancellation) leaves the arrival registered —
/// the same contract as a timed-out synchronous wait: the waiter
/// resumes the episode on its next wait call.
#[derive(Debug)]
pub struct WaitFuture<'w> {
    waiter: &'w mut AsyncWaiter,
    deadline: Deadline,
    timer: Option<Timer>,
}

impl Future for WaitFuture<'_> {
    type Output = Result<(), BarrierError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        this.waiter
            .poll_step(cx.waker(), this.deadline, this.timer.as_ref())
    }
}

impl crate::fuzzy::FuzzyWaiter for AsyncWaiter {
    fn arrive(&mut self) {
        AsyncWaiter::arrive(self)
    }
    fn depart(&mut self) {
        if let Err(e) = self.try_wait() {
            panic!("async barrier depart failed: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crossings(p: u32, shards: u32, episodes: u32) {
        let b = AsyncBarrier::new(p, shards);
        std::thread::scope(|s| {
            for tid in 0..p {
                let b = b.clone();
                s.spawn(move || {
                    let mut w = b.waiter_for(tid);
                    for _ in 0..episodes {
                        w.try_wait().unwrap();
                    }
                });
            }
        });
        assert_eq!(b.epoch(), episodes);
        assert!(!b.is_poisoned());
    }

    #[test]
    fn crossings_at_various_shapes() {
        crossings(1, 1, 5);
        crossings(2, 1, 20);
        crossings(5, 4, 20);
        crossings(8, 16, 10); // more shards than seats: some stay empty
    }

    #[test]
    fn async_tasks_cross_on_the_executor() {
        let p = 64;
        let b = AsyncBarrier::new(p, 4);
        let exec = Executor::new(2);
        for tid in 0..p {
            let b = b.clone();
            exec.spawn(async move {
                let mut w = b.waiter_for(tid);
                for _ in 0..30 {
                    w.wait_async().await.unwrap();
                }
            });
        }
        assert!(exec.wait_idle(Deadline::after(Duration::from_secs(60))));
        assert_eq!(b.epoch(), 30);
    }

    #[test]
    fn timeout_resumes_same_episode() {
        let b = AsyncBarrier::new(2, 2);
        let mut w0 = b.waiter_for(0);
        assert_eq!(
            w0.wait_timeout(Duration::from_millis(5)),
            Err(BarrierError::Timeout)
        );
        let b2 = b.clone();
        let h = std::thread::spawn(move || b2.waiter_for(1).try_wait().unwrap());
        w0.wait_timeout(Duration::from_secs(5)).unwrap();
        h.join().unwrap();
        assert_eq!(b.epoch(), 1);
    }

    #[test]
    fn leave_mid_episode_unwedges_peers() {
        let b = AsyncBarrier::new(3, 2);
        let mut w0 = b.waiter_for(0);
        let mut w1 = b.waiter_for(1);
        w0.arrive(); // arrived, then vanishes
        w0.leave();
        let b2 = b.clone();
        let h = std::thread::spawn(move || {
            let mut w2 = b2.waiter_for(2);
            for _ in 0..3 {
                w2.try_wait().unwrap();
            }
        });
        for _ in 0..3 {
            w1.try_wait().unwrap();
        }
        h.join().unwrap();
        assert_eq!(b.live_count(), 2);
        assert_eq!(
            w0.try_wait(),
            Err(BarrierError::Evicted),
            "a departed seat must not silently re-arrive"
        );
    }

    #[test]
    fn drop_while_pending_leaves_gracefully() {
        let b = AsyncBarrier::new(2, 1);
        {
            let mut w0 = b.waiter_for(0);
            w0.arrive();
            // dropped here, mid-episode
        }
        b.waiter_for(1).try_wait().unwrap();
        assert_eq!(b.live_count(), 1);
        assert!(!b.is_poisoned());
    }

    #[test]
    fn admit_grows_membership_at_boundary() {
        let b = AsyncBarrier::new(1, 2);
        let mut w0 = b.waiter_for(0);
        let mut w9 = b.admit();
        assert_eq!(b.live_count(), 2);
        let h = std::thread::spawn(move || {
            // Completes with the boundary that folds the seat in, then
            // participates normally.
            w9.try_wait().unwrap();
            w9.try_wait().unwrap();
            w9.tid()
        });
        w0.try_wait().unwrap(); // releases epoch 0, folding the attach
        w0.try_wait().unwrap(); // epoch 1 now needs both seats
        assert_eq!(h.join().unwrap(), 1);
        assert_eq!(b.epoch(), 2);
    }

    #[test]
    fn drained_barrier_readmits_immediately() {
        let b = AsyncBarrier::new(1, 1);
        let mut w0 = b.waiter_for(0);
        w0.leave(); // proxy releases epoch 0, then live = 0
        assert_eq!(b.live_count(), 0);
        let mut w = b.admit();
        assert_eq!(b.live_count(), 1);
        w.try_wait().unwrap(); // alone: completes immediately
        assert!(!b.is_poisoned());
    }

    #[test]
    fn rejoin_after_leave() {
        let b = AsyncBarrier::new(2, 1);
        let mut w0 = b.waiter_for(0);
        let mut w1 = b.waiter_for(1);
        w0.leave();
        w1.try_wait().unwrap(); // crosses alone
        assert_eq!(w0.rejoin(), Ok(true));
        assert_eq!(w1.rejoin(), Ok(false));
        let h = std::thread::spawn(move || {
            w0.try_wait().unwrap();
            w0.try_wait().unwrap();
        });
        // w1 releases the boundary that folds w0 back in, then both
        // cross together.
        w1.try_wait().unwrap();
        w1.try_wait().unwrap();
        h.join().unwrap();
        assert_eq!(b.live_count(), 2);
    }

    #[test]
    fn poison_wakes_parked_waiters() {
        let b = AsyncBarrier::new(2, 1);
        let b2 = b.clone();
        let h = std::thread::spawn(move || b2.waiter_for(0).try_wait());
        // Let the waiter park, then poison.
        std::thread::sleep(Duration::from_millis(10));
        b.poison();
        assert_eq!(h.join().unwrap(), Err(BarrierError::Poisoned));
        assert_eq!(b.waiter_for(1).try_wait(), Err(BarrierError::Poisoned));
    }

    #[test]
    fn lost_wakeups_recover_via_deadline_repoll() {
        use combar_chaos::WakeChaosConfig;
        let p = 16;
        let b = AsyncBarrier::new(p, 2);
        b.inject_wake_faults(Some(WakeFaultPlan::new(WakeChaosConfig::lossy(3, 0.3))));
        let exec = Executor::new(2);
        let timer = Timer::new();
        for tid in 0..p {
            let b = b.clone();
            let timer = timer.clone();
            exec.spawn(async move {
                let mut w = b.waiter_for(tid);
                for _ in 0..20 {
                    // Every wait carries a per-logical deadline: a
                    // dropped wakeup costs one re-poll, never a hang.
                    loop {
                        let deadline = Instant::now() + Duration::from_millis(20);
                        match w.wait_deadline(deadline, &timer).await {
                            Ok(()) => break,
                            Err(BarrierError::Timeout) => continue,
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
            });
        }
        assert!(
            exec.wait_idle(Deadline::after(Duration::from_secs(60))),
            "lost wakeups must not hang the run"
        );
        assert_eq!(b.epoch(), 20);
    }

    #[test]
    fn wake_latency_percentiles_record_when_enabled() {
        let b = AsyncBarrier::new(2, 1);
        assert_eq!(b.wake_latency_percentiles(), None);
        b.record_wake_latency();
        let b2 = b.clone();
        let h = std::thread::spawn(move || {
            let mut w = b2.waiter_for(0);
            for _ in 0..5 {
                w.try_wait().unwrap();
            }
        });
        let mut w = b.waiter_for(1);
        for _ in 0..5 {
            w.try_wait().unwrap();
        }
        h.join().unwrap();
        let (p50, p95, p99) = b.wake_latency_percentiles().expect("batches recorded");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn fuzzy_split_arrive_then_depart() {
        use crate::fuzzy::FuzzyWaiter as _;
        let b = AsyncBarrier::new(2, 1);
        let b2 = b.clone();
        let h = std::thread::spawn(move || {
            let mut w = b2.waiter_for(0);
            for _ in 0..10 {
                w.arrive();
                w.depart();
            }
        });
        let mut w = b.waiter_for(1);
        for _ in 0..10 {
            w.arrive();
            w.depart();
        }
        h.join().unwrap();
        assert_eq!(b.epoch(), 10);
    }
}
