//! The unified barrier API: the [`Barrier`]/[`Waiter`] trait pair and
//! [`BarrierBuilder`].
//!
//! Historically every barrier family in this crate exposed its own
//! inherent surface and its own `::new` signature, and anything generic
//! over "a barrier" (the conformance matrix, the torture harnesses, the
//! bench experiments) dispatched through a hand-written enum. This
//! module names the common contract once:
//!
//! * [`Waiter`] — the per-thread handle: `wait` / `try_wait` /
//!   `wait_timeout`, the fuzzy arrive–depart split where the kind
//!   supports it ([`Waiter::as_fuzzy`]), and the rejoin surface for
//!   kinds with graceful degradation.
//! * [`Barrier`] — the shared object: `waiter` hands out boxed trait
//!   objects, and the fault-management capabilities (`stragglers`,
//!   `evict`, `detach`, …) default to no-ops so kinds without them
//!   (dissemination has no eviction story at all) implement only what
//!   they mean.
//! * [`BarrierBuilder`] — one construction path over all ten kinds,
//!   replacing the scattered `CentralBarrier::new` /
//!   `TreeBarrier::combining` / `AdaptiveBarrier::new(p, degrees,
//!   window, policy)` signatures, with optional supervisor
//!   configuration and a `combar-trace` sink.
//!
//! The conformance matrix's [`AnyBarrier`]/[`AnyWaiter`] are thin
//! newtypes over `Box<dyn Barrier>` / `Box<dyn Waiter>`, so the full
//! contract suite runs through the trait-object path — any drift
//! between a kind's inherent API and its trait impl breaks the matrix.
//!
//! Direct constructors remain available for tests that poke
//! kind-specific behaviour, but new generic code should take
//! `&dyn Barrier` (or `impl Barrier`) and build through the builder.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use combar_trace as trace;

use crate::adaptive::{AdaptiveBarrier, AdaptiveWaiter, DegreePolicy};
use crate::asyncb::{AsyncBarrier, AsyncWaiter};
use crate::blocking::{BlockingBarrier, BlockingWaiter};
use crate::central::{CentralBarrier, CentralWaiter};
use crate::conformance::BarrierKind;
use crate::dissemination::{DisseminationBarrier, DisseminationWaiter};
use crate::dynamic::{DynamicBarrier, DynamicWaiter};
use crate::error::BarrierError;
use crate::fuzzy::FuzzyWaiter;
use crate::heal::{SelfHealing, Supervisor, SupervisorConfig};
use crate::tournament::{TournamentBarrier, TournamentWaiter};
use crate::tree::{TreeBarrier, TreeWaiter};

/// The per-thread handle contract every barrier kind implements.
///
/// A waiter is single-owner mutable state bound to one participant id;
/// it may be created on any thread but must then be used from one
/// thread at a time (it is `Send`, not `Sync`).
pub trait Waiter: fmt::Debug + Send {
    /// This participant's id.
    fn tid(&self) -> u32;

    /// Unbounded fallible full barrier: returns poisoning/eviction as
    /// an error instead of panicking. Reads no clock, so schedules stay
    /// deterministic under the `combar-check` model checker.
    fn try_wait(&mut self) -> Result<(), BarrierError>;

    /// One full barrier episode bounded by `timeout`. On
    /// [`BarrierError::Timeout`] the episode stays in flight: call a
    /// wait method again to resume it rather than re-arrive.
    fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError>;

    /// One full barrier episode.
    ///
    /// # Panics
    ///
    /// Panics if the barrier is poisoned or this participant evicted.
    fn wait(&mut self) {
        if let Err(e) = self.try_wait() {
            panic!("barrier wait failed: {e}");
        }
    }

    /// The fuzzy arrive/depart view, for kinds with a separable
    /// signal/enforce split. `None` (the default) for kinds without
    /// one (dissemination and tournament interleave both phases;
    /// adaptive must run its measurement preamble inside `wait`).
    fn as_fuzzy(&mut self) -> Option<&mut dyn FuzzyWaiter> {
        None
    }

    /// Re-admission after eviction: blocks until resolved. `Ok(false)`
    /// if this participant was never evicted — also the default for
    /// kinds without a rejoin protocol.
    fn rejoin(&mut self) -> Result<bool, BarrierError> {
        Ok(false)
    }

    /// Bounded [`Self::rejoin`]. The default ignores the bound and
    /// delegates, which is correct for kinds whose rejoin cannot block
    /// (or is unsupported).
    fn rejoin_within(&mut self, timeout: Duration) -> Result<bool, BarrierError> {
        let _ = timeout;
        self.rejoin()
    }
}

/// The shared-object contract every barrier kind implements.
///
/// Capability methods default to "not supported" no-ops so generic
/// callers can drive the full fault-management protocol against any
/// kind and simply observe `false`/empty where a kind has no such
/// protocol.
pub trait Barrier: fmt::Debug + Send + Sync {
    /// Number of participating threads the barrier was built for.
    fn threads(&self) -> u32;

    /// Creates the per-thread handle for participant `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    fn waiter<'a>(&'a self, tid: u32) -> Box<dyn Waiter + 'a>;

    /// Whether a participant died mid-episode, wedging the barrier.
    fn is_poisoned(&self) -> bool;

    /// Participants that have not arrived for the in-flight episode.
    /// Empty for kinds without arrival tracking.
    fn stragglers(&self) -> Vec<u32> {
        Vec::new()
    }

    /// Evicts participant `tid` if it has not arrived for the episode
    /// in flight. `false` (refused) by default.
    fn evict(&self, tid: u32) -> bool {
        let _ = tid;
        false
    }

    /// Evicts every current straggler; returns the evicted ids.
    fn evict_stragglers(&self) -> Vec<u32> {
        Vec::new()
    }

    /// Declares `tid` dead and schedules its removal from the live
    /// shape at the next episode boundary. `false` (refused) by
    /// default.
    fn detach(&self, tid: u32) -> bool {
        let _ = tid;
        false
    }

    /// Number of participants the live shape currently counts.
    fn live_count(&self) -> u32 {
        self.threads()
    }

    /// The *structural* critical depth: the longest chain of
    /// synchronization operations any participant executes per episode
    /// under the current shape. `None` when the kind has no meaningful
    /// static estimate. (The measured counterpart comes from
    /// `combar-trace` critical-path extraction.)
    fn critical_depth(&self) -> Option<u32> {
        None
    }

    /// The async capability: `Some` when this barrier's participants
    /// can be *logical* (parked wakers driven by an executor) rather
    /// than OS threads. Callers that hold one use
    /// [`AsyncBarrier::waiter_for`] / [`crate::asyncb::AsyncWaiter::poll_wait`]
    /// to multiplex many participants per thread; everyone else gets
    /// `None` and stays on the blocking surface.
    fn as_async(&self) -> Option<&AsyncBarrier> {
        None
    }
}

macro_rules! forward_wait {
    () => {
        fn tid(&self) -> u32 {
            Self::tid(self)
        }
        fn try_wait(&mut self) -> Result<(), BarrierError> {
            Self::try_wait(self)
        }
        fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
            Self::wait_timeout(self, timeout)
        }
        fn wait(&mut self) {
            Self::wait(self)
        }
    };
}

impl Waiter for CentralWaiter<'_> {
    forward_wait!();
    fn as_fuzzy(&mut self) -> Option<&mut dyn FuzzyWaiter> {
        Some(self)
    }
    fn rejoin(&mut self) -> Result<bool, BarrierError> {
        Self::rejoin(self)
    }
    fn rejoin_within(&mut self, timeout: Duration) -> Result<bool, BarrierError> {
        Self::rejoin_within(self, timeout)
    }
}

impl Waiter for BlockingWaiter<'_> {
    forward_wait!();
    fn as_fuzzy(&mut self) -> Option<&mut dyn FuzzyWaiter> {
        Some(self)
    }
    fn rejoin(&mut self) -> Result<bool, BarrierError> {
        Self::rejoin(self)
    }
}

impl Waiter for TreeWaiter<'_> {
    forward_wait!();
    fn as_fuzzy(&mut self) -> Option<&mut dyn FuzzyWaiter> {
        Some(self)
    }
    fn rejoin(&mut self) -> Result<bool, BarrierError> {
        Self::rejoin(self)
    }
    fn rejoin_within(&mut self, timeout: Duration) -> Result<bool, BarrierError> {
        Self::rejoin_within(self, timeout)
    }
}

impl Waiter for DisseminationWaiter<'_> {
    forward_wait!();
}

impl Waiter for TournamentWaiter<'_> {
    forward_wait!();
    fn rejoin(&mut self) -> Result<bool, BarrierError> {
        Self::rejoin(self)
    }
    fn rejoin_within(&mut self, timeout: Duration) -> Result<bool, BarrierError> {
        Self::rejoin_within(self, timeout)
    }
}

impl Waiter for DynamicWaiter<'_> {
    forward_wait!();
    fn as_fuzzy(&mut self) -> Option<&mut dyn FuzzyWaiter> {
        Some(self)
    }
    fn rejoin(&mut self) -> Result<bool, BarrierError> {
        Self::rejoin(self)
    }
    fn rejoin_within(&mut self, timeout: Duration) -> Result<bool, BarrierError> {
        Self::rejoin_within(self, timeout)
    }
}

impl Waiter for AdaptiveWaiter<'_> {
    fn tid(&self) -> u32 {
        Self::tid(self)
    }
    fn try_wait(&mut self) -> Result<(), BarrierError> {
        Self::try_wait(self)
    }
    fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
        Self::wait_timeout(self, timeout)
    }
    fn wait(&mut self) {
        Self::wait(self)
    }
}

impl Barrier for CentralBarrier {
    fn threads(&self) -> u32 {
        Self::threads(self)
    }
    fn waiter<'a>(&'a self, tid: u32) -> Box<dyn Waiter + 'a> {
        Box::new(self.waiter_for(tid))
    }
    fn is_poisoned(&self) -> bool {
        Self::is_poisoned(self)
    }
    fn stragglers(&self) -> Vec<u32> {
        Self::stragglers(self)
    }
    fn evict(&self, tid: u32) -> bool {
        Self::evict(self, tid)
    }
    fn evict_stragglers(&self) -> Vec<u32> {
        Self::evict_stragglers(self)
    }
    fn detach(&self, tid: u32) -> bool {
        Self::detach(self, tid)
    }
    fn live_count(&self) -> u32 {
        Self::live_count(self)
    }
    fn critical_depth(&self) -> Option<u32> {
        Some(1) // one shared counter, regardless of p
    }
}

impl Barrier for BlockingBarrier {
    fn threads(&self) -> u32 {
        Self::threads(self)
    }
    fn waiter<'a>(&'a self, tid: u32) -> Box<dyn Waiter + 'a> {
        Box::new(self.waiter_for(tid))
    }
    fn is_poisoned(&self) -> bool {
        Self::is_poisoned(self)
    }
    fn stragglers(&self) -> Vec<u32> {
        Self::stragglers(self)
    }
    fn evict(&self, tid: u32) -> bool {
        Self::evict(self, tid)
    }
    fn evict_stragglers(&self) -> Vec<u32> {
        Self::evict_stragglers(self)
    }
    fn critical_depth(&self) -> Option<u32> {
        Some(1) // one mutex-protected count
    }
}

impl Barrier for TreeBarrier {
    fn threads(&self) -> u32 {
        Self::threads(self)
    }
    fn waiter<'a>(&'a self, tid: u32) -> Box<dyn Waiter + 'a> {
        Box::new(self.waiter(tid))
    }
    fn is_poisoned(&self) -> bool {
        Self::is_poisoned(self)
    }
    fn stragglers(&self) -> Vec<u32> {
        Self::stragglers(self)
    }
    fn evict(&self, tid: u32) -> bool {
        Self::evict(self, tid)
    }
    fn evict_stragglers(&self) -> Vec<u32> {
        Self::evict_stragglers(self)
    }
    fn detach(&self, tid: u32) -> bool {
        Self::detach(self, tid)
    }
    fn live_count(&self) -> u32 {
        Self::live_count(self)
    }
    fn critical_depth(&self) -> Option<u32> {
        Some(Self::critical_depth(self))
    }
}

impl Barrier for DisseminationBarrier {
    fn threads(&self) -> u32 {
        Self::threads(self)
    }
    fn waiter<'a>(&'a self, tid: u32) -> Box<dyn Waiter + 'a> {
        Box::new(self.waiter(tid))
    }
    fn is_poisoned(&self) -> bool {
        Self::is_poisoned(self)
    }
    fn critical_depth(&self) -> Option<u32> {
        Some(self.rounds()) // ⌈log₂ p⌉ rounds, arrival-order-blind
    }
}

impl Barrier for TournamentBarrier {
    fn threads(&self) -> u32 {
        Self::threads(self)
    }
    fn waiter<'a>(&'a self, tid: u32) -> Box<dyn Waiter + 'a> {
        Box::new(self.waiter(tid))
    }
    fn is_poisoned(&self) -> bool {
        Self::is_poisoned(self)
    }
    fn stragglers(&self) -> Vec<u32> {
        Self::stragglers(self)
    }
    fn evict(&self, tid: u32) -> bool {
        Self::evict(self, tid)
    }
    fn evict_stragglers(&self) -> Vec<u32> {
        Self::evict_stragglers(self)
    }
    fn detach(&self, tid: u32) -> bool {
        Self::detach(self, tid)
    }
    fn live_count(&self) -> u32 {
        Self::live_count(self)
    }
    fn critical_depth(&self) -> Option<u32> {
        Some(self.rounds())
    }
}

impl Barrier for DynamicBarrier {
    fn threads(&self) -> u32 {
        Self::threads(self)
    }
    fn waiter<'a>(&'a self, tid: u32) -> Box<dyn Waiter + 'a> {
        Box::new(self.waiter(tid))
    }
    fn is_poisoned(&self) -> bool {
        Self::is_poisoned(self)
    }
    fn stragglers(&self) -> Vec<u32> {
        Self::stragglers(self)
    }
    fn evict(&self, tid: u32) -> bool {
        Self::evict(self, tid)
    }
    fn evict_stragglers(&self) -> Vec<u32> {
        Self::evict_stragglers(self)
    }
    fn detach(&self, tid: u32) -> bool {
        Self::detach(self, tid)
    }
    fn live_count(&self) -> u32 {
        Self::live_count(self)
    }
    fn critical_depth(&self) -> Option<u32> {
        Some(Self::critical_depth(self))
    }
}

impl Waiter for AsyncWaiter {
    forward_wait!();
    fn as_fuzzy(&mut self) -> Option<&mut dyn FuzzyWaiter> {
        Some(self)
    }
    fn rejoin(&mut self) -> Result<bool, BarrierError> {
        Self::rejoin(self)
    }
}

impl Barrier for AsyncBarrier {
    fn threads(&self) -> u32 {
        Self::threads(self)
    }
    fn waiter<'a>(&'a self, tid: u32) -> Box<dyn Waiter + 'a> {
        Box::new(self.waiter_for(tid))
    }
    fn is_poisoned(&self) -> bool {
        Self::is_poisoned(self)
    }
    fn live_count(&self) -> u32 {
        Self::live_count(self)
    }
    fn critical_depth(&self) -> Option<u32> {
        Some(2) // shard combine + root combine, regardless of p
    }
    fn as_async(&self) -> Option<&AsyncBarrier> {
        Some(self)
    }
}

impl Barrier for AdaptiveBarrier {
    fn threads(&self) -> u32 {
        Self::threads(self)
    }
    fn waiter<'a>(&'a self, tid: u32) -> Box<dyn Waiter + 'a> {
        Box::new(self.waiter(tid))
    }
    fn is_poisoned(&self) -> bool {
        Self::is_poisoned(self)
    }
    fn stragglers(&self) -> Vec<u32> {
        Self::stragglers(self)
    }
    fn evict(&self, tid: u32) -> bool {
        Self::evict(self, tid)
    }
    fn evict_stragglers(&self) -> Vec<u32> {
        Self::evict_stragglers(self)
    }
    fn detach(&self, tid: u32) -> bool {
        Self::detach(self, tid)
    }
    fn live_count(&self) -> u32 {
        Self::live_count(self)
    }
    fn critical_depth(&self) -> Option<u32> {
        Some(Self::critical_depth(self))
    }
}

/// One construction path over all ten barrier kinds.
///
/// The kind (with its shape parameters) picks the family; the optional
/// knobs configure the pieces that used to require calling each
/// family's own constructor:
///
/// ```
/// use combar_rt::barrier::BarrierBuilder;
/// use combar_rt::conformance::BarrierKind;
///
/// let b = BarrierBuilder::new(BarrierKind::Dynamic { degree: 2 }, 8).build();
/// let mut w = b.waiter(0);
/// # drop(w);
/// ```
///
/// For [`BarrierKind::Adaptive`], `candidates`, `window`, and `policy`
/// feed `AdaptiveBarrier::new`; the defaults match the conformance
/// matrix's spread-threshold stand-in. A supervisor config and a trace
/// sink can be attached for any kind.
pub struct BarrierBuilder {
    kind: BarrierKind,
    participants: u32,
    candidates: Vec<u32>,
    window: u32,
    policy: Option<DegreePolicy>,
    supervisor: Option<SupervisorConfig>,
    book: Option<Arc<trace::TraceBook>>,
}

impl fmt::Debug for BarrierBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BarrierBuilder")
            .field("kind", &self.kind)
            .field("participants", &self.participants)
            .field("candidates", &self.candidates)
            .field("window", &self.window)
            .finish_non_exhaustive()
    }
}

impl BarrierBuilder {
    /// Starts a builder for `participants` threads of the given kind.
    pub fn new(kind: BarrierKind, participants: u32) -> Self {
        Self {
            kind,
            participants,
            candidates: vec![2, 4],
            window: 5,
            policy: None,
            supervisor: None,
            book: None,
        }
    }

    /// Candidate degrees for [`BarrierKind::Adaptive`] (ignored by the
    /// other kinds).
    pub fn candidates(mut self, degrees: &[u32]) -> Self {
        self.candidates = degrees.to_vec();
        self
    }

    /// Re-decision window (episodes) for [`BarrierKind::Adaptive`].
    pub fn window(mut self, episodes: u32) -> Self {
        self.window = episodes;
        self
    }

    /// Degree policy for [`BarrierKind::Adaptive`]. Defaults to the
    /// spread-threshold stand-in used by the conformance matrix.
    pub fn policy(mut self, policy: DegreePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Attaches a failure-detection supervisor with this configuration;
    /// [`AnyBarrier::supervisor`] exposes it after `build`.
    pub fn supervise(mut self, cfg: SupervisorConfig) -> Self {
        self.supervisor = Some(cfg);
        self
    }

    /// Attaches a `combar-trace` sink. The builder does not install
    /// thread-local writers (attachment is inherently per-thread);
    /// participants call [`AnyBarrier::attach`] on their own thread,
    /// and the harness entry points do so automatically.
    pub fn trace(mut self, book: Arc<trace::TraceBook>) -> Self {
        self.book = Some(book);
        self
    }

    /// Builds the barrier behind the unified [`Barrier`] trait.
    ///
    /// # Panics
    ///
    /// Panics if `participants == 0` (or the kind's own shape
    /// constraints are violated, e.g. empty adaptive candidates).
    pub fn build(self) -> AnyBarrier {
        let p = self.participants;
        let inner: Box<dyn Barrier> = match self.kind {
            BarrierKind::Central => Box::new(CentralBarrier::new(p)),
            BarrierKind::Blocking => Box::new(BlockingBarrier::new(p)),
            BarrierKind::CombiningTree { degree } => Box::new(TreeBarrier::combining(p, degree)),
            BarrierKind::McsTree { degree } => Box::new(TreeBarrier::mcs(p, degree)),
            BarrierKind::Dissemination => Box::new(DisseminationBarrier::new(p)),
            BarrierKind::Tournament => Box::new(TournamentBarrier::new(p)),
            BarrierKind::Dynamic { degree } => Box::new(DynamicBarrier::mcs(p, degree)),
            BarrierKind::Adaptive => {
                let policy = self.policy.unwrap_or_else(|| {
                    // Spread-threshold stand-in: prefer shallow trees
                    // while arrivals are tight, deep ones once they
                    // spread out.
                    Box::new(|sigma_us, _p| if sigma_us > 25.0 { 2 } else { 4 })
                });
                Box::new(AdaptiveBarrier::new(
                    p,
                    &self.candidates,
                    self.window,
                    policy,
                ))
            }
            BarrierKind::Async { shards } => Box::new(AsyncBarrier::new(p, shards)),
        };
        let supervisor = self.supervisor.map(|cfg| Supervisor::with_config(p, cfg));
        AnyBarrier {
            inner,
            book: self.book,
            supervisor,
        }
    }
}

/// A barrier of any [`BarrierKind`]: a thin newtype over
/// `Box<dyn Barrier>`, optionally carrying the trace sink and
/// supervisor it was built with.
pub struct AnyBarrier {
    inner: Box<dyn Barrier>,
    book: Option<Arc<trace::TraceBook>>,
    supervisor: Option<Supervisor>,
}

impl fmt::Debug for AnyBarrier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnyBarrier")
            .field("inner", &self.inner)
            .field("traced", &self.book.is_some())
            .field("supervised", &self.supervisor.is_some())
            .finish()
    }
}

impl AnyBarrier {
    /// Creates the per-thread handle for participant `tid`.
    pub fn waiter(&self, tid: u32) -> AnyWaiter<'_> {
        AnyWaiter(self.inner.waiter(tid))
    }

    /// The trait object itself, for callers generic over
    /// `&dyn Barrier`.
    pub fn as_dyn(&self) -> &dyn Barrier {
        &*self.inner
    }

    /// The trace sink the builder attached, if any.
    pub fn trace_book(&self) -> Option<&Arc<trace::TraceBook>> {
        self.book.as_ref()
    }

    /// Attaches the builder's trace sink to the *calling* thread,
    /// tagging its events with writer id `writer` (conventionally the
    /// tid). `None` when the barrier was built without a sink. Events
    /// flush when the returned guard drops — on this same thread.
    pub fn attach(&self, writer: u32) -> Option<trace::SinkGuard> {
        self.book.as_ref().map(|b| b.attach(writer))
    }

    /// The failure-detection supervisor the builder configured, if any.
    /// Drive it with [`Supervisor::beat`] from participants and
    /// [`Supervisor::poll`] (over `self`, which implements
    /// [`SelfHealing`]) from a monitor thread.
    pub fn supervisor(&self) -> Option<&Supervisor> {
        self.supervisor.as_ref()
    }

    /// The async capability of the underlying kind: `Some` for
    /// [`BarrierKind::Async`], where participants can be parked wakers
    /// multiplexed by an executor instead of OS threads.
    pub fn as_async(&self) -> Option<&AsyncBarrier> {
        self.inner.as_async()
    }
}

impl std::ops::Deref for AnyBarrier {
    type Target = dyn Barrier;
    fn deref(&self) -> &Self::Target {
        &*self.inner
    }
}

impl SelfHealing for AnyBarrier {
    fn threads(&self) -> u32 {
        self.inner.threads()
    }
    fn stragglers(&self) -> Vec<u32> {
        self.inner.stragglers()
    }
    fn fail(&self, tid: u32) -> bool {
        // Prefer the boundary-applied removal; fall back to plain
        // eviction for kinds that only degrade (no reconfiguration).
        self.inner.detach(tid) || self.inner.evict(tid)
    }
    fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }
}

/// A waiter of any kind: a thin newtype over `Box<dyn Waiter>`.
#[derive(Debug)]
pub struct AnyWaiter<'b>(Box<dyn Waiter + 'b>);

impl<'b> AnyWaiter<'b> {
    /// Wraps an already-boxed trait-object waiter.
    pub fn from_boxed(inner: Box<dyn Waiter + 'b>) -> Self {
        AnyWaiter(inner)
    }

    /// This participant's id.
    pub fn tid(&self) -> u32 {
        self.0.tid()
    }

    /// One full barrier episode (panicking variant).
    pub fn wait(&mut self) {
        self.0.wait()
    }

    /// Unbounded fallible full barrier.
    pub fn try_wait(&mut self) -> Result<(), BarrierError> {
        self.0.try_wait()
    }

    /// One bounded barrier crossing.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
        self.0.wait_timeout(timeout)
    }

    /// The fuzzy arrive/depart view, where the kind supports it.
    pub fn as_fuzzy(&mut self) -> Option<&mut dyn FuzzyWaiter> {
        self.0.as_fuzzy()
    }

    /// Re-admission after eviction; `Ok(false)` if never evicted (or
    /// the kind has no rejoin protocol).
    pub fn rejoin(&mut self) -> Result<bool, BarrierError> {
        self.0.rejoin()
    }

    /// Bounded [`Self::rejoin`].
    pub fn rejoin_within(&mut self, timeout: Duration) -> Result<bool, BarrierError> {
        self.0.rejoin_within(timeout)
    }
}

impl Waiter for AnyWaiter<'_> {
    fn tid(&self) -> u32 {
        self.0.tid()
    }
    fn try_wait(&mut self) -> Result<(), BarrierError> {
        self.0.try_wait()
    }
    fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
        self.0.wait_timeout(timeout)
    }
    fn wait(&mut self) {
        self.0.wait()
    }
    fn as_fuzzy(&mut self) -> Option<&mut dyn FuzzyWaiter> {
        self.0.as_fuzzy()
    }
    fn rejoin(&mut self) -> Result<bool, BarrierError> {
        self.0.rejoin()
    }
    fn rejoin_within(&mut self, timeout: Duration) -> Result<bool, BarrierError> {
        self.0.rejoin_within(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every kind builds through the builder, steps through the trait
    /// object, and advertises capabilities consistently.
    #[test]
    fn builder_covers_every_kind() {
        for kind in BarrierKind::all() {
            let b = BarrierBuilder::new(kind, 2).build();
            assert_eq!(b.threads(), 2, "{}", kind.label());
            assert!(!b.is_poisoned(), "{}", kind.label());
            assert!(b.critical_depth().is_some(), "{}", kind.label());
            std::thread::scope(|s| {
                for tid in 0..2 {
                    let b = &b;
                    s.spawn(move || {
                        let mut w = b.waiter(tid);
                        assert_eq!(w.tid(), tid);
                        for _ in 0..10 {
                            w.try_wait().unwrap();
                        }
                    });
                }
            });
        }
    }

    /// The fuzzy capability surfaces identically through the trait and
    /// the kind's own advertisement.
    #[test]
    fn fuzzy_capability_matches_kind() {
        for kind in BarrierKind::all() {
            let b = BarrierBuilder::new(kind, 1).build();
            let mut w = b.waiter(0);
            assert_eq!(
                w.as_fuzzy().is_some(),
                kind.supports_fuzzy(),
                "{}",
                kind.label()
            );
        }
    }

    /// A builder-attached trace sink records events for any kind.
    #[test]
    fn trace_sink_records_through_builder() {
        let book = trace::TraceBook::new();
        let b = BarrierBuilder::new(BarrierKind::Central, 1)
            .trace(Arc::clone(&book))
            .build();
        {
            let _g = b.attach(0).expect("sink was attached");
            let mut w = b.waiter(0);
            for _ in 0..3 {
                w.try_wait().unwrap();
            }
        }
        let events = book.drain();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind == trace::Kind::Release)
                .count(),
            3
        );
    }

    /// The supervisor configured at build time declares a straggler
    /// through the `SelfHealing` impl on `AnyBarrier`.
    #[test]
    fn supervisor_heals_through_the_trait_object() {
        let cfg = SupervisorConfig {
            min_grace: Duration::from_millis(2),
            ..SupervisorConfig::default()
        };
        let b = BarrierBuilder::new(BarrierKind::CombiningTree { degree: 2 }, 2)
            .supervise(cfg)
            .build();
        let sup = b.supervisor().expect("configured");
        let mut w0 = b.waiter(0);
        assert_eq!(
            w0.wait_timeout(Duration::from_millis(5)),
            Err(BarrierError::Timeout)
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let declared = sup.poll(&b);
            if declared == vec![1] {
                break;
            }
            assert!(declared.is_empty(), "unexpected declarations: {declared:?}");
            assert!(
                std::time::Instant::now() < deadline,
                "straggler never declared"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // The declared detach folds into the live shape at an episode
        // boundary; cross until the shape reflects it.
        loop {
            w0.wait_timeout(Duration::from_secs(5)).unwrap();
            if b.live_count() == 1 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "detach never applied");
        }
    }
}
