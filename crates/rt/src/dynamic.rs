//! The dynamic placement barrier (paper Section 5.1, Figures 6–7).
//!
//! An MCS-style tree barrier in which a processor that arrives last in
//! a subtree **swaps positions** with the processor attached to that
//! subtree's root counter, so persistently slow processors migrate
//! toward the root and their critical path shrinks from `O(log p)`
//! toward `O(1)`.
//!
//! # Protocol
//!
//! Per the paper, each counter carries a `Local` field naming its
//! attached processor, and a displaced *victim* discovers the swap at
//! its next arrival, paying one extra communication. Two deliberate
//! engineering deviations from the paper's exact two-field scheme, both
//! forced by correctness concerns its prose leaves open:
//!
//! * **Victim notification is a per-processor `new_home` slot** rather
//!   than a per-counter `Destination` field. The paper's leaf counters
//!   hold up to `d+1` processors but have only one `Local`/`Destination`
//!   pair, so a swap whose victim lands on a shared leaf would falsely
//!   "displace" every other tenant of that leaf. A per-processor slot
//!   is unambiguous and costs the same single extra read.
//! * **Swaps cascade level by level** instead of being applied once at
//!   the top of the winning chain. The victor swaps *before* performing
//!   the increment that might lose, so every swap write is ordered
//!   before the barrier's release through the chain of `AcqRel`
//!   counter updates — otherwise a victim could re-enter the next
//!   episode before the swap became visible and two threads would
//!   update the same home counter. The net effect per episode is the
//!   same processor-to-top migration (the chain of owners rotates down
//!   one level), and the communication bound is unchanged: at most one
//!   swap per counter per episode, i.e. `1/(d+1)` extra communications
//!   per processor.
//!
//! # Fault model
//!
//! Same surface as the static tree: bounded waits via
//! [`DynamicWaiter::wait_timeout`], poisoning on mid-episode drops, and
//! eviction with proxy arrivals. A proxy walk never swaps — the evicted
//! thread is not present to notice a displacement — but it does consume
//! any displacement notice left for the thread, so the roster always
//! signals the thread's live (possibly migrated) home counter, and a
//! rejoining waiter resumes from that counter.

use crate::error::BarrierError;
use crate::pad::CachePadded;
use crate::roster::{Arrival, Roster};
use crate::spin::{wait_for_epoch_fallible, EpochWait};
use crate::sync::{AtomicU32, AtomicU64, Ordering};
use combar_topo::{CounterId, Topology};
use std::time::{Duration, Instant};

const INVALID: u32 = u32::MAX;

/// A dynamic placement tree barrier.
///
/// # Examples
///
/// A systematically slow thread migrates to the root (depth 1):
///
/// ```
/// use combar_rt::DynamicBarrier;
/// use std::time::Duration;
///
/// let barrier = DynamicBarrier::mcs(4, 2);
/// std::thread::scope(|s| {
///     for tid in 0..4 {
///         let barrier = &barrier;
///         s.spawn(move || {
///             let mut w = barrier.waiter(tid);
///             for _ in 0..20 {
///                 if tid == 3 {
///                     std::thread::sleep(Duration::from_millis(1));
///                 }
///                 w.wait();
///             }
///             if tid == 3 {
///                 assert_eq!(w.depth(), 1); // owns the root now
///             }
///         });
///     }
/// });
/// assert!(barrier.swap_count() > 0);
/// ```
#[derive(Debug)]
pub struct DynamicBarrier {
    counts: Vec<CachePadded<AtomicU32>>,
    /// Owner of each single-occupant counter (`INVALID` for shared
    /// leaves and the merge root).
    local: Vec<CachePadded<AtomicU32>>,
    /// Per-thread displacement notice: the new home counter, or
    /// `INVALID`.
    new_home: Vec<CachePadded<AtomicU32>>,
    fan_in: Vec<u32>,
    parent: Vec<Option<CounterId>>,
    path_len: Vec<u32>,
    /// Ring id per counter (`INVALID` for the merge root), used to keep
    /// swaps within rings on KSR-style topologies.
    ring: Vec<u32>,
    /// Whether a counter may be a swap target (exactly one occupant).
    swappable: Vec<bool>,
    epoch: CachePadded<AtomicU32>,
    poison: CachePadded<AtomicU32>,
    roster: Roster,
    swaps: AtomicU64,
    /// Current home of each thread, maintained at swap time so fresh
    /// waiters (created between phases) start from the live placement.
    cur_home: Vec<CachePadded<AtomicU32>>,
    degree: u32,
}

impl DynamicBarrier {
    /// Builds the barrier from an owner-tree topology (MCS or ring-MCS;
    /// combining trees have no internal owners, so no swap could ever
    /// fire — they are rejected to catch misuse).
    ///
    /// # Panics
    ///
    /// Panics if no counter of the topology is swappable.
    pub fn from_topology(topo: &Topology) -> Self {
        let swappable: Vec<bool> = topo.nodes().iter().map(|n| n.procs.len() == 1).collect();
        assert!(
            !matches!(topo.kind(), combar_topo::TopologyKind::Combining)
                || topo.num_counters() == 1,
            "dynamic placement needs owner counters (use an MCS-style topology)"
        );
        // Tiny owner trees (p ≤ d+1) collapse to one shared leaf with
        // no swappable counter; the barrier then degenerates to static
        // behaviour, which is correct (there is no depth to save).
        Self {
            counts: (0..topo.num_counters())
                .map(|_| CachePadded::new(AtomicU32::new(0)))
                .collect(),
            local: topo
                .nodes()
                .iter()
                .map(|n| {
                    let owner = if n.procs.len() == 1 {
                        n.procs[0]
                    } else {
                        INVALID
                    };
                    CachePadded::new(AtomicU32::new(owner))
                })
                .collect(),
            new_home: (0..topo.num_procs())
                .map(|_| CachePadded::new(AtomicU32::new(INVALID)))
                .collect(),
            fan_in: topo.nodes().iter().map(|n| n.fan_in()).collect(),
            parent: topo.nodes().iter().map(|n| n.parent).collect(),
            path_len: topo.nodes().iter().map(|n| n.path_len).collect(),
            ring: topo
                .nodes()
                .iter()
                .map(|n| n.ring.unwrap_or(INVALID))
                .collect(),
            swappable,
            epoch: CachePadded::new(AtomicU32::new(0)),
            poison: CachePadded::new(AtomicU32::new(0)),
            roster: Roster::new(topo.num_procs()),
            swaps: AtomicU64::new(0),
            cur_home: topo
                .homes()
                .iter()
                .map(|&h| CachePadded::new(AtomicU32::new(h)))
                .collect(),
            degree: topo.degree(),
        }
    }

    /// An MCS owner tree of the given degree over `p` threads.
    pub fn mcs(p: u32, degree: u32) -> Self {
        Self::from_topology(&Topology::mcs(p, degree))
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.new_home.len() as u32
    }

    /// The construction degree.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Total swaps applied so far.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Creates the per-thread handle for thread `tid`.
    ///
    /// Waiters may be created at any quiescent point (no episode in
    /// flight): they inherit the barrier's current epoch and the
    /// thread's *current* (possibly migrated) home counter, so the
    /// barrier survives being reused across thread-team phases.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn waiter(&self, tid: u32) -> DynamicWaiter<'_> {
        assert!(
            (tid as usize) < self.new_home.len(),
            "thread id out of range"
        );
        DynamicWaiter {
            barrier: self,
            tid,
            epoch: self.epoch.load(Ordering::Acquire),
            fc: self.cur_home[tid as usize].load(Ordering::Acquire),
            pending: false,
        }
    }

    /// Whether a participant died mid-episode, wedging the barrier.
    pub fn is_poisoned(&self) -> bool {
        self.poison.load(Ordering::Acquire) != 0
    }

    /// Number of currently evicted participants.
    pub fn evicted_count(&self) -> u32 {
        self.roster.evicted_count()
    }

    /// Whether participant `tid` is currently evicted.
    pub fn is_evicted(&self, tid: u32) -> bool {
        self.roster.is_evicted(tid)
    }

    /// Participants that have not arrived for the in-flight episode.
    pub fn stragglers(&self) -> Vec<u32> {
        self.roster.stragglers(&self.epoch)
    }

    /// Evicts participant `tid` if it has not arrived for the episode
    /// in flight; its (current) home counter is thereafter walked by
    /// proxy at each release. Returns whether the eviction happened.
    pub fn evict(&self, tid: u32) -> bool {
        assert!(
            (tid as usize) < self.new_home.len(),
            "thread id out of range"
        );
        if self.roster.evict(tid, &self.epoch) {
            if self.proxy_signal(tid) {
                self.maintain();
            }
            true
        } else {
            false
        }
    }

    /// Evicts every current straggler; returns the evicted ids.
    pub fn evict_stragglers(&self) -> Vec<u32> {
        self.stragglers()
            .into_iter()
            .filter(|&t| self.evict(t))
            .collect()
    }

    /// The signalling walk without swaps: increment from `start`
    /// upward; returns whether this walk released the episode.
    fn signal_static(&self, start: CounterId) -> bool {
        let mut c = start as usize;
        loop {
            let prev = self.counts[c].fetch_add(1, Ordering::AcqRel);
            debug_assert!(prev < self.fan_in[c], "counter over-updated");
            if prev + 1 < self.fan_in[c] {
                return false;
            }
            self.counts[c].store(0, Ordering::Relaxed);
            match self.parent[c] {
                Some(par) => c = par as usize,
                None => {
                    self.epoch.fetch_add(1, Ordering::Release);
                    return true;
                }
            }
        }
    }

    /// Arrival walk performed on behalf of evicted thread `tid`:
    /// consumes any displacement notice (keeping `cur_home` live), then
    /// signals statically from the thread's current home.
    ///
    /// Safe against concurrent swaps: a swap victimising `tid` requires
    /// `tid`'s home counter to fill, which requires this very proxy's
    /// increment — so the notice consumed here (if any) happened-before
    /// this call, and no new notice can appear until after our
    /// increment below.
    fn proxy_signal(&self, tid: u32) -> bool {
        let t = tid as usize;
        let moved = self.new_home[t].load(Ordering::Acquire);
        if moved != INVALID {
            self.new_home[t].store(INVALID, Ordering::Relaxed);
            self.cur_home[t].store(moved, Ordering::Release);
        }
        let home = self.cur_home[t].load(Ordering::Acquire);
        self.signal_static(home)
    }

    /// Post-release proxy sweep for evicted participants.
    fn maintain(&self) {
        self.roster
            .maintain(&self.epoch, |tid| self.proxy_signal(tid));
    }

    /// Whether `target` is a legal swap destination for a thread homed
    /// at `from`.
    fn swap_ok(&self, from: CounterId, target: CounterId) -> bool {
        target != from
            && self.swappable[target as usize]
            && self.ring[target as usize] == self.ring[from as usize]
    }

    /// Applies one swap: `tid` (homed at `from`) takes `target`,
    /// displacing its owner down to `from`. All plain stores — callers
    /// guarantee exclusivity (only the unique winner of `target`
    /// reaches this) and ordering (the writes precede the caller's next
    /// `AcqRel` counter update or the release itself).
    fn apply_swap(&self, tid: u32, from: CounterId, target: CounterId) {
        let victim = self.local[target as usize].load(Ordering::Acquire);
        debug_assert_ne!(victim, INVALID, "swappable counters always have an owner");
        self.local[target as usize].store(tid, Ordering::Release);
        if self.swappable[from as usize] {
            self.local[from as usize].store(victim, Ordering::Release);
        }
        self.new_home[victim as usize].store(from, Ordering::Release);
        self.cur_home[tid as usize].store(target, Ordering::Release);
        self.cur_home[victim as usize].store(from, Ordering::Release);
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-thread handle to a [`DynamicBarrier`].
///
/// Dropping a waiter between `arrive` and a completed depart poisons
/// the barrier: peers receive [`BarrierError::Poisoned`] instead of
/// spinning forever.
#[derive(Debug)]
pub struct DynamicWaiter<'a> {
    barrier: &'a DynamicBarrier,
    tid: u32,
    epoch: u32,
    fc: CounterId,
    pending: bool,
}

impl DynamicWaiter<'_> {
    /// Signals arrival, performing any pending relocation first and
    /// cascading swaps while winning counters on the way up.
    ///
    /// # Panics
    ///
    /// Panics if called twice without a depart, if the barrier is
    /// poisoned, or if this participant has been evicted.
    pub fn arrive(&mut self) {
        assert!(!self.pending, "arrive called twice without depart");
        if let Err(e) = self.try_arrive() {
            panic!("barrier arrive failed: {e}");
        }
    }

    /// Fallible arrival: errors with [`BarrierError::Poisoned`] or
    /// [`BarrierError::Evicted`] instead of panicking.
    pub fn try_arrive(&mut self) -> Result<(), BarrierError> {
        assert!(!self.pending, "arrive called twice without depart");
        let b = self.barrier;
        if b.is_poisoned() {
            return Err(BarrierError::Poisoned);
        }
        let target = self.epoch.wrapping_add(1);
        match b.roster.try_arrive(self.tid, target) {
            Arrival::Evicted => return Err(BarrierError::Evicted),
            Arrival::Claimed => {}
        }
        self.pending = true;
        let tid = self.tid as usize;

        // Victim side (paper Figure 6d): notice a displacement before
        // touching any counter. One extra communication.
        let moved = b.new_home[tid].load(Ordering::Acquire);
        if moved != INVALID {
            b.new_home[tid].store(INVALID, Ordering::Relaxed);
            self.fc = moved;
        }

        let mut c = self.fc as usize;
        loop {
            let prev = b.counts[c].fetch_add(1, Ordering::AcqRel);
            debug_assert!(prev < b.fan_in[c], "counter over-updated");
            if prev + 1 < b.fan_in[c] {
                return Ok(()); // not last: propagation is someone else's job
            }
            // Last updater of c: reset, swap upward if this is a new
            // highest win, then continue.
            b.counts[c].store(0, Ordering::Relaxed);
            if b.swap_ok(self.fc, c as CounterId) {
                b.apply_swap(self.tid, self.fc, c as CounterId);
                self.fc = c as CounterId;
            }
            match b.parent[c] {
                Some(par) => c = par as usize,
                None => {
                    b.epoch.fetch_add(1, Ordering::Release);
                    b.maintain();
                    return Ok(());
                }
            }
        }
    }

    /// Blocks until the barrier releases.
    ///
    /// # Panics
    ///
    /// Panics if the barrier becomes poisoned while waiting.
    pub fn depart(&mut self) {
        assert!(self.pending, "depart called without arrive");
        if let Err(e) = self.depart_deadline(None) {
            panic!("barrier depart failed: {e}");
        }
    }

    fn depart_deadline(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        assert!(self.pending, "depart called without arrive");
        let b = self.barrier;
        let target = self.epoch.wrapping_add(1);
        match wait_for_epoch_fallible(&b.epoch, target, &b.poison, deadline) {
            EpochWait::Released => {
                self.epoch = target;
                self.pending = false;
                Ok(())
            }
            EpochWait::TimedOut => Err(BarrierError::Timeout),
            EpochWait::Poisoned => Err(BarrierError::Poisoned),
        }
    }

    fn wait_deadline(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        if !self.pending {
            self.try_arrive()?;
        }
        self.depart_deadline(deadline)
    }

    /// A full barrier: `arrive` then `depart`.
    ///
    /// # Panics
    ///
    /// Panics if the barrier is poisoned or this participant evicted.
    pub fn wait(&mut self) {
        if let Err(e) = self.wait_deadline(None) {
            panic!("barrier wait failed: {e}");
        }
    }

    /// A full barrier bounded by `timeout`.
    ///
    /// On [`BarrierError::Timeout`] the arrival stays registered: call
    /// a wait method again to resume the same episode rather than
    /// re-arriving. A timed-out waiter must not simply be dropped —
    /// that poisons the barrier; retry, or have a peer evict it.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
        self.wait_deadline(Some(Instant::now() + timeout))
    }

    /// Unbounded fallible full barrier: like [`Self::wait`] but
    /// returning poisoning/eviction as an error instead of panicking.
    /// Reads no clock, so schedules stay deterministic under the
    /// `combar-check` model checker.
    pub fn try_wait(&mut self) -> Result<(), BarrierError> {
        self.wait_deadline(None)
    }

    /// Unbounded fallible depart: like [`Self::depart`] but returning
    /// poisoning as an error instead of panicking. Reads no clock.
    pub fn try_depart(&mut self) -> Result<(), BarrierError> {
        self.depart_deadline(None)
    }

    /// Re-admission after eviction. On success the waiter is
    /// mid-episode (its latest arrival was delivered by proxy from its
    /// live home counter): complete it with a wait call, which departs
    /// without re-arriving. Returns `Ok(false)` if this participant was
    /// not evicted.
    pub fn rejoin(&mut self) -> Result<bool, BarrierError> {
        let b = self.barrier;
        if b.is_poisoned() {
            return Err(BarrierError::Poisoned);
        }
        match b.roster.rejoin(self.tid) {
            None => Ok(false),
            Some(last) => {
                self.epoch = last.wrapping_sub(1);
                self.pending = true;
                // Proxies kept cur_home live (consuming any displacement
                // notice), so resume from there.
                self.fc = b.cur_home[self.tid as usize].load(Ordering::Acquire);
                Ok(true)
            }
        }
    }

    /// Path length from this thread's current home to the root — the
    /// paper's "tree depth seen" metric. Reflects relocations the
    /// thread has already noticed.
    pub fn depth(&self) -> u32 {
        self.barrier.path_len[self.fc as usize]
    }

    /// This thread's id.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

impl Drop for DynamicWaiter<'_> {
    fn drop(&mut self) {
        if self.pending {
            self.barrier.poison.store(1, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    fn lockstep_check(barrier: &DynamicBarrier, episodes: u32, stagger: bool) {
        let p = barrier.threads() as usize;
        let phases: Vec<AtomicU32> = (0..p).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..p {
                let phases = &phases;
                s.spawn(move || {
                    let mut w = barrier.waiter(tid as u32);
                    for e in 0..episodes {
                        if stagger && (e as usize + tid) % 3 == 0 {
                            std::thread::yield_now();
                        }
                        phases[tid].store(e + 1, Ordering::Release);
                        w.wait();
                        for q in phases {
                            let ph = q.load(Ordering::Acquire);
                            assert!(ph == e + 1 || ph == e + 2, "episode {e}: phase {ph}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn lockstep_under_contention() {
        for (p, d) in [(4u32, 2u32), (8, 2), (7, 4)] {
            let b = DynamicBarrier::mcs(p, d);
            lockstep_check(&b, 150, true);
        }
    }

    #[test]
    fn lockstep_on_ring_topology() {
        let topo = Topology::ring_mcs(8, 2, 4);
        let b = DynamicBarrier::from_topology(&topo);
        lockstep_check(&b, 150, true);
    }

    /// The paper's headline behaviour: a systematically slow thread
    /// migrates to the root and sees depth 1.
    #[test]
    fn slow_thread_migrates_to_root() {
        const P: u32 = 8;
        let b = DynamicBarrier::mcs(P, 2);
        let slow_tid = 7u32; // starts on a deep leaf
        let final_depths: Vec<AtomicU32> = (0..P).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..P {
                let b = &b;
                let final_depths = &final_depths;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for _ in 0..30 {
                        if tid == slow_tid {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        w.wait();
                    }
                    final_depths[tid as usize].store(w.depth(), Ordering::Relaxed);
                });
            }
        });
        let slow_depth = final_depths[slow_tid as usize].load(Ordering::Relaxed);
        assert_eq!(slow_depth, 1, "slow thread should own the root");
        assert!(b.swap_count() > 0);
    }

    /// Swaps never fire when the barrier degenerates (single thread).
    #[test]
    fn single_thread_never_blocks_or_swaps() {
        let b = DynamicBarrier::mcs(1, 4);
        let mut w = b.waiter(0);
        for _ in 0..50 {
            w.wait();
        }
        assert_eq!(b.swap_count(), 0);
        assert_eq!(w.depth(), 1);
    }

    /// On a ring topology, threads keep to their ring: the merge root
    /// is never owned.
    #[test]
    fn merge_root_never_acquires_an_owner() {
        let topo = Topology::ring_mcs(8, 2, 4);
        let root = topo.root() as usize;
        let b = DynamicBarrier::from_topology(&topo);
        std::thread::scope(|s| {
            for tid in 0..8u32 {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for e in 0..40 {
                        if (e + tid) % 5 == 0 {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        w.wait();
                    }
                });
            }
        });
        assert_eq!(b.local[root].load(Ordering::Relaxed), INVALID);
    }

    /// After any number of episodes, the set of current homes (as seen
    /// by the waiters) must remain a permutation-compatible assignment:
    /// every counter's occupancy is intact, witnessed by the barrier
    /// still functioning and counters reading zero at rest.
    #[test]
    fn counters_rest_at_zero_after_swapping_episodes() {
        let b = DynamicBarrier::mcs(6, 2);
        std::thread::scope(|s| {
            for tid in 0..6u32 {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for e in 0..60 {
                        if (e + tid * 7) % 4 == 0 {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                        w.wait();
                    }
                });
            }
        });
        for c in &b.counts {
            assert_eq!(c.load(Ordering::Relaxed), 0);
        }
    }

    /// Eviction must track migration: the dead thread is first swapped
    /// toward the root (it is slow), then evicted; proxies must walk
    /// its *migrated* home, and rejoin must resume from it.
    #[test]
    fn eviction_follows_migrated_home_and_rejoin_resumes() {
        let b = DynamicBarrier::mcs(6, 2);
        let dead = 5u32;
        std::thread::scope(|s| {
            for tid in 0..6u32 {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for _ in 0..20 {
                        if tid == dead {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        w.wait();
                    }
                    if tid == dead {
                        return; // goes silent (waiter dropped clean)
                    }
                    // Survivors time out, evict the straggler, and keep
                    // crossing for 120 further episodes.
                    let mut evicted = false;
                    for _ in 0..120 {
                        loop {
                            match w.wait_timeout(Duration::from_millis(20)) {
                                Ok(()) => break,
                                Err(BarrierError::Timeout) => {
                                    if !evicted {
                                        b.evict(dead);
                                        evicted = true;
                                    }
                                }
                                Err(e) => panic!("unexpected: {e}"),
                            }
                        }
                    }
                });
            }
        });
        assert!(b.is_evicted(dead));
        assert!(!b.is_poisoned());
        // Rejoin resumes mid-episode from the live home; a full
        // all-hands episode then completes.
        let mut w = b.waiter(dead);
        assert!(w.rejoin().unwrap());
        let mut ws: Vec<_> = (0..5).map(|t| b.waiter(t)).collect();
        std::thread::scope(|s| {
            s.spawn(move || {
                for _ in 0..10 {
                    w.wait_timeout(Duration::from_secs(2)).unwrap();
                }
            });
            for w in &mut ws {
                s.spawn(move || {
                    for _ in 0..10 {
                        w.wait_timeout(Duration::from_secs(2)).unwrap();
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "owner counters")]
    fn combining_topology_rejected() {
        let _ = DynamicBarrier::from_topology(&Topology::combining(16, 4));
    }
}
