//! The dynamic placement barrier (paper Section 5.1, Figures 6–7).
//!
//! An MCS-style tree barrier in which a processor that arrives last in
//! a subtree **swaps positions** with the processor attached to that
//! subtree's root counter, so persistently slow processors migrate
//! toward the root and their critical path shrinks from `O(log p)`
//! toward `O(1)`.
//!
//! # Protocol
//!
//! Per the paper, each counter carries a `Local` field naming its
//! attached processor, and a displaced *victim* discovers the swap at
//! its next arrival, paying one extra communication. Two deliberate
//! engineering deviations from the paper's exact two-field scheme, both
//! forced by correctness concerns its prose leaves open:
//!
//! * **Victim notification is a per-processor `new_home` slot** rather
//!   than a per-counter `Destination` field. The paper's leaf counters
//!   hold up to `d+1` processors but have only one `Local`/`Destination`
//!   pair, so a swap whose victim lands on a shared leaf would falsely
//!   "displace" every other tenant of that leaf. A per-processor slot
//!   is unambiguous and costs the same single extra read.
//! * **Swaps cascade level by level** instead of being applied once at
//!   the top of the winning chain. The victor swaps *before* performing
//!   the increment that might lose, so every swap write is ordered
//!   before the barrier's release through the chain of `AcqRel`
//!   counter updates — otherwise a victim could re-enter the next
//!   episode before the swap became visible and two threads would
//!   update the same home counter. The net effect per episode is the
//!   same processor-to-top migration (the chain of owners rotates down
//!   one level), and the communication bound is unchanged: at most one
//!   swap per counter per episode, i.e. `1/(d+1)` extra communications
//!   per processor.

use crate::pad::CachePadded;
use crate::spin::wait_for_epoch;
use combar_topo::{CounterId, Topology};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

const INVALID: u32 = u32::MAX;

/// A dynamic placement tree barrier.
///
/// # Examples
///
/// A systematically slow thread migrates to the root (depth 1):
///
/// ```
/// use combar_rt::DynamicBarrier;
/// use std::time::Duration;
///
/// let barrier = DynamicBarrier::mcs(4, 2);
/// std::thread::scope(|s| {
///     for tid in 0..4 {
///         let barrier = &barrier;
///         s.spawn(move || {
///             let mut w = barrier.waiter(tid);
///             for _ in 0..20 {
///                 if tid == 3 {
///                     std::thread::sleep(Duration::from_millis(1));
///                 }
///                 w.wait();
///             }
///             if tid == 3 {
///                 assert_eq!(w.depth(), 1); // owns the root now
///             }
///         });
///     }
/// });
/// assert!(barrier.swap_count() > 0);
/// ```
#[derive(Debug)]
pub struct DynamicBarrier {
    counts: Vec<CachePadded<AtomicU32>>,
    /// Owner of each single-occupant counter (`INVALID` for shared
    /// leaves and the merge root).
    local: Vec<CachePadded<AtomicU32>>,
    /// Per-thread displacement notice: the new home counter, or
    /// `INVALID`.
    new_home: Vec<CachePadded<AtomicU32>>,
    fan_in: Vec<u32>,
    parent: Vec<Option<CounterId>>,
    path_len: Vec<u32>,
    /// Ring id per counter (`INVALID` for the merge root), used to keep
    /// swaps within rings on KSR-style topologies.
    ring: Vec<u32>,
    /// Whether a counter may be a swap target (exactly one occupant).
    swappable: Vec<bool>,
    epoch: CachePadded<AtomicU32>,
    swaps: AtomicU64,
    /// Current home of each thread, maintained at swap time so fresh
    /// waiters (created between phases) start from the live placement.
    cur_home: Vec<CachePadded<AtomicU32>>,
    degree: u32,
}

impl DynamicBarrier {
    /// Builds the barrier from an owner-tree topology (MCS or ring-MCS;
    /// combining trees have no internal owners, so no swap could ever
    /// fire — they are rejected to catch misuse).
    ///
    /// # Panics
    ///
    /// Panics if no counter of the topology is swappable.
    pub fn from_topology(topo: &Topology) -> Self {
        let swappable: Vec<bool> = topo.nodes().iter().map(|n| n.procs.len() == 1).collect();
        assert!(
            !matches!(topo.kind(), combar_topo::TopologyKind::Combining)
                || topo.num_counters() == 1,
            "dynamic placement needs owner counters (use an MCS-style topology)"
        );
        // Tiny owner trees (p ≤ d+1) collapse to one shared leaf with
        // no swappable counter; the barrier then degenerates to static
        // behaviour, which is correct (there is no depth to save).
        Self {
            counts: (0..topo.num_counters())
                .map(|_| CachePadded::new(AtomicU32::new(0)))
                .collect(),
            local: topo
                .nodes()
                .iter()
                .map(|n| {
                    let owner = if n.procs.len() == 1 { n.procs[0] } else { INVALID };
                    CachePadded::new(AtomicU32::new(owner))
                })
                .collect(),
            new_home: (0..topo.num_procs())
                .map(|_| CachePadded::new(AtomicU32::new(INVALID)))
                .collect(),
            fan_in: topo.nodes().iter().map(|n| n.fan_in()).collect(),
            parent: topo.nodes().iter().map(|n| n.parent).collect(),
            path_len: topo.nodes().iter().map(|n| n.path_len).collect(),
            ring: topo.nodes().iter().map(|n| n.ring.unwrap_or(INVALID)).collect(),
            swappable,
            epoch: CachePadded::new(AtomicU32::new(0)),
            swaps: AtomicU64::new(0),
            cur_home: topo
                .homes()
                .iter()
                .map(|&h| CachePadded::new(AtomicU32::new(h)))
                .collect(),
            degree: topo.degree(),
        }
    }

    /// An MCS owner tree of the given degree over `p` threads.
    pub fn mcs(p: u32, degree: u32) -> Self {
        Self::from_topology(&Topology::mcs(p, degree))
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.new_home.len() as u32
    }

    /// The construction degree.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Total swaps applied so far.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Creates the per-thread handle for thread `tid`.
    ///
    /// Waiters may be created at any quiescent point (no episode in
    /// flight): they inherit the barrier's current epoch and the
    /// thread's *current* (possibly migrated) home counter, so the
    /// barrier survives being reused across thread-team phases.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn waiter(&self, tid: u32) -> DynamicWaiter<'_> {
        assert!((tid as usize) < self.new_home.len(), "thread id out of range");
        DynamicWaiter {
            barrier: self,
            tid,
            epoch: self.epoch.load(Ordering::Acquire),
            fc: self.cur_home[tid as usize].load(Ordering::Acquire),
            pending: false,
        }
    }

    /// Whether `target` is a legal swap destination for a thread homed
    /// at `from`.
    fn swap_ok(&self, from: CounterId, target: CounterId) -> bool {
        target != from
            && self.swappable[target as usize]
            && self.ring[target as usize] == self.ring[from as usize]
    }

    /// Applies one swap: `tid` (homed at `from`) takes `target`,
    /// displacing its owner down to `from`. All plain stores — callers
    /// guarantee exclusivity (only the unique winner of `target`
    /// reaches this) and ordering (the writes precede the caller's next
    /// `AcqRel` counter update or the release itself).
    fn apply_swap(&self, tid: u32, from: CounterId, target: CounterId) {
        let victim = self.local[target as usize].load(Ordering::Acquire);
        debug_assert_ne!(victim, INVALID, "swappable counters always have an owner");
        self.local[target as usize].store(tid, Ordering::Release);
        if self.swappable[from as usize] {
            self.local[from as usize].store(victim, Ordering::Release);
        }
        self.new_home[victim as usize].store(from, Ordering::Release);
        self.cur_home[tid as usize].store(target, Ordering::Release);
        self.cur_home[victim as usize].store(from, Ordering::Release);
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-thread handle to a [`DynamicBarrier`].
#[derive(Debug)]
pub struct DynamicWaiter<'a> {
    barrier: &'a DynamicBarrier,
    tid: u32,
    epoch: u32,
    fc: CounterId,
    pending: bool,
}

impl DynamicWaiter<'_> {
    /// Signals arrival, performing any pending relocation first and
    /// cascading swaps while winning counters on the way up.
    pub fn arrive(&mut self) {
        assert!(!self.pending, "arrive called twice without depart");
        self.pending = true;
        let b = self.barrier;
        let tid = self.tid as usize;

        // Victim side (paper Figure 6d): notice a displacement before
        // touching any counter. One extra communication.
        let moved = b.new_home[tid].load(Ordering::Acquire);
        if moved != INVALID {
            b.new_home[tid].store(INVALID, Ordering::Relaxed);
            self.fc = moved;
        }

        let mut c = self.fc as usize;
        loop {
            let prev = b.counts[c].fetch_add(1, Ordering::AcqRel);
            debug_assert!(prev < b.fan_in[c], "counter over-updated");
            if prev + 1 < b.fan_in[c] {
                return; // not last: propagation is someone else's job
            }
            // Last updater of c: reset, swap upward if this is a new
            // highest win, then continue.
            b.counts[c].store(0, Ordering::Relaxed);
            if b.swap_ok(self.fc, c as CounterId) {
                b.apply_swap(self.tid, self.fc, c as CounterId);
                self.fc = c as CounterId;
            }
            match b.parent[c] {
                Some(par) => c = par as usize,
                None => {
                    b.epoch.fetch_add(1, Ordering::Release);
                    return;
                }
            }
        }
    }

    /// Blocks until the barrier releases.
    pub fn depart(&mut self) {
        assert!(self.pending, "depart called without arrive");
        self.pending = false;
        self.epoch = self.epoch.wrapping_add(1);
        wait_for_epoch(&self.barrier.epoch, self.epoch);
    }

    /// A full barrier: `arrive` then `depart`.
    pub fn wait(&mut self) {
        self.arrive();
        self.depart();
    }

    /// Path length from this thread's current home to the root — the
    /// paper's "tree depth seen" metric. Reflects relocations the
    /// thread has already noticed.
    pub fn depth(&self) -> u32 {
        self.barrier.path_len[self.fc as usize]
    }

    /// This thread's id.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    fn lockstep_check(barrier: &DynamicBarrier, episodes: u32, stagger: bool) {
        let p = barrier.threads() as usize;
        let phases: Vec<AtomicU32> = (0..p).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..p {
                let phases = &phases;
                s.spawn(move || {
                    let mut w = barrier.waiter(tid as u32);
                    for e in 0..episodes {
                        if stagger && (e as usize + tid) % 3 == 0 {
                            std::thread::yield_now();
                        }
                        phases[tid].store(e + 1, Ordering::Release);
                        w.wait();
                        for q in phases {
                            let ph = q.load(Ordering::Acquire);
                            assert!(ph == e + 1 || ph == e + 2, "episode {e}: phase {ph}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn lockstep_under_contention() {
        for (p, d) in [(4u32, 2u32), (8, 2), (7, 4)] {
            let b = DynamicBarrier::mcs(p, d);
            lockstep_check(&b, 150, true);
        }
    }

    #[test]
    fn lockstep_on_ring_topology() {
        let topo = Topology::ring_mcs(8, 2, 4);
        let b = DynamicBarrier::from_topology(&topo);
        lockstep_check(&b, 150, true);
    }

    /// The paper's headline behaviour: a systematically slow thread
    /// migrates to the root and sees depth 1.
    #[test]
    fn slow_thread_migrates_to_root() {
        const P: u32 = 8;
        let b = DynamicBarrier::mcs(P, 2);
        let slow_tid = 7u32; // starts on a deep leaf
        let final_depths: Vec<AtomicU32> = (0..P).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..P {
                let b = &b;
                let final_depths = &final_depths;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for _ in 0..30 {
                        if tid == slow_tid {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        w.wait();
                    }
                    final_depths[tid as usize].store(w.depth(), Ordering::Relaxed);
                });
            }
        });
        let slow_depth = final_depths[slow_tid as usize].load(Ordering::Relaxed);
        assert_eq!(slow_depth, 1, "slow thread should own the root");
        assert!(b.swap_count() > 0);
    }

    /// Swaps never fire when the barrier degenerates (single thread).
    #[test]
    fn single_thread_never_blocks_or_swaps() {
        let b = DynamicBarrier::mcs(1, 4);
        let mut w = b.waiter(0);
        for _ in 0..50 {
            w.wait();
        }
        assert_eq!(b.swap_count(), 0);
        assert_eq!(w.depth(), 1);
    }

    /// On a ring topology, threads keep to their ring: the merge root
    /// is never owned.
    #[test]
    fn merge_root_never_acquires_an_owner() {
        let topo = Topology::ring_mcs(8, 2, 4);
        let root = topo.root() as usize;
        let b = DynamicBarrier::from_topology(&topo);
        std::thread::scope(|s| {
            for tid in 0..8u32 {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for e in 0..40 {
                        if (e + tid) % 5 == 0 {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        w.wait();
                    }
                });
            }
        });
        assert_eq!(b.local[root].load(Ordering::Relaxed), INVALID);
    }

    /// After any number of episodes, the set of current homes (as seen
    /// by the waiters) must remain a permutation-compatible assignment:
    /// every counter's occupancy is intact, witnessed by the barrier
    /// still functioning and counters reading zero at rest.
    #[test]
    fn counters_rest_at_zero_after_swapping_episodes() {
        let b = DynamicBarrier::mcs(6, 2);
        std::thread::scope(|s| {
            for tid in 0..6u32 {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for e in 0..60 {
                        if (e + tid * 7) % 4 == 0 {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                        w.wait();
                    }
                });
            }
        });
        for c in &b.counts {
            assert_eq!(c.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    #[should_panic(expected = "owner counters")]
    fn combining_topology_rejected() {
        let _ = DynamicBarrier::from_topology(&Topology::combining(16, 4));
    }
}
