//! The dynamic placement barrier (paper Section 5.1, Figures 6–7).
//!
//! An MCS-style tree barrier in which a processor that arrives last in
//! a subtree **swaps positions** with the processor attached to that
//! subtree's root counter, so persistently slow processors migrate
//! toward the root and their critical path shrinks from `O(log p)`
//! toward `O(1)`.
//!
//! # Protocol
//!
//! Per the paper, each counter carries a `Local` field naming its
//! attached processor, and a displaced *victim* discovers the swap at
//! its next arrival, paying one extra communication. Two deliberate
//! engineering deviations from the paper's exact two-field scheme, both
//! forced by correctness concerns its prose leaves open:
//!
//! * **Victim notification is a per-processor `new_home` slot** rather
//!   than a per-counter `Destination` field. The paper's leaf counters
//!   hold up to `d+1` processors but have only one `Local`/`Destination`
//!   pair, so a swap whose victim lands on a shared leaf would falsely
//!   "displace" every other tenant of that leaf. A per-processor slot
//!   is unambiguous and costs the same single extra read.
//! * **Swaps cascade level by level** instead of being applied once at
//!   the top of the winning chain. The victor swaps *before* performing
//!   the increment that might lose, so every swap write is ordered
//!   before the barrier's release through the chain of `AcqRel`
//!   counter updates — otherwise a victim could re-enter the next
//!   episode before the swap became visible and two threads would
//!   update the same home counter. The net effect per episode is the
//!   same processor-to-top migration (the chain of owners rotates down
//!   one level), and the communication bound is unchanged: at most one
//!   swap per counter per episode, i.e. `1/(d+1)` extra communications
//!   per processor.
//!
//! # Fault model
//!
//! Same surface as the static tree: bounded waits via
//! [`DynamicWaiter::wait_timeout`], poisoning on mid-episode drops, and
//! eviction with proxy arrivals. A proxy walk never swaps — the evicted
//! thread is not present to notice a displacement — but it does consume
//! any displacement notice left for the thread, so the roster always
//! signals the thread's live (possibly migrated) home counter, and a
//! rejoining waiter resumes from that counter.
//!
//! # Self-healing
//!
//! A *detach* ([`DynamicBarrier::detach`] or [`SelfHealing::fail`])
//! removes a declared-dead participant from the live shape at the next
//! episode boundary: inside the releaser's quiescent window the tree is
//! recomputed from the base topology restricted to live members
//! (`Topology::prune_shape`), and **all placement state is reset to
//! that pruned shape** — counter owners, swappability, and every live
//! thread's home. Migrations learned before the fault are deliberately
//! discarded (the victim/victor assignment may reference the dead
//! thread's counters); the placement re-learns within a few episodes,
//! which is the transient-throughput-for-permanent-correctness trade
//! the paper's dynamic barrier needs under churn. Survivors learn their
//! reset home through the ordinary displacement-notice slot, so the
//! victim-side path in `try_arrive` needs no new code. A detached
//! thread rejoins through [`DynamicWaiter::try_rejoin`] /
//! [`DynamicWaiter::rejoin_within`] and is grafted back at (the pruned
//! position of) its original leaf.

use crate::error::BarrierError;
use crate::heal::{self, Change, Membership, RejoinStatus, SelfHealing};
use crate::pad::CachePadded;
use crate::roster::{Arrival, Roster};
use crate::spin::{wait_for_epoch_fallible, EpochWait};
use crate::sync::{AtomicU32, AtomicU64, Ordering};
use combar_topo::{CounterId, Topology};
use combar_trace as trace;
use std::time::{Duration, Instant};

const INVALID: u32 = u32::MAX;

/// A dynamic placement tree barrier.
///
/// # Examples
///
/// A systematically slow thread migrates to the root (depth 1):
///
/// ```
/// use combar_rt::DynamicBarrier;
/// use std::time::Duration;
///
/// let barrier = DynamicBarrier::mcs(4, 2);
/// std::thread::scope(|s| {
///     for tid in 0..4 {
///         let barrier = &barrier;
///         s.spawn(move || {
///             let mut w = barrier.waiter(tid);
///             for _ in 0..20 {
///                 if tid == 3 {
///                     std::thread::sleep(Duration::from_millis(1));
///                 }
///                 w.wait();
///             }
///             if tid == 3 {
///                 assert_eq!(w.depth(), 1); // owns the root now
///             }
///         });
///     }
/// });
/// assert!(barrier.swap_count() > 0);
/// ```
#[derive(Debug)]
pub struct DynamicBarrier {
    counts: Vec<CachePadded<AtomicU32>>,
    /// Owner of each single-occupant counter (`INVALID` for shared
    /// leaves and the merge root).
    local: Vec<CachePadded<AtomicU32>>,
    /// Per-thread displacement notice: the new home counter, or
    /// `INVALID`.
    new_home: Vec<CachePadded<AtomicU32>>,
    /// Live-shape arrays, indexed like the base topology; rewritten
    /// only inside a releaser's quiescent window.
    fan_in: Vec<CachePadded<AtomicU32>>,
    parent: Vec<CachePadded<AtomicU32>>,
    path_len: Vec<CachePadded<AtomicU32>>,
    /// Ring id per counter (`INVALID` for the merge root), used to keep
    /// swaps within rings on KSR-style topologies. A base property,
    /// untouched by reconfiguration.
    ring: Vec<u32>,
    /// Whether a counter may be a swap target (exactly one live
    /// occupant); 0/1, rewritten with the rest of the shape.
    swappable: Vec<CachePadded<AtomicU32>>,
    epoch: CachePadded<AtomicU32>,
    poison: CachePadded<AtomicU32>,
    roster: Roster,
    membership: Membership,
    /// The immutable original topology every reconfiguration prunes.
    base: Topology,
    swaps: AtomicU64,
    /// Current home of each thread, maintained at swap time so fresh
    /// waiters (created between phases) start from the live placement.
    cur_home: Vec<CachePadded<AtomicU32>>,
    degree: u32,
}

impl DynamicBarrier {
    /// Builds the barrier from an owner-tree topology (MCS or ring-MCS;
    /// combining trees have no internal owners, so no swap could ever
    /// fire — they are rejected to catch misuse).
    ///
    /// # Panics
    ///
    /// Panics if no counter of the topology is swappable.
    pub fn from_topology(topo: &Topology) -> Self {
        let swappable: Vec<bool> = topo.nodes().iter().map(|n| n.procs.len() == 1).collect();
        assert!(
            !matches!(topo.kind(), combar_topo::TopologyKind::Combining)
                || topo.num_counters() == 1,
            "dynamic placement needs owner counters (use an MCS-style topology)"
        );
        // Tiny owner trees (p ≤ d+1) collapse to one shared leaf with
        // no swappable counter; the barrier then degenerates to static
        // behaviour, which is correct (there is no depth to save).
        Self {
            counts: (0..topo.num_counters())
                .map(|_| CachePadded::new(AtomicU32::new(0)))
                .collect(),
            local: topo
                .nodes()
                .iter()
                .map(|n| {
                    let owner = if n.procs.len() == 1 {
                        n.procs[0]
                    } else {
                        INVALID
                    };
                    CachePadded::new(AtomicU32::new(owner))
                })
                .collect(),
            new_home: (0..topo.num_procs())
                .map(|_| CachePadded::new(AtomicU32::new(INVALID)))
                .collect(),
            fan_in: topo
                .nodes()
                .iter()
                .map(|n| CachePadded::new(AtomicU32::new(n.fan_in())))
                .collect(),
            parent: topo
                .nodes()
                .iter()
                .map(|n| CachePadded::new(AtomicU32::new(n.parent.unwrap_or(INVALID))))
                .collect(),
            path_len: topo
                .nodes()
                .iter()
                .map(|n| CachePadded::new(AtomicU32::new(n.path_len)))
                .collect(),
            ring: topo
                .nodes()
                .iter()
                .map(|n| n.ring.unwrap_or(INVALID))
                .collect(),
            swappable: swappable
                .iter()
                .map(|&s| CachePadded::new(AtomicU32::new(s as u32)))
                .collect(),
            epoch: CachePadded::new(AtomicU32::new(0)),
            poison: CachePadded::new(AtomicU32::new(0)),
            roster: Roster::new(topo.num_procs()),
            membership: Membership::new(topo.num_procs()),
            base: topo.clone(),
            swaps: AtomicU64::new(0),
            cur_home: topo
                .homes()
                .iter()
                .map(|&h| CachePadded::new(AtomicU32::new(h)))
                .collect(),
            degree: topo.degree(),
        }
    }

    /// An MCS owner tree of the given degree over `p` threads.
    ///
    /// Prefer building through [`crate::BarrierBuilder`] when a
    /// trait-object ([`crate::Barrier`]) surface, supervision, or a
    /// trace sink is wanted; the direct constructor stays for
    /// statically-typed embedding.
    pub fn mcs(p: u32, degree: u32) -> Self {
        Self::from_topology(&Topology::mcs(p, degree))
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.new_home.len() as u32
    }

    /// The construction degree.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Total swaps applied so far.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Creates the per-thread handle for thread `tid`.
    ///
    /// Waiters may be created at any quiescent point (no episode in
    /// flight): they inherit the barrier's current epoch and the
    /// thread's *current* (possibly migrated) home counter, so the
    /// barrier survives being reused across thread-team phases.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn waiter(&self, tid: u32) -> DynamicWaiter<'_> {
        assert!(
            (tid as usize) < self.new_home.len(),
            "thread id out of range"
        );
        DynamicWaiter {
            barrier: self,
            tid,
            epoch: self.epoch.load(Ordering::Acquire),
            fc: self.cur_home[tid as usize].load(Ordering::Acquire),
            pending: false,
            awaiting_attach: false,
        }
    }

    /// Whether a participant died mid-episode, wedging the barrier.
    pub fn is_poisoned(&self) -> bool {
        self.poison.load(Ordering::Acquire) != 0
    }

    /// Number of currently evicted participants.
    pub fn evicted_count(&self) -> u32 {
        self.roster.evicted_count()
    }

    /// Whether participant `tid` is currently evicted.
    pub fn is_evicted(&self, tid: u32) -> bool {
        self.roster.is_evicted(tid)
    }

    /// Participants that have not arrived for the in-flight episode.
    pub fn stragglers(&self) -> Vec<u32> {
        self.roster.stragglers(&self.epoch)
    }

    /// Evicts participant `tid` if it has not arrived for the episode
    /// in flight; its (current) home counter is thereafter walked by
    /// proxy at each release. Returns whether the eviction happened.
    pub fn evict(&self, tid: u32) -> bool {
        assert!(
            (tid as usize) < self.new_home.len(),
            "thread id out of range"
        );
        if self.roster.evict(tid, &self.epoch) {
            if trace::enabled() {
                trace::emit(self.trace_epoch(), tid, trace::Kind::Evict(tid));
            }
            if self.proxy_signal(tid) {
                self.maintain();
            }
            true
        } else {
            false
        }
    }

    /// Evicts every current straggler; returns the evicted ids.
    pub fn evict_stragglers(&self) -> Vec<u32> {
        self.stragglers()
            .into_iter()
            .filter(|&t| self.evict(t))
            .collect()
    }

    /// Number of participants the live shape currently counts.
    pub fn live_count(&self) -> u32 {
        self.membership.live_count()
    }

    /// Whether the live shape still counts `tid` (detaches flip this at
    /// an episode boundary, not at declaration time).
    pub fn is_live(&self, tid: u32) -> bool {
        self.membership.is_live(tid)
    }

    /// Number of shape reconfigurations applied so far.
    pub fn shape_epoch(&self) -> u32 {
        self.membership.shape_epoch()
    }

    /// The longest root path any *live* participant currently walks.
    pub fn critical_depth(&self) -> u32 {
        (0..self.threads())
            .filter(|&t| self.membership.is_live(t))
            .map(|t| {
                let home = self.cur_home[t as usize].load(Ordering::Acquire);
                self.path_len[home as usize].load(Ordering::Acquire)
            })
            .max()
            .unwrap_or(0)
    }

    /// The fault-free depth of the base topology.
    pub fn base_depth(&self) -> u32 {
        self.base.depth()
    }

    /// Declares `tid` dead: evicts it if needed (delivering the
    /// in-flight proxy) and schedules its removal from the live shape
    /// for the next episode boundary, which also resets the learned
    /// placement. Fails (returning `false`) when the thread has arrived
    /// for the in-flight episode, or when it is the last live
    /// participant. Idempotent.
    pub fn detach(&self, tid: u32) -> bool {
        assert!(
            (tid as usize) < self.new_home.len(),
            "thread id out of range"
        );
        if self.membership.is_live(tid) && self.membership.live_count() <= 1 {
            return false;
        }
        let _ = self.evict(tid);
        self.membership.request_detach(&self.roster, tid)
    }

    /// The signalling walk without swaps: increment from `start`
    /// upward; returns whether this walk released the episode.
    /// `subject`/`episode` tag the emitted trace events.
    fn signal_static(&self, start: CounterId, subject: u32, episode: u32) -> bool {
        let mut c = start as usize;
        loop {
            let fan = self.fan_in[c].load(Ordering::Acquire);
            let prev = self.counts[c].fetch_add(1, Ordering::AcqRel);
            debug_assert!(prev < fan, "counter over-updated");
            if prev + 1 < fan {
                trace::emit(episode, subject, trace::Kind::Lose(c as u32));
                return false;
            }
            trace::emit(episode, subject, trace::Kind::Win(c as u32));
            self.counts[c].store(0, Ordering::Relaxed);
            let par = self.parent[c].load(Ordering::Acquire);
            if par == INVALID {
                // Quiescent window: every counter reset, every surviving
                // waiter spinning on the epoch. Membership changes and
                // the placement reset they imply apply here.
                self.apply_pending();
                trace::emit(episode, subject, trace::Kind::Release);
                self.epoch.fetch_add(1, Ordering::Release);
                return true;
            }
            c = par as usize;
        }
    }

    /// Episode tag for barrier-side (proxy) emission: the in-flight
    /// epoch, read only while a trace sink is attached.
    fn trace_epoch(&self) -> u32 {
        if trace::enabled() {
            self.epoch.load(Ordering::Relaxed)
        } else {
            0
        }
    }

    /// Folds queued membership changes into the live shape, resetting
    /// all placement state to the pruned base topology. Called only
    /// from the releaser's quiescent window.
    fn apply_pending(&self) {
        if !self.membership.has_pending() {
            return;
        }
        let changes = self.membership.collect(&self.roster);
        if changes.is_empty() {
            return;
        }
        let mask = self.membership.live_mask();
        let shape = self.base.prune_shape(&mask);
        for c in 0..self.base.num_counters() {
            self.fan_in[c].store(shape.fan_in[c], Ordering::Relaxed);
            self.parent[c].store(shape.parent[c].unwrap_or(INVALID), Ordering::Relaxed);
            self.path_len[c].store(shape.path_len[c], Ordering::Relaxed);
            // Recomputed below from the reset homes.
            self.local[c].store(INVALID, Ordering::Relaxed);
            self.swappable[c].store(0, Ordering::Relaxed);
        }
        // Single live occupant per counter ⇒ it owns the counter and
        // the counter is a swap target again.
        let mut occupants: Vec<u32> = vec![0; self.base.num_counters()];
        for (t, live) in mask.iter().enumerate() {
            if *live {
                if let Some(h) = shape.home[t] {
                    occupants[h as usize] += 1;
                }
            }
        }
        for (t, live) in mask.iter().enumerate() {
            if !*live {
                continue;
            }
            let h = shape.home[t].expect("live thread must be homed");
            self.cur_home[t].store(h, Ordering::Relaxed);
            // The reset home rides the ordinary displacement-notice
            // slot, overwriting any stale pre-fault notice; survivors
            // consume it (redundant or not) on their next arrival.
            self.new_home[t].store(h, Ordering::Relaxed);
            if occupants[h as usize] == 1 {
                self.local[h as usize].store(t as u32, Ordering::Relaxed);
                self.swappable[h as usize].store(1, Ordering::Relaxed);
            }
        }
        // Grants last: the roster CAS publishes the stores above to the
        // polling rejoiner (survivors get them from the epoch bump).
        for change in changes {
            match change {
                Change::Attach(tid) => self.membership.grant(&self.roster, tid),
                Change::Detach(tid) => {
                    debug_assert!(!self.membership.is_live(tid));
                    // Void any stale displacement notice so a later
                    // attach starts from the recomputed home.
                    self.new_home[tid as usize].store(INVALID, Ordering::Relaxed);
                }
            }
        }
    }

    /// Arrival walk performed on behalf of evicted thread `tid`:
    /// consumes any displacement notice (keeping `cur_home` live), then
    /// signals statically from the thread's current home.
    ///
    /// Safe against concurrent swaps: a swap victimising `tid` requires
    /// `tid`'s home counter to fill, which requires this very proxy's
    /// increment — so the notice consumed here (if any) happened-before
    /// this call, and no new notice can appear until after our
    /// increment below.
    fn proxy_signal(&self, tid: u32) -> bool {
        let t = tid as usize;
        let moved = self.new_home[t].load(Ordering::Acquire);
        if moved != INVALID {
            self.new_home[t].store(INVALID, Ordering::Relaxed);
            self.cur_home[t].store(moved, Ordering::Release);
        }
        let home = self.cur_home[t].load(Ordering::Acquire);
        let ep = self.trace_epoch();
        if trace::enabled() {
            trace::emit(ep, tid, trace::Kind::ProxyArrival(home));
        }
        self.signal_static(home, tid, ep)
    }

    /// Post-release proxy sweep for evicted participants. Detached
    /// slots are stamped but not walked — the live shape no longer
    /// counts them.
    fn maintain(&self) {
        self.roster.maintain(&self.epoch, |tid| {
            self.membership.is_live(tid) && self.proxy_signal(tid)
        });
    }

    /// Whether `target` is a legal swap destination for a thread homed
    /// at `from`.
    fn swap_ok(&self, from: CounterId, target: CounterId) -> bool {
        target != from
            && self.swappable[target as usize].load(Ordering::Acquire) != 0
            && self.ring[target as usize] == self.ring[from as usize]
    }

    /// Applies one swap: `tid` (homed at `from`) takes `target`,
    /// displacing its owner down to `from`. All plain stores — callers
    /// guarantee exclusivity (only the unique winner of `target`
    /// reaches this) and ordering (the writes precede the caller's next
    /// `AcqRel` counter update or the release itself).
    fn apply_swap(&self, tid: u32, from: CounterId, target: CounterId) {
        let victim = self.local[target as usize].load(Ordering::Acquire);
        debug_assert_ne!(victim, INVALID, "swappable counters always have an owner");
        self.local[target as usize].store(tid, Ordering::Release);
        if self.swappable[from as usize].load(Ordering::Acquire) != 0 {
            self.local[from as usize].store(victim, Ordering::Release);
        }
        self.new_home[victim as usize].store(from, Ordering::Release);
        self.cur_home[tid as usize].store(target, Ordering::Release);
        self.cur_home[victim as usize].store(from, Ordering::Release);
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }
}

impl SelfHealing for DynamicBarrier {
    fn threads(&self) -> u32 {
        DynamicBarrier::threads(self)
    }
    fn stragglers(&self) -> Vec<u32> {
        DynamicBarrier::stragglers(self)
    }
    fn fail(&self, tid: u32) -> bool {
        self.detach(tid)
    }
    fn is_poisoned(&self) -> bool {
        DynamicBarrier::is_poisoned(self)
    }
}

/// Per-thread handle to a [`DynamicBarrier`].
///
/// Dropping a waiter between `arrive` and a completed depart poisons
/// the barrier: peers receive [`BarrierError::Poisoned`] instead of
/// spinning forever.
#[derive(Debug)]
pub struct DynamicWaiter<'a> {
    barrier: &'a DynamicBarrier,
    tid: u32,
    epoch: u32,
    fc: CounterId,
    pending: bool,
    /// An attach request is outstanding; waiting for a releaser grant.
    awaiting_attach: bool,
}

impl DynamicWaiter<'_> {
    /// Signals arrival, performing any pending relocation first and
    /// cascading swaps while winning counters on the way up.
    ///
    /// # Panics
    ///
    /// Panics if called twice without a depart, if the barrier is
    /// poisoned, or if this participant has been evicted.
    pub fn arrive(&mut self) {
        assert!(!self.pending, "arrive called twice without depart");
        if let Err(e) = self.try_arrive() {
            panic!("barrier arrive failed: {e}");
        }
    }

    /// Fallible arrival: errors with [`BarrierError::Poisoned`] or
    /// [`BarrierError::Evicted`] instead of panicking.
    pub fn try_arrive(&mut self) -> Result<(), BarrierError> {
        assert!(!self.pending, "arrive called twice without depart");
        let b = self.barrier;
        if b.is_poisoned() {
            return Err(BarrierError::Poisoned);
        }
        let target = self.epoch.wrapping_add(1);
        match b.roster.try_arrive(self.tid, target) {
            Arrival::Evicted => return Err(BarrierError::Evicted),
            Arrival::Claimed => {}
        }
        self.pending = true;
        let tid = self.tid as usize;
        trace::emit(self.epoch, self.tid, trace::Kind::Arrive);

        // Victim side (paper Figure 6d): notice a displacement before
        // touching any counter. One extra communication.
        let moved = b.new_home[tid].load(Ordering::Acquire);
        if moved != INVALID {
            b.new_home[tid].store(INVALID, Ordering::Relaxed);
            self.fc = moved;
        }

        let mut c = self.fc as usize;
        loop {
            let fan = b.fan_in[c].load(Ordering::Acquire);
            let prev = b.counts[c].fetch_add(1, Ordering::AcqRel);
            debug_assert!(prev < fan, "counter over-updated");
            if prev + 1 < fan {
                trace::emit(self.epoch, self.tid, trace::Kind::Lose(c as u32));
                return Ok(()); // not last: propagation is someone else's job
            }
            trace::emit(self.epoch, self.tid, trace::Kind::Win(c as u32));
            // Last updater of c: reset, swap upward if this is a new
            // highest win, then continue.
            b.counts[c].store(0, Ordering::Relaxed);
            if b.swap_ok(self.fc, c as CounterId) {
                b.apply_swap(self.tid, self.fc, c as CounterId);
                self.fc = c as CounterId;
                trace::emit(self.epoch, self.tid, trace::Kind::Swap(c as u32));
            }
            let par = b.parent[c].load(Ordering::Acquire);
            if par == INVALID {
                b.apply_pending();
                trace::emit(self.epoch, self.tid, trace::Kind::Release);
                b.epoch.fetch_add(1, Ordering::Release);
                b.maintain();
                return Ok(());
            }
            c = par as usize;
        }
    }

    /// Blocks until the barrier releases.
    ///
    /// # Panics
    ///
    /// Panics if the barrier becomes poisoned while waiting.
    pub fn depart(&mut self) {
        assert!(self.pending, "depart called without arrive");
        if let Err(e) = self.depart_deadline(None) {
            panic!("barrier depart failed: {e}");
        }
    }

    fn depart_deadline(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        assert!(self.pending, "depart called without arrive");
        let b = self.barrier;
        let target = self.epoch.wrapping_add(1);
        match wait_for_epoch_fallible(&b.epoch, target, &b.poison, deadline) {
            EpochWait::Released => {
                self.epoch = target;
                self.pending = false;
                Ok(())
            }
            EpochWait::TimedOut => Err(BarrierError::Timeout),
            EpochWait::Poisoned => Err(BarrierError::Poisoned),
        }
    }

    fn wait_deadline(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        if !self.pending {
            self.try_arrive()?;
        }
        self.depart_deadline(deadline)
    }

    /// A full barrier: `arrive` then `depart`.
    ///
    /// # Panics
    ///
    /// Panics if the barrier is poisoned or this participant evicted.
    pub fn wait(&mut self) {
        if let Err(e) = self.wait_deadline(None) {
            panic!("barrier wait failed: {e}");
        }
    }

    /// A full barrier bounded by `timeout`.
    ///
    /// On [`BarrierError::Timeout`] the arrival stays registered: call
    /// a wait method again to resume the same episode rather than
    /// re-arriving. A timed-out waiter must not simply be dropped —
    /// that poisons the barrier; retry, or have a peer evict it.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
        self.wait_deadline(Some(Instant::now() + timeout))
    }

    /// Unbounded fallible full barrier: like [`Self::wait`] but
    /// returning poisoning/eviction as an error instead of panicking.
    /// Reads no clock, so schedules stay deterministic under the
    /// `combar-check` model checker.
    pub fn try_wait(&mut self) -> Result<(), BarrierError> {
        self.wait_deadline(None)
    }

    /// Unbounded fallible depart: like [`Self::depart`] but returning
    /// poisoning as an error instead of panicking. Reads no clock.
    pub fn try_depart(&mut self) -> Result<(), BarrierError> {
        self.depart_deadline(None)
    }

    /// One non-blocking rejoin step. Reads no clock, so rejoin loops
    /// stay deterministic under the `combar-check` model checker.
    ///
    /// * Merely evicted (shape untouched) → re-admits immediately via
    ///   the fast roster path, returns [`RejoinStatus::Rejoined`].
    /// * Detached → files an attach request the next episode's releaser
    ///   grants inside its quiescent window (re-grafting this thread at
    ///   the pruned position of its original leaf), then returns
    ///   [`RejoinStatus::Pending`] until the grant lands.
    ///
    /// After `Rejoined` the waiter is mid-episode (its latest arrival
    /// was delivered by proxy from its live home counter): complete it
    /// with a wait call, which departs without re-arriving.
    pub fn try_rejoin(&mut self) -> Result<RejoinStatus, BarrierError> {
        let b = self.barrier;
        if b.is_poisoned() {
            return Err(BarrierError::Poisoned);
        }
        let status = heal::try_rejoin_step(
            &b.roster,
            &b.membership,
            self.tid,
            &mut self.awaiting_attach,
            &mut self.epoch,
            &mut self.pending,
        );
        if status == RejoinStatus::Rejoined {
            // Proxies (fast path) or the boundary reconfiguration
            // (attach path) kept cur_home live; resume from there.
            self.fc = b.cur_home[self.tid as usize].load(Ordering::Acquire);
            trace::emit(self.epoch, self.tid, trace::Kind::Rejoin);
        }
        Ok(status)
    }

    /// Re-admission after eviction: drives [`Self::try_rejoin`] until it
    /// resolves, spin-then-yield between polls. On success the waiter is
    /// mid-episode (its latest arrival was delivered by proxy): complete
    /// it with a wait call, which departs without re-arriving. Returns
    /// `Ok(false)` if this participant was not evicted.
    ///
    /// An attach can only be granted by an episode boundary, so for a
    /// detached participant this blocks until the live participants
    /// complete an episode; if they may be idle, prefer
    /// [`Self::rejoin_within`].
    pub fn rejoin(&mut self) -> Result<bool, BarrierError> {
        let this = self;
        heal::drive_rejoin(move || this.try_rejoin())
    }

    /// [`Self::rejoin`] bounded by `timeout`, polling with jittered
    /// exponential backoff ([`crate::JitterBackoff`]) so simultaneous
    /// rejoiners desynchronize. Returns [`BarrierError::Timeout`] if no
    /// episode boundary granted the attach in time (the request stays
    /// filed; a later call resumes waiting for it).
    pub fn rejoin_within(&mut self, timeout: Duration) -> Result<bool, BarrierError> {
        let tid = self.tid;
        let this = self;
        heal::drive_rejoin_within(tid, timeout, move || this.try_rejoin())
    }

    /// Path length from this thread's current home to the root — the
    /// paper's "tree depth seen" metric. Reflects relocations the
    /// thread has already noticed.
    pub fn depth(&self) -> u32 {
        self.barrier.path_len[self.fc as usize].load(Ordering::Acquire)
    }

    /// This thread's id.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

impl Drop for DynamicWaiter<'_> {
    fn drop(&mut self) {
        if self.pending {
            self.barrier.poison.store(1, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    fn lockstep_check(barrier: &DynamicBarrier, episodes: u32, stagger: bool) {
        let p = barrier.threads() as usize;
        let phases: Vec<AtomicU32> = (0..p).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..p {
                let phases = &phases;
                s.spawn(move || {
                    let mut w = barrier.waiter(tid as u32);
                    for e in 0..episodes {
                        if stagger && (e as usize + tid) % 3 == 0 {
                            std::thread::yield_now();
                        }
                        phases[tid].store(e + 1, Ordering::Release);
                        w.wait();
                        for q in phases {
                            let ph = q.load(Ordering::Acquire);
                            assert!(ph == e + 1 || ph == e + 2, "episode {e}: phase {ph}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn lockstep_under_contention() {
        for (p, d) in [(4u32, 2u32), (8, 2), (7, 4)] {
            let b = DynamicBarrier::mcs(p, d);
            lockstep_check(&b, 150, true);
        }
    }

    #[test]
    fn lockstep_on_ring_topology() {
        let topo = Topology::ring_mcs(8, 2, 4);
        let b = DynamicBarrier::from_topology(&topo);
        lockstep_check(&b, 150, true);
    }

    /// The paper's headline behaviour: a systematically slow thread
    /// migrates to the root and sees depth 1.
    #[test]
    fn slow_thread_migrates_to_root() {
        const P: u32 = 8;
        let b = DynamicBarrier::mcs(P, 2);
        let slow_tid = 7u32; // starts on a deep leaf
        let final_depths: Vec<AtomicU32> = (0..P).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..P {
                let b = &b;
                let final_depths = &final_depths;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for _ in 0..30 {
                        if tid == slow_tid {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        w.wait();
                    }
                    final_depths[tid as usize].store(w.depth(), Ordering::Relaxed);
                });
            }
        });
        let slow_depth = final_depths[slow_tid as usize].load(Ordering::Relaxed);
        assert_eq!(slow_depth, 1, "slow thread should own the root");
        assert!(b.swap_count() > 0);
    }

    /// Swaps never fire when the barrier degenerates (single thread).
    #[test]
    fn single_thread_never_blocks_or_swaps() {
        let b = DynamicBarrier::mcs(1, 4);
        let mut w = b.waiter(0);
        for _ in 0..50 {
            w.wait();
        }
        assert_eq!(b.swap_count(), 0);
        assert_eq!(w.depth(), 1);
    }

    /// On a ring topology, threads keep to their ring: the merge root
    /// is never owned.
    #[test]
    fn merge_root_never_acquires_an_owner() {
        let topo = Topology::ring_mcs(8, 2, 4);
        let root = topo.root() as usize;
        let b = DynamicBarrier::from_topology(&topo);
        std::thread::scope(|s| {
            for tid in 0..8u32 {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for e in 0..40 {
                        if (e + tid) % 5 == 0 {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        w.wait();
                    }
                });
            }
        });
        assert_eq!(b.local[root].load(Ordering::Relaxed), INVALID);
    }

    /// After any number of episodes, the set of current homes (as seen
    /// by the waiters) must remain a permutation-compatible assignment:
    /// every counter's occupancy is intact, witnessed by the barrier
    /// still functioning and counters reading zero at rest.
    #[test]
    fn counters_rest_at_zero_after_swapping_episodes() {
        let b = DynamicBarrier::mcs(6, 2);
        std::thread::scope(|s| {
            for tid in 0..6u32 {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for e in 0..60 {
                        if (e + tid * 7) % 4 == 0 {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                        w.wait();
                    }
                });
            }
        });
        for c in &b.counts {
            assert_eq!(c.load(Ordering::Relaxed), 0);
        }
    }

    /// Eviction must track migration: the dead thread is first swapped
    /// toward the root (it is slow), then evicted; proxies must walk
    /// its *migrated* home, and rejoin must resume from it.
    #[test]
    fn eviction_follows_migrated_home_and_rejoin_resumes() {
        let b = DynamicBarrier::mcs(6, 2);
        let dead = 5u32;
        std::thread::scope(|s| {
            for tid in 0..6u32 {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for _ in 0..20 {
                        if tid == dead {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        w.wait();
                    }
                    if tid == dead {
                        return; // goes silent (waiter dropped clean)
                    }
                    // Survivors time out, evict the straggler, and keep
                    // crossing for 120 further episodes.
                    let mut evicted = false;
                    for _ in 0..120 {
                        loop {
                            match w.wait_timeout(Duration::from_millis(20)) {
                                Ok(()) => break,
                                Err(BarrierError::Timeout) => {
                                    if !evicted {
                                        b.evict(dead);
                                        evicted = true;
                                    }
                                }
                                Err(e) => panic!("unexpected: {e}"),
                            }
                        }
                    }
                });
            }
        });
        assert!(b.is_evicted(dead));
        assert!(!b.is_poisoned());
        // Rejoin resumes mid-episode from the live home; a full
        // all-hands episode then completes.
        let mut w = b.waiter(dead);
        assert!(w.rejoin().unwrap());
        let mut ws: Vec<_> = (0..5).map(|t| b.waiter(t)).collect();
        std::thread::scope(|s| {
            s.spawn(move || {
                for _ in 0..10 {
                    w.wait_timeout(Duration::from_secs(2)).unwrap();
                }
            });
            for w in &mut ws {
                s.spawn(move || {
                    for _ in 0..10 {
                        w.wait_timeout(Duration::from_secs(2)).unwrap();
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "owner counters")]
    fn combining_topology_rejected() {
        let _ = DynamicBarrier::from_topology(&Topology::combining(16, 4));
    }

    /// Detach reconfigures the shape (resetting learned placement) and
    /// rejoin restores the full base depth.
    #[test]
    fn detach_resets_placement_and_rejoin_restores() {
        let b = DynamicBarrier::mcs(8, 2);
        let base_depth = b.base_depth();
        let mut ws: Vec<_> = (0..8).map(|t| b.waiter(t)).collect();
        let (w7, live) = ws.split_last_mut().unwrap();
        // Episode 1: thread 7 stalls; declare it dead.
        for w in live.iter_mut() {
            w.try_arrive().unwrap();
        }
        assert!(b.detach(7));
        for w in live.iter_mut() {
            w.try_depart().unwrap();
        }
        // Episode 2's releaser folds the detach in (placement reset).
        for w in live.iter_mut() {
            w.try_arrive().unwrap();
        }
        for w in live.iter_mut() {
            w.try_depart().unwrap();
        }
        assert_eq!(b.live_count(), 7);
        assert_eq!(b.shape_epoch(), 1);
        assert!(b.critical_depth() <= base_depth);
        // Episode 3 runs without any proxy; survivors consume their
        // placement-reset notices here.
        for w in live.iter_mut() {
            w.try_arrive().unwrap();
        }
        for w in live.iter_mut() {
            w.try_depart().unwrap();
        }
        // Rejoin parks until a boundary grants it.
        assert_eq!(w7.try_rejoin().unwrap(), RejoinStatus::Pending);
        for w in live.iter_mut() {
            w.try_arrive().unwrap();
        }
        for w in live.iter_mut() {
            w.try_depart().unwrap();
        }
        assert_eq!(w7.try_rejoin().unwrap(), RejoinStatus::Rejoined);
        assert_eq!(b.live_count(), 8);
        assert_eq!(b.shape_epoch(), 2);
        w7.try_depart().unwrap(); // resumed mid-episode, departs at once
        assert_eq!(
            b.critical_depth(),
            base_depth,
            "full rejoin restores the shape"
        );
        // A further all-hands episode crosses cleanly.
        for w in ws.iter_mut() {
            w.try_arrive().unwrap();
        }
        for w in ws.iter_mut() {
            w.try_depart().unwrap();
        }
        // Dynamic behaviour survives the churn: a slow thread still
        // migrates to the root afterwards.
        std::thread::scope(|s| {
            for tid in 0..8u32 {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for _ in 0..25 {
                        if tid == 0 {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        w.wait();
                    }
                    if tid == 0 {
                        assert_eq!(w.depth(), 1, "placement re-learns after churn");
                    }
                });
            }
        });
    }
}
