//! An adaptive-degree barrier.
//!
//! The paper closes Section 8 noting that its analytic model "indicates
//! the feasibility of barriers that would adapt their degree at run
//! time to minimize their synchronization delay". This module builds
//! that barrier: it measures the arrival-time spread σ̂ over a window of
//! episodes and switches between prebuilt combining trees of candidate
//! degrees according to a pluggable policy (the `combar` core crate
//! supplies the paper's analytic model as that policy).
//!
//! # Agreement without a leader
//!
//! All threads must use the *same* tree in every episode or the barrier
//! deadlocks. Instead of electing a reconfiguring leader, every thread
//! recomputes the decision independently from identical inputs:
//! arrival timestamps are written to per-thread slots, double-buffered
//! by window parity, so during window `w` every thread reads the
//! *complete, frozen* slots of window `w−1` (the final barrier of
//! window `w−1` orders all writes before any window-`w` read) and runs
//! the same deterministic float computation — hence every thread picks
//! the same tree.
//!
//! # Fault model
//!
//! Bounded waits ([`AdaptiveWaiter::wait_timeout`]), poisoning,
//! eviction, and detach are supported; both are applied to **every**
//! candidate tree, so proxies flow no matter which tree later windows
//! select. Each tree folds a detach into its shape at its *own* next
//! episode boundary — an idle candidate keeps the victim parked (and
//! proxy-covered) until a later window selects it, at which point its
//! first release applies the pending reconfiguration. Re-admission is
//! *not* supported: a rejoiner would have to reconcile the
//! pre-delivered proxy counts and per-tree shape epochs sitting in the
//! inactive trees, which cannot be done race-free without a
//! stop-the-world reconfiguration across all candidates. Rebuild the
//! barrier to re-admit a participant.

use crate::error::BarrierError;
use crate::heal::SelfHealing;
use crate::pad::CachePadded;
use crate::tree::{TreeBarrier, TreeWaiter};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Chooses a tree degree from the measured arrival spread.
///
/// Arguments: σ̂ in microseconds, thread count. The returned degree is
/// mapped to the nearest candidate.
pub type DegreePolicy = Box<dyn Fn(f64, u32) -> u32 + Send + Sync>;

/// An adaptive-degree combining-tree barrier.
pub struct AdaptiveBarrier {
    trees: Vec<TreeBarrier>,
    degrees: Vec<u32>,
    /// `slots[parity][tid]`: arrival timestamp (ns bits) for the window
    /// with that parity.
    slots: [Vec<CachePadded<AtomicU64>>; 2],
    policy: DegreePolicy,
    window: u32,
    start: Instant,
    p: u32,
    initial_idx: usize,
    /// Tree index in use this window (every waiter stores the same
    /// value; read by the eviction API to find stragglers).
    current: AtomicUsize,
}

impl std::fmt::Debug for AdaptiveBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveBarrier")
            .field("degrees", &self.degrees)
            .field("window", &self.window)
            .field("p", &self.p)
            .finish_non_exhaustive()
    }
}

impl AdaptiveBarrier {
    /// Creates an adaptive barrier for `p` threads over the given
    /// candidate degrees, re-deciding every `window` episodes.
    ///
    /// Prefer building through [`crate::BarrierBuilder`] when a
    /// trait-object ([`crate::Barrier`]) surface, supervision, or a
    /// trace sink is wanted; the direct constructor stays for
    /// statically-typed embedding.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`, `degrees` is empty, or `window == 0`.
    pub fn new(p: u32, degrees: &[u32], window: u32, policy: DegreePolicy) -> Self {
        assert!(p > 0, "barrier needs at least one thread");
        assert!(!degrees.is_empty(), "need at least one candidate degree");
        assert!(window > 0, "window must be positive");
        let mut degrees = degrees.to_vec();
        degrees.sort_unstable();
        degrees.dedup();
        let trees = degrees
            .iter()
            .map(|&d| TreeBarrier::combining(p, d))
            .collect();
        let mk = || {
            (0..p)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect()
        };
        // start near degree 4, the classical default
        let initial_idx = nearest_index(&degrees, 4);
        Self {
            trees,
            degrees,
            slots: [mk(), mk()],
            policy,
            window,
            start: Instant::now(),
            p,
            initial_idx,
            current: AtomicUsize::new(initial_idx),
        }
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.p
    }

    /// The candidate degrees (sorted, deduplicated).
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Creates the per-thread handle for thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn waiter(&self, tid: u32) -> AdaptiveWaiter<'_> {
        assert!(tid < self.p, "thread id out of range");
        AdaptiveWaiter {
            barrier: self,
            waiters: self.trees.iter().map(|t| t.waiter(tid)).collect(),
            tid,
            episode: 0,
            idx: self.initial_idx,
            mid: false,
        }
    }

    /// Whether a participant died mid-episode in any candidate tree.
    pub fn is_poisoned(&self) -> bool {
        self.trees.iter().any(|t| t.is_poisoned())
    }

    /// Number of currently evicted participants.
    pub fn evicted_count(&self) -> u32 {
        self.trees[self.current.load(Ordering::Acquire)].evicted_count()
    }

    /// Whether participant `tid` is currently evicted.
    pub fn is_evicted(&self, tid: u32) -> bool {
        self.trees[self.current.load(Ordering::Acquire)].is_evicted(tid)
    }

    /// Participants that have not arrived for the in-flight episode of
    /// the tree currently in use.
    pub fn stragglers(&self) -> Vec<u32> {
        self.trees[self.current.load(Ordering::Acquire)].stragglers()
    }

    /// Evicts participant `tid` from **every** candidate tree (so
    /// proxies flow no matter which tree later windows select).
    /// Refused — returning `false` — if `tid` already arrived for the
    /// in-flight episode of the current tree.
    pub fn evict(&self, tid: u32) -> bool {
        let cur = self.current.load(Ordering::Acquire);
        if !self.trees[cur].evict(tid) {
            return false;
        }
        for (i, t) in self.trees.iter().enumerate() {
            if i != cur {
                // Idle trees hold no in-flight arrival from `tid`, so
                // these evictions cannot be refused.
                t.evict(tid);
            }
        }
        true
    }

    /// Evicts every current straggler; returns the evicted ids.
    pub fn evict_stragglers(&self) -> Vec<u32> {
        self.stragglers()
            .into_iter()
            .filter(|&t| self.evict(t))
            .collect()
    }

    /// Declares `tid` dead in **every** candidate tree: evicts it and
    /// schedules its removal from each tree's live shape at that tree's
    /// own next episode boundary (idle candidates apply it when a later
    /// window selects them; until then proxies keep covering the slot).
    /// Refused when the thread has arrived for the in-flight episode of
    /// the current tree, or when it is the last live participant.
    /// Idempotent.
    pub fn detach(&self, tid: u32) -> bool {
        assert!(tid < self.p, "thread id out of range");
        let cur = self.current.load(Ordering::Acquire);
        if self.trees[cur].is_live(tid) && self.trees[cur].live_count() <= 1 {
            return false;
        }
        if !self.trees[cur].detach(tid) {
            return false;
        }
        for (i, t) in self.trees.iter().enumerate() {
            if i != cur {
                // Idle trees hold no in-flight arrival from `tid`, so
                // these detaches cannot be refused.
                t.detach(tid);
            }
        }
        true
    }

    /// Number of participants the current tree's live shape counts.
    /// (Idle candidates may lag until their next boundary.)
    pub fn live_count(&self) -> u32 {
        self.trees[self.current.load(Ordering::Acquire)].live_count()
    }

    /// Whether the current tree's live shape still counts `tid`.
    pub fn is_live(&self, tid: u32) -> bool {
        self.trees[self.current.load(Ordering::Acquire)].is_live(tid)
    }

    /// Shape reconfigurations applied by the current tree.
    pub fn shape_epoch(&self) -> u32 {
        self.trees[self.current.load(Ordering::Acquire)].shape_epoch()
    }

    /// The longest root path any live participant walks in the current
    /// tree.
    pub fn critical_depth(&self) -> u32 {
        self.trees[self.current.load(Ordering::Acquire)].critical_depth()
    }

    /// Checks the current tree's live shape against a fresh prune of
    /// its base topology; call only at a quiescent point. Only the
    /// current tree is checked: an idle candidate with an evicted
    /// participant legitimately holds that participant's in-flight
    /// proxy arrival (a partial episode) until a later window selects
    /// it, so it is not quiescent even when the barrier is.
    pub fn validate_shape(&self) -> Result<(), String> {
        let cur = self.current.load(Ordering::Acquire);
        self.trees[cur]
            .validate_shape()
            .map_err(|e| format!("degree-{} tree: {e}", self.degrees[cur]))
    }

    /// Deterministic decision from one window's frozen slots: compute
    /// σ̂ of the recorded arrival times and ask the policy.
    fn decide(&self, parity: usize) -> usize {
        let n = self.p as f64;
        let mut mean = 0.0f64;
        for s in &self.slots[parity] {
            mean += s.load(Ordering::Acquire) as f64;
        }
        mean /= n;
        let mut ss = 0.0f64;
        for s in &self.slots[parity] {
            let d = s.load(Ordering::Acquire) as f64 - mean;
            ss += d * d;
        }
        let sigma_us = if self.p > 1 {
            (ss / (n - 1.0)).sqrt() / 1e3
        } else {
            0.0
        };
        let wanted = (self.policy)(sigma_us, self.p);
        nearest_index(&self.degrees, wanted)
    }
}

impl SelfHealing for AdaptiveBarrier {
    fn threads(&self) -> u32 {
        AdaptiveBarrier::threads(self)
    }
    fn stragglers(&self) -> Vec<u32> {
        AdaptiveBarrier::stragglers(self)
    }
    fn fail(&self, tid: u32) -> bool {
        self.detach(tid)
    }
    fn is_poisoned(&self) -> bool {
        AdaptiveBarrier::is_poisoned(self)
    }
}

/// Index of the candidate nearest to `wanted` (ties go to the wider
/// tree, which degrades more gracefully under imbalance).
fn nearest_index(degrees: &[u32], wanted: u32) -> usize {
    let mut best = 0usize;
    let mut best_dist = u32::MAX;
    for (i, &d) in degrees.iter().enumerate() {
        let dist = d.abs_diff(wanted);
        if dist < best_dist || (dist == best_dist && d > degrees[best]) {
            best = i;
            best_dist = dist;
        }
    }
    best
}

/// Per-thread handle to an [`AdaptiveBarrier`].
///
/// Dropping a waiter mid-episode poisons the barrier (via the tree it
/// was crossing).
#[derive(Debug)]
pub struct AdaptiveWaiter<'a> {
    barrier: &'a AdaptiveBarrier,
    waiters: Vec<TreeWaiter<'a>>,
    tid: u32,
    episode: u32,
    idx: usize,
    /// Whether an episode is in flight (preamble done, tree wait not
    /// yet complete).
    mid: bool,
}

impl AdaptiveWaiter<'_> {
    /// Measurement/reconfiguration preamble, run once per episode.
    fn preamble(&mut self) {
        let b = self.barrier;
        let win = self.episode / b.window;
        if self.episode % b.window == 0 && win > 0 {
            // Decide from the previous window's frozen slots; every
            // thread computes the same index.
            self.idx = b.decide(((win - 1) % 2) as usize);
        }
        b.current.store(self.idx, Ordering::Release);
        let now_ns = b.start.elapsed().as_nanos() as u64;
        b.slots[(win % 2) as usize][self.tid as usize].store(now_ns, Ordering::Release);
        self.mid = true;
    }

    /// One barrier episode, including measurement and (at window
    /// boundaries) reconfiguration.
    ///
    /// # Panics
    ///
    /// Panics if the barrier is poisoned or this participant evicted.
    pub fn wait(&mut self) {
        if !self.mid {
            self.preamble();
        }
        self.waiters[self.idx].wait();
        self.mid = false;
        self.episode += 1;
    }

    /// One barrier episode bounded by `timeout`.
    ///
    /// On [`BarrierError::Timeout`] the episode stays in flight: call a
    /// wait method again to resume it. A timed-out waiter must not
    /// simply be dropped — that poisons the barrier; retry, or have a
    /// peer evict it.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
        if !self.mid {
            self.preamble();
        }
        self.waiters[self.idx].wait_timeout(timeout)?;
        self.mid = false;
        self.episode += 1;
        Ok(())
    }

    /// Unbounded fallible full barrier: like [`Self::wait`] but
    /// returning poisoning/eviction as an error instead of panicking.
    pub fn try_wait(&mut self) -> Result<(), BarrierError> {
        if !self.mid {
            self.preamble();
        }
        self.waiters[self.idx].try_wait()?;
        self.mid = false;
        self.episode += 1;
        Ok(())
    }

    /// The degree of the tree this thread is currently using.
    pub fn current_degree(&self) -> u32 {
        self.barrier.degrees[self.idx]
    }

    /// This thread's id.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    #[test]
    fn nearest_index_prefers_wider_on_ties() {
        assert_eq!(nearest_index(&[2, 4, 8], 4), 1);
        assert_eq!(nearest_index(&[2, 4, 8], 5), 1);
        assert_eq!(nearest_index(&[2, 4, 8], 6), 2); // tie 4 vs 8 → 8
        assert_eq!(nearest_index(&[2, 4, 8], 100), 2);
        assert_eq!(nearest_index(&[2, 4, 8], 1), 0);
    }

    #[test]
    fn lockstep_across_reconfigurations() {
        const P: usize = 4;
        let policy: DegreePolicy = Box::new(|sigma_us, _| if sigma_us > 100.0 { 8 } else { 2 });
        let barrier = AdaptiveBarrier::new(P as u32, &[2, 4, 8], 3, policy);
        let phases: Vec<AtomicU32> = (0..P).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..P {
                let barrier = &barrier;
                let phases = &phases;
                s.spawn(move || {
                    let mut w = barrier.waiter(tid as u32);
                    for e in 0..60u32 {
                        if (e as usize + tid) % 4 == 0 {
                            std::thread::sleep(Duration::from_micros(300));
                        }
                        phases[tid].store(e + 1, Ordering::Release);
                        w.wait();
                        for q in phases {
                            let ph = q.load(Ordering::Acquire);
                            assert!(ph == e + 1 || ph == e + 2, "episode {e}: phase {ph}");
                        }
                    }
                });
            }
        });
    }

    /// With a large injected arrival spread, the policy must widen the
    /// tree.
    #[test]
    fn widens_under_injected_imbalance() {
        const P: usize = 4;
        let policy: DegreePolicy = Box::new(|sigma_us, p| if sigma_us > 500.0 { p } else { 4 });
        let barrier = AdaptiveBarrier::new(P as u32, &[2, 4, P as u32], 4, policy);
        let final_degree = AtomicU32::new(0);
        std::thread::scope(|s| {
            for tid in 0..P {
                let barrier = &barrier;
                let final_degree = &final_degree;
                s.spawn(move || {
                    let mut w = barrier.waiter(tid as u32);
                    for _ in 0..16 {
                        if tid == 0 {
                            std::thread::sleep(Duration::from_millis(3));
                        }
                        w.wait();
                    }
                    if tid == 0 {
                        final_degree.store(w.current_degree(), Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(final_degree.load(Ordering::Relaxed), P as u32);
    }

    #[test]
    fn single_thread_never_blocks() {
        let policy: DegreePolicy = Box::new(|_, _| 4);
        let b = AdaptiveBarrier::new(1, &[2, 4], 2, policy);
        let mut w = b.waiter(0);
        for _ in 0..10 {
            w.wait();
        }
        assert_eq!(w.current_degree(), 4);
    }

    /// Survivors keep crossing — including across a window boundary
    /// that switches trees — after a straggler is evicted.
    #[test]
    fn eviction_survives_tree_switches() {
        const P: u32 = 4;
        // Starts on the degree-8 tree (nearest to the default 4, ties
        // widen); the policy then steers every later window to degree 2,
        // so the evicted participant's proxies must flow in both trees.
        let policy: DegreePolicy = Box::new(|_, _| 2);
        let b = AdaptiveBarrier::new(P, &[2, 8], 5, policy);
        let dead = 3u32;
        std::thread::scope(|s| {
            for tid in 0..P {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    if tid == dead {
                        return; // never shows up
                    }
                    let mut evicted = false;
                    for _ in 0..40 {
                        loop {
                            match w.wait_timeout(Duration::from_millis(20)) {
                                Ok(()) => break,
                                Err(BarrierError::Timeout) => {
                                    if !evicted {
                                        b.evict(dead);
                                        evicted = true;
                                    }
                                }
                                Err(e) => panic!("unexpected: {e}"),
                            }
                        }
                    }
                });
            }
        });
        assert!(b.is_evicted(dead));
        assert!(!b.is_poisoned());
    }

    /// A detach is forwarded to every candidate tree and each folds it
    /// in at its own boundary, so survivors keep crossing — and the
    /// shape actually shrinks — across a window switch.
    #[test]
    fn detach_applies_across_tree_switches() {
        const P: u32 = 4;
        // Starts on the degree-8 tree; the policy steers every later
        // window to degree 2, so both trees must fold the detach in.
        let policy: DegreePolicy = Box::new(|_, _| 2);
        let b = AdaptiveBarrier::new(P, &[2, 8], 5, policy);
        let dead = 3u32;
        std::thread::scope(|s| {
            for tid in 0..P {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    if tid == dead {
                        return; // never shows up
                    }
                    let mut declared = false;
                    for _ in 0..40 {
                        loop {
                            match w.wait_timeout(Duration::from_millis(20)) {
                                Ok(()) => break,
                                Err(BarrierError::Timeout) => {
                                    if !declared {
                                        b.detach(dead);
                                        declared = true;
                                    }
                                }
                                Err(e) => panic!("unexpected: {e}"),
                            }
                        }
                    }
                });
            }
        });
        assert!(b.is_evicted(dead));
        assert!(!b.is_live(dead));
        assert_eq!(b.live_count(), P - 1);
        assert!(!b.is_poisoned());
        b.validate_shape().unwrap();
    }

    #[test]
    fn detach_refuses_last_live_participant() {
        let policy: DegreePolicy = Box::new(|_, _| 2);
        let b = AdaptiveBarrier::new(2, &[2], 4, policy);
        assert!(b.detach(1));
        let mut w0 = b.waiter(0);
        w0.wait_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(b.live_count(), 1);
        assert!(!b.detach(0), "cannot detach the last live participant");
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_degrees_rejected() {
        let policy: DegreePolicy = Box::new(|_, _| 4);
        let _ = AdaptiveBarrier::new(4, &[], 2, policy);
    }
}
