//! The combining-tree barrier (static placement).
//!
//! A tree of padded atomic counters built from any `combar-topo`
//! [`Topology`]: classic combining trees (threads at the leaves),
//! MCS-style owner trees, or ring-constrained KSR trees. A thread
//! updates its home counter; whoever brings a counter to its fan-in
//! propagates to the parent; the root's last updater bumps the shared
//! epoch flag, releasing everyone (the paper's "last processor …
//! releases all the processors by updating a shared variable").
//!
//! Counter resets happen *before* the release, so the structure is
//! immediately reusable: no thread can start the next episode until
//! after the release, which orders every reset before every
//! next-episode increment.

use crate::pad::CachePadded;
use crate::spin::wait_for_epoch;
use combar_topo::{CounterId, Topology};
use std::sync::atomic::{AtomicU32, Ordering};

/// A static-placement tree barrier over an arbitrary topology.
///
/// # Examples
///
/// ```
/// use combar_rt::TreeBarrier;
///
/// let barrier = TreeBarrier::combining(4, 2);
/// std::thread::scope(|s| {
///     for tid in 0..4 {
///         let barrier = &barrier;
///         s.spawn(move || {
///             let mut w = barrier.waiter(tid);
///             for _ in 0..100 {
///                 w.wait(); // or w.arrive(); <slack work>; w.depart();
///             }
///         });
///     }
/// });
/// ```
#[derive(Debug)]
pub struct TreeBarrier {
    counts: Vec<CachePadded<AtomicU32>>,
    fan_in: Vec<u32>,
    parent: Vec<Option<CounterId>>,
    homes: Vec<CounterId>,
    path_len: Vec<u32>,
    epoch: CachePadded<AtomicU32>,
    degree: u32,
}

impl TreeBarrier {
    /// Builds the barrier from a topology (one thread per processor).
    pub fn from_topology(topo: &Topology) -> Self {
        let counts = (0..topo.num_counters())
            .map(|_| CachePadded::new(AtomicU32::new(0)))
            .collect();
        Self {
            counts,
            fan_in: topo.nodes().iter().map(|n| n.fan_in()).collect(),
            parent: topo.nodes().iter().map(|n| n.parent).collect(),
            homes: topo.homes().to_vec(),
            path_len: topo.nodes().iter().map(|n| n.path_len).collect(),
            epoch: CachePadded::new(AtomicU32::new(0)),
            degree: topo.degree(),
        }
    }

    /// A classic combining tree of the given degree over `p` threads
    /// (degree `>= p` builds the flat counter).
    pub fn combining(p: u32, degree: u32) -> Self {
        if degree >= p {
            Self::from_topology(&Topology::flat(p))
        } else {
            Self::from_topology(&Topology::combining(p, degree))
        }
    }

    /// An MCS-style owner tree of the given degree over `p` threads.
    pub fn mcs(p: u32, degree: u32) -> Self {
        Self::from_topology(&Topology::mcs(p, degree))
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.homes.len() as u32
    }

    /// The construction degree.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Path length (counters to the root, inclusive) seen by `tid`.
    pub fn depth_of(&self, tid: u32) -> u32 {
        self.path_len[self.homes[tid as usize] as usize]
    }

    /// Creates the per-thread handle for thread `tid`.
    ///
    /// Waiters may be created at any quiescent point (no episode in
    /// flight): they inherit the barrier's current epoch, so barriers
    /// survive being reused across thread-team phases.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn waiter(&self, tid: u32) -> TreeWaiter<'_> {
        assert!((tid as usize) < self.homes.len(), "thread id out of range");
        TreeWaiter {
            barrier: self,
            tid,
            epoch: self.epoch.load(Ordering::Acquire),
            pending: false,
        }
    }

    /// The signalling walk: increment from `start` upward; returns once
    /// this thread stops being the last updater (or released the root).
    fn signal(&self, start: CounterId) {
        let mut c = start as usize;
        loop {
            let prev = self.counts[c].fetch_add(1, Ordering::AcqRel);
            debug_assert!(prev < self.fan_in[c], "counter over-updated");
            if prev + 1 < self.fan_in[c] {
                return; // not last here: someone else will propagate
            }
            // Last updater: reset for the next episode (safe before the
            // release — nobody re-enters until after it), then continue
            // upward or release.
            self.counts[c].store(0, Ordering::Relaxed);
            match self.parent[c] {
                Some(par) => c = par as usize,
                None => {
                    self.epoch.fetch_add(1, Ordering::Release);
                    return;
                }
            }
        }
    }
}

/// Per-thread handle to a [`TreeBarrier`].
#[derive(Debug)]
pub struct TreeWaiter<'a> {
    barrier: &'a TreeBarrier,
    tid: u32,
    epoch: u32,
    pending: bool,
}

impl TreeWaiter<'_> {
    /// Signals arrival: walks the combining tree from this thread's
    /// home counter. May be followed by slack work before
    /// [`Self::depart`].
    pub fn arrive(&mut self) {
        assert!(!self.pending, "arrive called twice without depart");
        self.pending = true;
        let home = self.barrier.homes[self.tid as usize];
        self.barrier.signal(home);
    }

    /// Blocks until the barrier releases.
    pub fn depart(&mut self) {
        assert!(self.pending, "depart called without arrive");
        self.pending = false;
        self.epoch = self.epoch.wrapping_add(1);
        wait_for_epoch(&self.barrier.epoch, self.epoch);
    }

    /// A full barrier: `arrive` then `depart`.
    pub fn wait(&mut self) {
        self.arrive();
        self.depart();
    }

    /// This thread's id.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn lockstep_check(barrier: &TreeBarrier, episodes: u32) {
        let p = barrier.threads() as usize;
        let phases: Vec<AtomicU32> = (0..p).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..p {
                let phases = &phases;
                s.spawn(move || {
                    let mut w = barrier.waiter(tid as u32);
                    for e in 0..episodes {
                        phases[tid].store(e + 1, Ordering::Release);
                        w.wait();
                        for q in phases {
                            let ph = q.load(Ordering::Acquire);
                            assert!(ph == e + 1 || ph == e + 2, "episode {e}: phase {ph}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn combining_tree_lockstep() {
        for (p, d) in [(4u32, 2u32), (8, 2), (6, 4), (5, 8)] {
            let b = TreeBarrier::combining(p, d);
            lockstep_check(&b, 100);
        }
    }

    #[test]
    fn mcs_tree_lockstep() {
        for (p, d) in [(4u32, 2u32), (7, 2), (8, 4)] {
            let b = TreeBarrier::mcs(p, d);
            lockstep_check(&b, 100);
        }
    }

    #[test]
    fn ring_tree_lockstep() {
        let topo = combar_topo::Topology::ring_mcs(6, 2, 3);
        let b = TreeBarrier::from_topology(&topo);
        lockstep_check(&b, 100);
    }

    #[test]
    fn single_thread_never_blocks() {
        let b = TreeBarrier::combining(1, 4);
        let mut w = b.waiter(0);
        for _ in 0..50 {
            w.wait();
        }
    }

    #[test]
    fn depth_of_matches_topology() {
        let topo = combar_topo::Topology::mcs(8, 2);
        let b = TreeBarrier::from_topology(&topo);
        for tid in 0..8u32 {
            assert_eq!(b.depth_of(tid), topo.path_len(topo.home_of(tid)));
        }
    }

    #[test]
    fn counters_reset_between_episodes() {
        // After a complete episode every internal count must read 0.
        let b = TreeBarrier::combining(4, 2);
        let mut ws: Vec<_> = Vec::new();
        // single-threaded interleaving: arrive all, then check
        for tid in 0..4 {
            ws.push(b.waiter(tid));
        }
        for w in &mut ws {
            w.arrive();
        }
        for w in &mut ws {
            w.depart();
        }
        for c in &b.counts {
            assert_eq!(c.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn waiter_bounds_checked() {
        let b = TreeBarrier::combining(2, 2);
        let _ = b.waiter(2);
    }
}
