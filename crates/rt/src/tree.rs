//! The combining-tree barrier (static placement).
//!
//! A tree of padded atomic counters built from any `combar-topo`
//! [`Topology`]: classic combining trees (threads at the leaves),
//! MCS-style owner trees, or ring-constrained KSR trees. A thread
//! updates its home counter; whoever brings a counter to its fan-in
//! propagates to the parent; the root's last updater bumps the shared
//! epoch flag, releasing everyone (the paper's "last processor …
//! releases all the processors by updating a shared variable").
//!
//! Counter resets happen *before* the release, so the structure is
//! immediately reusable: no thread can start the next episode until
//! after the release, which orders every reset before every
//! next-episode increment.
//!
//! # Fault model
//!
//! [`TreeWaiter::wait_timeout`] bounds every wait; a waiter dropped
//! mid-episode poisons the barrier; a participant that stops arriving
//! can be evicted ([`TreeBarrier::evict`]) — its home-counter walk is
//! thereafter performed by proxy at each release — and later readmitted
//! via [`TreeWaiter::rejoin`].

use crate::error::BarrierError;
use crate::pad::CachePadded;
use crate::roster::{Arrival, Roster};
use crate::spin::{wait_for_epoch_fallible, EpochWait};
use crate::sync::{AtomicU32, Ordering};
use combar_topo::{CounterId, Topology};
use std::time::{Duration, Instant};

/// A static-placement tree barrier over an arbitrary topology.
///
/// # Examples
///
/// ```
/// use combar_rt::TreeBarrier;
///
/// let barrier = TreeBarrier::combining(4, 2);
/// std::thread::scope(|s| {
///     for tid in 0..4 {
///         let barrier = &barrier;
///         s.spawn(move || {
///             let mut w = barrier.waiter(tid);
///             for _ in 0..100 {
///                 w.wait(); // or w.arrive(); <slack work>; w.depart();
///             }
///         });
///     }
/// });
/// ```
#[derive(Debug)]
pub struct TreeBarrier {
    counts: Vec<CachePadded<AtomicU32>>,
    fan_in: Vec<u32>,
    parent: Vec<Option<CounterId>>,
    homes: Vec<CounterId>,
    path_len: Vec<u32>,
    epoch: CachePadded<AtomicU32>,
    poison: CachePadded<AtomicU32>,
    roster: Roster,
    degree: u32,
}

impl TreeBarrier {
    /// Builds the barrier from a topology (one thread per processor).
    pub fn from_topology(topo: &Topology) -> Self {
        let counts = (0..topo.num_counters())
            .map(|_| CachePadded::new(AtomicU32::new(0)))
            .collect();
        Self {
            counts,
            fan_in: topo.nodes().iter().map(|n| n.fan_in()).collect(),
            parent: topo.nodes().iter().map(|n| n.parent).collect(),
            homes: topo.homes().to_vec(),
            path_len: topo.nodes().iter().map(|n| n.path_len).collect(),
            epoch: CachePadded::new(AtomicU32::new(0)),
            poison: CachePadded::new(AtomicU32::new(0)),
            roster: Roster::new(topo.num_procs()),
            degree: topo.degree(),
        }
    }

    /// A classic combining tree of the given degree over `p` threads
    /// (degree `>= p` builds the flat counter).
    pub fn combining(p: u32, degree: u32) -> Self {
        if degree >= p {
            Self::from_topology(&Topology::flat(p))
        } else {
            Self::from_topology(&Topology::combining(p, degree))
        }
    }

    /// An MCS-style owner tree of the given degree over `p` threads.
    pub fn mcs(p: u32, degree: u32) -> Self {
        Self::from_topology(&Topology::mcs(p, degree))
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.homes.len() as u32
    }

    /// The construction degree.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Path length (counters to the root, inclusive) seen by `tid`.
    pub fn depth_of(&self, tid: u32) -> u32 {
        self.path_len[self.homes[tid as usize] as usize]
    }

    /// Creates the per-thread handle for thread `tid`.
    ///
    /// Waiters may be created at any quiescent point (no episode in
    /// flight): they inherit the barrier's current epoch, so barriers
    /// survive being reused across thread-team phases.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn waiter(&self, tid: u32) -> TreeWaiter<'_> {
        assert!((tid as usize) < self.homes.len(), "thread id out of range");
        TreeWaiter {
            barrier: self,
            tid,
            epoch: self.epoch.load(Ordering::Acquire),
            pending: false,
        }
    }

    /// Whether a participant died mid-episode, wedging the barrier.
    pub fn is_poisoned(&self) -> bool {
        self.poison.load(Ordering::Acquire) != 0
    }

    /// Number of currently evicted participants.
    pub fn evicted_count(&self) -> u32 {
        self.roster.evicted_count()
    }

    /// Whether participant `tid` is currently evicted.
    pub fn is_evicted(&self, tid: u32) -> bool {
        self.roster.is_evicted(tid)
    }

    /// Participants that have not arrived for the in-flight episode.
    pub fn stragglers(&self) -> Vec<u32> {
        self.roster.stragglers(&self.epoch)
    }

    /// Evicts participant `tid` if it has not arrived for the episode
    /// in flight, walking its home counter by proxy so survivors
    /// release; every later release re-delivers the proxy. Returns
    /// whether the eviction happened.
    pub fn evict(&self, tid: u32) -> bool {
        assert!((tid as usize) < self.homes.len(), "thread id out of range");
        if self.roster.evict(tid, &self.epoch) {
            if self.signal(self.homes[tid as usize]) {
                self.maintain();
            }
            true
        } else {
            false
        }
    }

    /// Evicts every current straggler; returns the evicted ids.
    pub fn evict_stragglers(&self) -> Vec<u32> {
        self.stragglers()
            .into_iter()
            .filter(|&t| self.evict(t))
            .collect()
    }

    /// The signalling walk: increment from `start` upward; returns
    /// whether this walk released the episode.
    fn signal(&self, start: CounterId) -> bool {
        let mut c = start as usize;
        loop {
            let prev = self.counts[c].fetch_add(1, Ordering::AcqRel);
            debug_assert!(prev < self.fan_in[c], "counter over-updated");
            if prev + 1 < self.fan_in[c] {
                return false; // not last here: someone else will propagate
            }
            // Last updater: reset for the next episode (safe before the
            // release — nobody re-enters until after it), then continue
            // upward or release.
            self.counts[c].store(0, Ordering::Relaxed);
            match self.parent[c] {
                Some(par) => c = par as usize,
                None => {
                    self.epoch.fetch_add(1, Ordering::Release);
                    return true;
                }
            }
        }
    }

    /// Post-release proxy sweep for evicted participants.
    fn maintain(&self) {
        self.roster
            .maintain(&self.epoch, |tid| self.signal(self.homes[tid as usize]));
    }
}

/// Per-thread handle to a [`TreeBarrier`].
///
/// Dropping a waiter between `arrive` and a completed depart poisons
/// the barrier: peers receive [`BarrierError::Poisoned`] instead of
/// spinning forever.
#[derive(Debug)]
pub struct TreeWaiter<'a> {
    barrier: &'a TreeBarrier,
    tid: u32,
    epoch: u32,
    pending: bool,
}

impl TreeWaiter<'_> {
    /// Signals arrival: walks the combining tree from this thread's
    /// home counter. May be followed by slack work before
    /// [`Self::depart`].
    ///
    /// # Panics
    ///
    /// Panics if called twice without a depart, if the barrier is
    /// poisoned, or if this participant has been evicted.
    pub fn arrive(&mut self) {
        assert!(!self.pending, "arrive called twice without depart");
        if let Err(e) = self.try_arrive() {
            panic!("barrier arrive failed: {e}");
        }
    }

    /// Fallible arrival: errors with [`BarrierError::Poisoned`] or
    /// [`BarrierError::Evicted`] instead of panicking.
    pub fn try_arrive(&mut self) -> Result<(), BarrierError> {
        assert!(!self.pending, "arrive called twice without depart");
        let b = self.barrier;
        if b.is_poisoned() {
            return Err(BarrierError::Poisoned);
        }
        let target = self.epoch.wrapping_add(1);
        match b.roster.try_arrive(self.tid, target) {
            Arrival::Evicted => Err(BarrierError::Evicted),
            Arrival::Claimed => {
                self.pending = true;
                if b.signal(b.homes[self.tid as usize]) {
                    b.maintain();
                }
                Ok(())
            }
        }
    }

    /// Blocks until the barrier releases.
    ///
    /// # Panics
    ///
    /// Panics if the barrier becomes poisoned while waiting.
    pub fn depart(&mut self) {
        assert!(self.pending, "depart called without arrive");
        if let Err(e) = self.depart_deadline(None) {
            panic!("barrier depart failed: {e}");
        }
    }

    fn depart_deadline(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        assert!(self.pending, "depart called without arrive");
        let b = self.barrier;
        let target = self.epoch.wrapping_add(1);
        match wait_for_epoch_fallible(&b.epoch, target, &b.poison, deadline) {
            EpochWait::Released => {
                self.epoch = target;
                self.pending = false;
                Ok(())
            }
            EpochWait::TimedOut => Err(BarrierError::Timeout),
            EpochWait::Poisoned => Err(BarrierError::Poisoned),
        }
    }

    fn wait_deadline(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        if !self.pending {
            self.try_arrive()?;
        }
        self.depart_deadline(deadline)
    }

    /// A full barrier: `arrive` then `depart`.
    ///
    /// # Panics
    ///
    /// Panics if the barrier is poisoned or this participant evicted.
    pub fn wait(&mut self) {
        if let Err(e) = self.wait_deadline(None) {
            panic!("barrier wait failed: {e}");
        }
    }

    /// A full barrier bounded by `timeout`.
    ///
    /// On [`BarrierError::Timeout`] the arrival stays registered: call
    /// a wait method again to resume the same episode rather than
    /// re-arriving. A timed-out waiter must not simply be dropped —
    /// that poisons the barrier; retry, or have a peer evict it.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
        self.wait_deadline(Some(Instant::now() + timeout))
    }

    /// Unbounded fallible full barrier: like [`Self::wait`] but
    /// returning poisoning/eviction as an error instead of panicking.
    /// Reads no clock, so schedules stay deterministic under the
    /// `combar-check` model checker.
    pub fn try_wait(&mut self) -> Result<(), BarrierError> {
        self.wait_deadline(None)
    }

    /// Unbounded fallible depart: like [`Self::depart`] but returning
    /// poisoning as an error instead of panicking. Reads no clock.
    pub fn try_depart(&mut self) -> Result<(), BarrierError> {
        self.depart_deadline(None)
    }

    /// Re-admission after eviction. On success the waiter is
    /// mid-episode (its latest arrival was delivered by proxy):
    /// complete it with a wait call, which departs without re-arriving.
    /// Returns `Ok(false)` if this participant was not evicted.
    pub fn rejoin(&mut self) -> Result<bool, BarrierError> {
        let b = self.barrier;
        if b.is_poisoned() {
            return Err(BarrierError::Poisoned);
        }
        match b.roster.rejoin(self.tid) {
            None => Ok(false),
            Some(last) => {
                self.epoch = last.wrapping_sub(1);
                self.pending = true;
                Ok(true)
            }
        }
    }

    /// This thread's id.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

impl Drop for TreeWaiter<'_> {
    fn drop(&mut self) {
        if self.pending {
            self.barrier.poison.store(1, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn lockstep_check(barrier: &TreeBarrier, episodes: u32) {
        let p = barrier.threads() as usize;
        let phases: Vec<AtomicU32> = (0..p).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..p {
                let phases = &phases;
                s.spawn(move || {
                    let mut w = barrier.waiter(tid as u32);
                    for e in 0..episodes {
                        phases[tid].store(e + 1, Ordering::Release);
                        w.wait();
                        for q in phases {
                            let ph = q.load(Ordering::Acquire);
                            assert!(ph == e + 1 || ph == e + 2, "episode {e}: phase {ph}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn combining_tree_lockstep() {
        for (p, d) in [(4u32, 2u32), (8, 2), (6, 4), (5, 8)] {
            let b = TreeBarrier::combining(p, d);
            lockstep_check(&b, 100);
        }
    }

    #[test]
    fn mcs_tree_lockstep() {
        for (p, d) in [(4u32, 2u32), (7, 2), (8, 4)] {
            let b = TreeBarrier::mcs(p, d);
            lockstep_check(&b, 100);
        }
    }

    #[test]
    fn ring_tree_lockstep() {
        let topo = combar_topo::Topology::ring_mcs(6, 2, 3);
        let b = TreeBarrier::from_topology(&topo);
        lockstep_check(&b, 100);
    }

    #[test]
    fn single_thread_never_blocks() {
        let b = TreeBarrier::combining(1, 4);
        let mut w = b.waiter(0);
        for _ in 0..50 {
            w.wait();
        }
    }

    #[test]
    fn depth_of_matches_topology() {
        let topo = combar_topo::Topology::mcs(8, 2);
        let b = TreeBarrier::from_topology(&topo);
        for tid in 0..8u32 {
            assert_eq!(b.depth_of(tid), topo.path_len(topo.home_of(tid)));
        }
    }

    #[test]
    fn counters_reset_between_episodes() {
        // After a complete episode every internal count must read 0.
        let b = TreeBarrier::combining(4, 2);
        let mut ws: Vec<_> = Vec::new();
        // single-threaded interleaving: arrive all, then check
        for tid in 0..4 {
            ws.push(b.waiter(tid));
        }
        for w in &mut ws {
            w.arrive();
        }
        for w in &mut ws {
            w.depart();
        }
        for c in &b.counts {
            assert_eq!(c.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn eviction_keeps_survivors_crossing_on_deep_trees() {
        // The straggler sits on a deep leaf; its whole root path must be
        // walked by proxy every episode.
        let b = TreeBarrier::combining(8, 2);
        let mut ws: Vec<_> = (0..7).map(|t| b.waiter(t)).collect();
        for w in &mut ws {
            w.try_arrive().unwrap();
        }
        assert_eq!(
            ws[0].wait_timeout(Duration::from_millis(2)),
            Err(BarrierError::Timeout)
        );
        assert_eq!(b.evict_stragglers(), vec![7]);
        // The eviction's proxy released the in-flight episode; depart.
        for w in &mut ws {
            w.wait_timeout(Duration::from_millis(500)).unwrap();
        }
        // 120 further episodes, single-threaded: arrive all (the last
        // arrival plus the maintained proxy releases), then depart all.
        for _ in 0..120 {
            for w in &mut ws {
                w.try_arrive().unwrap();
            }
            for w in &mut ws {
                w.wait_timeout(Duration::from_millis(500)).unwrap();
            }
        }
        assert_eq!(b.evicted_count(), 1);
        assert!(b.is_evicted(7));
    }

    #[test]
    fn poisoning_propagates_to_tree_peers() {
        let b = TreeBarrier::combining(3, 2);
        {
            let mut dying = b.waiter(0);
            dying.try_arrive().unwrap();
        }
        assert!(b.is_poisoned());
        let mut peer = b.waiter(1);
        assert_eq!(peer.try_arrive(), Err(BarrierError::Poisoned));
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn waiter_bounds_checked() {
        let b = TreeBarrier::combining(2, 2);
        let _ = b.waiter(2);
    }
}
