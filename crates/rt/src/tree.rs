//! The combining-tree barrier (static placement).
//!
//! A tree of padded atomic counters built from any `combar-topo`
//! [`Topology`]: classic combining trees (threads at the leaves),
//! MCS-style owner trees, or ring-constrained KSR trees. A thread
//! updates its home counter; whoever brings a counter to its fan-in
//! propagates to the parent; the root's last updater bumps the shared
//! epoch flag, releasing everyone (the paper's "last processor …
//! releases all the processors by updating a shared variable").
//!
//! Counter resets happen *before* the release, so the structure is
//! immediately reusable: no thread can start the next episode until
//! after the release, which orders every reset before every
//! next-episode increment.
//!
//! # Fault model
//!
//! [`TreeWaiter::wait_timeout`] bounds every wait; a waiter dropped
//! mid-episode poisons the barrier; a participant that stops arriving
//! can be evicted ([`TreeBarrier::evict`]) — its home-counter walk is
//! thereafter performed by proxy at each release — and later readmitted
//! via [`TreeWaiter::rejoin`].
//!
//! # Self-healing
//!
//! Eviction keeps the tree's shape (and its depth cost): the dead
//! thread's whole root path is still walked by proxy every episode. A
//! *detach* ([`TreeBarrier::detach`], or [`SelfHealing::fail`] from a
//! supervisor) additionally removes the participant from the live
//! shape: the releaser of the next episode recomputes the tree from
//! the base topology restricted to live members
//! (`Topology::prune_shape` — orphaned children re-parent onto the
//! grandparent, single-survivor chains splice out), inside its
//! quiescent window. That window — after the root counter resets,
//! before the epoch bump — is the one instant when no counter holds a
//! partial episode and no waiter can arrive (all are spinning on the
//! epoch), so shape stores need no further synchronization: the
//! Release epoch bump publishes them to survivors, and the roster
//! re-admission CAS publishes them to rejoiners. Reconfiguration
//! therefore always takes effect at an episode boundary, never
//! mid-episode. A detached thread rejoins through
//! [`TreeWaiter::try_rejoin`] / [`TreeWaiter::rejoin_within`]: the
//! request parks until a releaser grafts the thread back at (the
//! pruned position of) its original leaf, so full membership restores
//! the exact original shape.

use crate::error::BarrierError;
use crate::heal::{self, Change, Membership, RejoinStatus, SelfHealing};
use crate::pad::CachePadded;
use crate::roster::{Arrival, Roster};
use crate::spin::{wait_for_epoch_fallible, EpochWait};
use crate::sync::{AtomicU32, Ordering};
use combar_topo::{CounterId, Topology};
use combar_trace as trace;
use std::time::{Duration, Instant};

/// Sentinel for "no parent" in the atomic parent array.
const NO_PARENT: u32 = u32::MAX;

/// A static-placement tree barrier over an arbitrary topology.
///
/// # Examples
///
/// ```
/// use combar_rt::TreeBarrier;
///
/// let barrier = TreeBarrier::combining(4, 2);
/// std::thread::scope(|s| {
///     for tid in 0..4 {
///         let barrier = &barrier;
///         s.spawn(move || {
///             let mut w = barrier.waiter(tid);
///             for _ in 0..100 {
///                 w.wait(); // or w.arrive(); <slack work>; w.depart();
///             }
///         });
///     }
/// });
/// ```
#[derive(Debug)]
pub struct TreeBarrier {
    counts: Vec<CachePadded<AtomicU32>>,
    /// Live-shape arrays, indexed like the base topology; rewritten
    /// only inside a releaser's quiescent window.
    fan_in: Vec<CachePadded<AtomicU32>>,
    parent: Vec<CachePadded<AtomicU32>>,
    homes: Vec<CachePadded<AtomicU32>>,
    path_len: Vec<CachePadded<AtomicU32>>,
    epoch: CachePadded<AtomicU32>,
    poison: CachePadded<AtomicU32>,
    roster: Roster,
    membership: Membership,
    /// The immutable original topology every reconfiguration prunes.
    base: Topology,
    degree: u32,
}

impl TreeBarrier {
    /// Builds the barrier from a topology (one thread per processor).
    pub fn from_topology(topo: &Topology) -> Self {
        let counts = (0..topo.num_counters())
            .map(|_| CachePadded::new(AtomicU32::new(0)))
            .collect();
        Self {
            counts,
            fan_in: topo
                .nodes()
                .iter()
                .map(|n| CachePadded::new(AtomicU32::new(n.fan_in())))
                .collect(),
            parent: topo
                .nodes()
                .iter()
                .map(|n| CachePadded::new(AtomicU32::new(n.parent.unwrap_or(NO_PARENT))))
                .collect(),
            homes: topo
                .homes()
                .iter()
                .map(|&h| CachePadded::new(AtomicU32::new(h)))
                .collect(),
            path_len: topo
                .nodes()
                .iter()
                .map(|n| CachePadded::new(AtomicU32::new(n.path_len)))
                .collect(),
            epoch: CachePadded::new(AtomicU32::new(0)),
            poison: CachePadded::new(AtomicU32::new(0)),
            roster: Roster::new(topo.num_procs()),
            membership: Membership::new(topo.num_procs()),
            base: topo.clone(),
            degree: topo.degree(),
        }
    }

    /// A classic combining tree of the given degree over `p` threads
    /// (degree `>= p` builds the flat counter).
    ///
    /// Prefer building through [`crate::BarrierBuilder`] when a
    /// trait-object ([`crate::Barrier`]) surface, supervision, or a
    /// trace sink is wanted; the direct constructor stays for
    /// statically-typed embedding.
    pub fn combining(p: u32, degree: u32) -> Self {
        if degree >= p {
            Self::from_topology(&Topology::flat(p))
        } else {
            Self::from_topology(&Topology::combining(p, degree))
        }
    }

    /// An MCS-style owner tree of the given degree over `p` threads.
    ///
    /// Prefer building through [`crate::BarrierBuilder`] when a
    /// trait-object ([`crate::Barrier`]) surface, supervision, or a
    /// trace sink is wanted; the direct constructor stays for
    /// statically-typed embedding.
    pub fn mcs(p: u32, degree: u32) -> Self {
        Self::from_topology(&Topology::mcs(p, degree))
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.homes.len() as u32
    }

    /// The construction degree.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Path length (counters to the root, inclusive) seen by `tid` in
    /// the current live shape.
    pub fn depth_of(&self, tid: u32) -> u32 {
        let home = self.homes[tid as usize].load(Ordering::Acquire);
        self.path_len[home as usize].load(Ordering::Acquire)
    }

    /// The longest root path any *live* participant walks — the
    /// barrier's current critical depth. Shrinks after detaches,
    /// returns to the base depth after full rejoin.
    pub fn critical_depth(&self) -> u32 {
        (0..self.threads())
            .filter(|&t| self.membership.is_live(t))
            .map(|t| self.depth_of(t))
            .max()
            .unwrap_or(0)
    }

    /// The fault-free depth of the base topology.
    pub fn base_depth(&self) -> u32 {
        self.base.depth()
    }

    /// Number of participants the live shape currently counts.
    pub fn live_count(&self) -> u32 {
        self.membership.live_count()
    }

    /// Whether the live shape still counts `tid` (detaches flip this at
    /// an episode boundary, not at declaration time).
    pub fn is_live(&self, tid: u32) -> bool {
        self.membership.is_live(tid)
    }

    /// Number of shape reconfigurations applied so far.
    pub fn shape_epoch(&self) -> u32 {
        self.membership.shape_epoch()
    }

    /// Checks the live shape against a fresh prune of the base
    /// topology; call only at a quiescent point (no episode in
    /// flight). Used by property tests and the soak job.
    pub fn validate_shape(&self) -> Result<(), String> {
        let mask = self.membership.live_mask();
        let shape = self.base.prune_shape(&mask);
        shape.validate()?;
        for c in 0..self.base.num_counters() {
            let fan = self.fan_in[c].load(Ordering::Acquire);
            if fan != shape.fan_in[c] {
                return Err(format!("counter {c}: fan_in {fan} != {}", shape.fan_in[c]));
            }
            let par = self.parent[c].load(Ordering::Acquire);
            let want = shape.parent[c].unwrap_or(NO_PARENT);
            if shape.retained[c] && par != want {
                return Err(format!("counter {c}: parent {par} != {want}"));
            }
            if shape.retained[c] {
                let pl = self.path_len[c].load(Ordering::Acquire);
                if pl != shape.path_len[c] {
                    return Err(format!(
                        "counter {c}: path_len {pl} != {}",
                        shape.path_len[c]
                    ));
                }
            }
            let count = self.counts[c].load(Ordering::Acquire);
            if count != 0 {
                return Err(format!("counter {c}: count {count} != 0 at quiescence"));
            }
        }
        for t in 0..self.threads() {
            if let Some(want) = shape.home[t as usize] {
                let home = self.homes[t as usize].load(Ordering::Acquire);
                if home != want {
                    return Err(format!("thread {t}: home {home} != {want}"));
                }
            }
        }
        Ok(())
    }

    /// Creates the per-thread handle for thread `tid`.
    ///
    /// Waiters may be created at any quiescent point (no episode in
    /// flight): they inherit the barrier's current epoch, so barriers
    /// survive being reused across thread-team phases.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn waiter(&self, tid: u32) -> TreeWaiter<'_> {
        assert!((tid as usize) < self.homes.len(), "thread id out of range");
        TreeWaiter {
            barrier: self,
            tid,
            epoch: self.epoch.load(Ordering::Acquire),
            pending: false,
            awaiting_attach: false,
        }
    }

    /// Whether a participant died mid-episode, wedging the barrier.
    pub fn is_poisoned(&self) -> bool {
        self.poison.load(Ordering::Acquire) != 0
    }

    /// Number of currently evicted participants.
    pub fn evicted_count(&self) -> u32 {
        self.roster.evicted_count()
    }

    /// Whether participant `tid` is currently evicted.
    pub fn is_evicted(&self, tid: u32) -> bool {
        self.roster.is_evicted(tid)
    }

    /// Participants that have not arrived for the in-flight episode.
    pub fn stragglers(&self) -> Vec<u32> {
        self.roster.stragglers(&self.epoch)
    }

    /// Evicts participant `tid` if it has not arrived for the episode
    /// in flight, walking its home counter by proxy so survivors
    /// release; every later release re-delivers the proxy. Returns
    /// whether the eviction happened.
    pub fn evict(&self, tid: u32) -> bool {
        assert!((tid as usize) < self.homes.len(), "thread id out of range");
        if self.roster.evict(tid, &self.epoch) {
            let ep = self.trace_epoch();
            if trace::enabled() {
                trace::emit(ep, tid, trace::Kind::Evict(tid));
            }
            if self.signal(self.homes[tid as usize].load(Ordering::Acquire), tid, ep) {
                self.maintain();
            }
            true
        } else {
            false
        }
    }

    /// Episode tag for barrier-side (proxy) emission: the in-flight
    /// epoch, read only while a trace sink is attached.
    fn trace_epoch(&self) -> u32 {
        if trace::enabled() {
            self.epoch.load(Ordering::Relaxed)
        } else {
            0
        }
    }

    /// Evicts every current straggler; returns the evicted ids.
    pub fn evict_stragglers(&self) -> Vec<u32> {
        self.stragglers()
            .into_iter()
            .filter(|&t| self.evict(t))
            .collect()
    }

    /// Declares `tid` dead: evicts it if needed (delivering the
    /// in-flight proxy) and schedules its removal from the live shape
    /// for the next episode boundary. Fails (returning `false`) when
    /// the thread has arrived for the in-flight episode — i.e. it is
    /// provably alive right now — or when it is the last live
    /// participant (a barrier with nobody left could never release
    /// again). Idempotent.
    ///
    /// Until the boundary, the proxy keeps covering the thread under
    /// the old shape; afterwards the shape simply stops counting it
    /// (the slot stays maintained so a later rejoin resumes cleanly).
    pub fn detach(&self, tid: u32) -> bool {
        assert!((tid as usize) < self.homes.len(), "thread id out of range");
        if self.membership.is_live(tid) && self.membership.live_count() <= 1 {
            return false;
        }
        let _ = self.evict(tid);
        self.membership.request_detach(&self.roster, tid)
    }

    /// The signalling walk: increment from `start` upward; returns
    /// whether this walk released the episode. `subject`/`episode` tag
    /// the emitted trace events (the walking thread, or the proxied
    /// thread on eviction sweeps).
    fn signal(&self, start: CounterId, subject: u32, episode: u32) -> bool {
        let mut c = start as usize;
        loop {
            let fan = self.fan_in[c].load(Ordering::Acquire);
            let prev = self.counts[c].fetch_add(1, Ordering::AcqRel);
            debug_assert!(prev < fan, "counter over-updated");
            if prev + 1 < fan {
                trace::emit(episode, subject, trace::Kind::Lose(c as u32));
                return false; // not last here: someone else will propagate
            }
            trace::emit(episode, subject, trace::Kind::Win(c as u32));
            // Last updater: reset for the next episode (safe before the
            // release — nobody re-enters until after it), then continue
            // upward or release.
            self.counts[c].store(0, Ordering::Relaxed);
            let par = self.parent[c].load(Ordering::Acquire);
            if par == NO_PARENT {
                // Quiescent window: every counter is reset, every
                // surviving waiter is spinning on the epoch, and no
                // proxy can start (all non-active slots are stamped for
                // the in-flight target). Membership changes apply here.
                self.apply_pending();
                trace::emit(episode, subject, trace::Kind::Release);
                self.epoch.fetch_add(1, Ordering::Release);
                return true;
            }
            c = par as usize;
        }
    }

    /// Folds queued membership changes into the live shape. Called only
    /// from the releaser's quiescent window.
    fn apply_pending(&self) {
        if !self.membership.has_pending() {
            return;
        }
        let changes = self.membership.collect(&self.roster);
        if changes.is_empty() {
            return;
        }
        let mask = self.membership.live_mask();
        let shape = self.base.prune_shape(&mask);
        for c in 0..self.base.num_counters() {
            self.fan_in[c].store(shape.fan_in[c], Ordering::Relaxed);
            self.parent[c].store(shape.parent[c].unwrap_or(NO_PARENT), Ordering::Relaxed);
            self.path_len[c].store(shape.path_len[c], Ordering::Relaxed);
        }
        for (t, home) in shape.home.iter().enumerate() {
            if let Some(h) = home {
                self.homes[t].store(*h, Ordering::Relaxed);
            }
        }
        // Grants last: the roster CAS publishes the stores above to the
        // polling rejoiner (survivors get them from the epoch bump).
        for change in changes {
            match change {
                Change::Attach(tid) => self.membership.grant(&self.roster, tid),
                Change::Detach(tid) => {
                    debug_assert!(!self.membership.is_live(tid));
                }
            }
        }
    }

    /// Post-release proxy sweep for evicted participants. Detached
    /// slots are stamped but not walked — the live shape no longer
    /// counts them.
    fn maintain(&self) {
        self.roster.maintain(&self.epoch, |tid| {
            if !self.membership.is_live(tid) {
                return false;
            }
            let home = self.homes[tid as usize].load(Ordering::Acquire);
            let ep = self.trace_epoch();
            if trace::enabled() {
                trace::emit(ep, tid, trace::Kind::ProxyArrival(home));
            }
            self.signal(home, tid, ep)
        });
    }
}

impl SelfHealing for TreeBarrier {
    fn threads(&self) -> u32 {
        TreeBarrier::threads(self)
    }
    fn stragglers(&self) -> Vec<u32> {
        TreeBarrier::stragglers(self)
    }
    fn fail(&self, tid: u32) -> bool {
        self.detach(tid)
    }
    fn is_poisoned(&self) -> bool {
        TreeBarrier::is_poisoned(self)
    }
}

/// Per-thread handle to a [`TreeBarrier`].
///
/// Dropping a waiter between `arrive` and a completed depart poisons
/// the barrier: peers receive [`BarrierError::Poisoned`] instead of
/// spinning forever.
#[derive(Debug)]
pub struct TreeWaiter<'a> {
    barrier: &'a TreeBarrier,
    tid: u32,
    epoch: u32,
    pending: bool,
    /// An attach request is outstanding; waiting for a releaser grant.
    awaiting_attach: bool,
}

impl TreeWaiter<'_> {
    /// Signals arrival: walks the combining tree from this thread's
    /// home counter. May be followed by slack work before
    /// [`Self::depart`].
    ///
    /// # Panics
    ///
    /// Panics if called twice without a depart, if the barrier is
    /// poisoned, or if this participant has been evicted.
    pub fn arrive(&mut self) {
        assert!(!self.pending, "arrive called twice without depart");
        if let Err(e) = self.try_arrive() {
            panic!("barrier arrive failed: {e}");
        }
    }

    /// Fallible arrival: errors with [`BarrierError::Poisoned`] or
    /// [`BarrierError::Evicted`] instead of panicking.
    pub fn try_arrive(&mut self) -> Result<(), BarrierError> {
        assert!(!self.pending, "arrive called twice without depart");
        let b = self.barrier;
        if b.is_poisoned() {
            return Err(BarrierError::Poisoned);
        }
        let target = self.epoch.wrapping_add(1);
        match b.roster.try_arrive(self.tid, target) {
            Arrival::Evicted => Err(BarrierError::Evicted),
            Arrival::Claimed => {
                self.pending = true;
                trace::emit(self.epoch, self.tid, trace::Kind::Arrive);
                if b.signal(
                    b.homes[self.tid as usize].load(Ordering::Acquire),
                    self.tid,
                    self.epoch,
                ) {
                    b.maintain();
                }
                Ok(())
            }
        }
    }

    /// Blocks until the barrier releases.
    ///
    /// # Panics
    ///
    /// Panics if the barrier becomes poisoned while waiting.
    pub fn depart(&mut self) {
        assert!(self.pending, "depart called without arrive");
        if let Err(e) = self.depart_deadline(None) {
            panic!("barrier depart failed: {e}");
        }
    }

    fn depart_deadline(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        assert!(self.pending, "depart called without arrive");
        let b = self.barrier;
        let target = self.epoch.wrapping_add(1);
        match wait_for_epoch_fallible(&b.epoch, target, &b.poison, deadline) {
            EpochWait::Released => {
                self.epoch = target;
                self.pending = false;
                Ok(())
            }
            EpochWait::TimedOut => Err(BarrierError::Timeout),
            EpochWait::Poisoned => Err(BarrierError::Poisoned),
        }
    }

    fn wait_deadline(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        if !self.pending {
            self.try_arrive()?;
        }
        self.depart_deadline(deadline)
    }

    /// A full barrier: `arrive` then `depart`.
    ///
    /// # Panics
    ///
    /// Panics if the barrier is poisoned or this participant evicted.
    pub fn wait(&mut self) {
        if let Err(e) = self.wait_deadline(None) {
            panic!("barrier wait failed: {e}");
        }
    }

    /// A full barrier bounded by `timeout`.
    ///
    /// On [`BarrierError::Timeout`] the arrival stays registered: call
    /// a wait method again to resume the same episode rather than
    /// re-arriving. A timed-out waiter must not simply be dropped —
    /// that poisons the barrier; retry, or have a peer evict it.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
        self.wait_deadline(Some(Instant::now() + timeout))
    }

    /// Unbounded fallible full barrier: like [`Self::wait`] but
    /// returning poisoning/eviction as an error instead of panicking.
    /// Reads no clock, so schedules stay deterministic under the
    /// `combar-check` model checker.
    pub fn try_wait(&mut self) -> Result<(), BarrierError> {
        self.wait_deadline(None)
    }

    /// Unbounded fallible depart: like [`Self::depart`] but returning
    /// poisoning as an error instead of panicking. Reads no clock.
    pub fn try_depart(&mut self) -> Result<(), BarrierError> {
        self.depart_deadline(None)
    }

    /// One non-blocking rejoin step. Reads no clock, so rejoin loops
    /// stay deterministic under the `combar-check` model checker.
    ///
    /// * Merely evicted (shape untouched) → re-admits immediately via
    ///   the fast roster path, returns [`RejoinStatus::Rejoined`].
    /// * Detached (or detach-parked) → files an attach request the next
    ///   episode's releaser grants inside its quiescent window, then
    ///   returns [`RejoinStatus::Pending`] until the grant lands.
    ///
    /// After `Rejoined` the waiter is mid-episode (its latest arrival
    /// was delivered by proxy): complete it with a wait call, which
    /// departs without re-arriving.
    pub fn try_rejoin(&mut self) -> Result<RejoinStatus, BarrierError> {
        let b = self.barrier;
        if b.is_poisoned() {
            return Err(BarrierError::Poisoned);
        }
        let status = heal::try_rejoin_step(
            &b.roster,
            &b.membership,
            self.tid,
            &mut self.awaiting_attach,
            &mut self.epoch,
            &mut self.pending,
        );
        if matches!(status, RejoinStatus::Rejoined) {
            trace::emit(self.epoch, self.tid, trace::Kind::Rejoin);
        }
        Ok(status)
    }

    /// Re-admission after eviction: drives [`Self::try_rejoin`] until it
    /// resolves, spin-then-yield between polls. On success the waiter is
    /// mid-episode (its latest arrival was delivered by proxy): complete
    /// it with a wait call, which departs without re-arriving. Returns
    /// `Ok(false)` if this participant was not evicted.
    ///
    /// An attach can only be granted by an episode boundary, so this
    /// blocks until the live participants complete an episode; if they
    /// may be idle, prefer [`Self::rejoin_within`].
    pub fn rejoin(&mut self) -> Result<bool, BarrierError> {
        let this = self;
        heal::drive_rejoin(move || this.try_rejoin())
    }

    /// [`Self::rejoin`] bounded by `timeout`, polling with jittered
    /// exponential backoff ([`crate::JitterBackoff`]) so simultaneous
    /// rejoiners desynchronize. Returns [`BarrierError::Timeout`] if no
    /// episode boundary granted the attach in time (the request stays
    /// filed; a later call resumes waiting for it).
    pub fn rejoin_within(&mut self, timeout: Duration) -> Result<bool, BarrierError> {
        let tid = self.tid;
        let this = self;
        heal::drive_rejoin_within(tid, timeout, move || this.try_rejoin())
    }

    /// This thread's id.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

impl Drop for TreeWaiter<'_> {
    fn drop(&mut self) {
        if self.pending {
            self.barrier.poison.store(1, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spin::Deadline;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn lockstep_check(barrier: &TreeBarrier, episodes: u32) {
        let p = barrier.threads() as usize;
        let phases: Vec<AtomicU32> = (0..p).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..p {
                let phases = &phases;
                s.spawn(move || {
                    let mut w = barrier.waiter(tid as u32);
                    for e in 0..episodes {
                        phases[tid].store(e + 1, Ordering::Release);
                        w.wait();
                        for q in phases {
                            let ph = q.load(Ordering::Acquire);
                            assert!(ph == e + 1 || ph == e + 2, "episode {e}: phase {ph}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn combining_tree_lockstep() {
        for (p, d) in [(4u32, 2u32), (8, 2), (6, 4), (5, 8)] {
            let b = TreeBarrier::combining(p, d);
            lockstep_check(&b, 100);
        }
    }

    #[test]
    fn mcs_tree_lockstep() {
        for (p, d) in [(4u32, 2u32), (7, 2), (8, 4)] {
            let b = TreeBarrier::mcs(p, d);
            lockstep_check(&b, 100);
        }
    }

    #[test]
    fn ring_tree_lockstep() {
        let topo = combar_topo::Topology::ring_mcs(6, 2, 3);
        let b = TreeBarrier::from_topology(&topo);
        lockstep_check(&b, 100);
    }

    #[test]
    fn single_thread_never_blocks() {
        let b = TreeBarrier::combining(1, 4);
        let mut w = b.waiter(0);
        for _ in 0..50 {
            w.wait();
        }
    }

    #[test]
    fn depth_of_matches_topology() {
        let topo = combar_topo::Topology::mcs(8, 2);
        let b = TreeBarrier::from_topology(&topo);
        for tid in 0..8u32 {
            assert_eq!(b.depth_of(tid), topo.path_len(topo.home_of(tid)));
        }
    }

    #[test]
    fn counters_reset_between_episodes() {
        // After a complete episode every internal count must read 0.
        let b = TreeBarrier::combining(4, 2);
        let mut ws: Vec<_> = Vec::new();
        // single-threaded interleaving: arrive all, then check
        for tid in 0..4 {
            ws.push(b.waiter(tid));
        }
        for w in &mut ws {
            w.arrive();
        }
        for w in &mut ws {
            w.depart();
        }
        for c in &b.counts {
            assert_eq!(c.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn eviction_keeps_survivors_crossing_on_deep_trees() {
        // The straggler sits on a deep leaf; its whole root path must be
        // walked by proxy every episode.
        let b = TreeBarrier::combining(8, 2);
        let mut ws: Vec<_> = (0..7).map(|t| b.waiter(t)).collect();
        for w in &mut ws {
            w.try_arrive().unwrap();
        }
        assert_eq!(
            ws[0].wait_timeout(Duration::from_millis(2)),
            Err(BarrierError::Timeout)
        );
        assert_eq!(b.evict_stragglers(), vec![7]);
        // The eviction's proxy released the in-flight episode; depart.
        for w in &mut ws {
            w.wait_timeout(Duration::from_millis(500)).unwrap();
        }
        // 120 further episodes, single-threaded: arrive all (the last
        // arrival plus the maintained proxy releases), then depart all.
        for _ in 0..120 {
            for w in &mut ws {
                w.try_arrive().unwrap();
            }
            for w in &mut ws {
                w.wait_timeout(Duration::from_millis(500)).unwrap();
            }
        }
        assert_eq!(b.evicted_count(), 1);
        assert!(b.is_evicted(7));
    }

    #[test]
    fn poisoning_propagates_to_tree_peers() {
        let b = TreeBarrier::combining(3, 2);
        {
            let mut dying = b.waiter(0);
            dying.try_arrive().unwrap();
        }
        assert!(b.is_poisoned());
        let mut peer = b.waiter(1);
        assert_eq!(peer.try_arrive(), Err(BarrierError::Poisoned));
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn waiter_bounds_checked() {
        let b = TreeBarrier::combining(2, 2);
        let _ = b.waiter(2);
    }

    #[test]
    fn detach_reconfigures_and_rejoin_restores() {
        let b = TreeBarrier::combining(8, 2);
        let base_depth = b.base_depth();
        let mut ws: Vec<_> = (0..8).map(|t| b.waiter(t)).collect();
        let (w7, live) = ws.split_last_mut().unwrap();
        // Episode 1: thread 7 stalls; declare it dead (the eviction
        // half delivers the in-flight proxy and releases).
        for w in live.iter_mut() {
            w.try_arrive().unwrap();
        }
        assert!(b.detach(7));
        assert!(b.is_evicted(7));
        for w in live.iter_mut() {
            w.try_depart().unwrap();
        }
        assert_eq!(b.live_count(), 8, "detach applies only at a boundary");
        // Episode 2 still runs under the old shape (7 covered by
        // proxy); its releaser folds the detach into the live shape.
        for w in live.iter_mut() {
            w.try_arrive().unwrap();
        }
        for w in live.iter_mut() {
            w.try_depart().unwrap();
        }
        assert_eq!(b.live_count(), 7);
        assert_eq!(b.shape_epoch(), 1);
        b.validate_shape().unwrap();
        assert!(b.critical_depth() <= base_depth);
        // Episode 3 needs no proxy at all: the shape no longer counts 7.
        for w in live.iter_mut() {
            w.try_arrive().unwrap();
        }
        for w in live.iter_mut() {
            w.try_depart().unwrap();
        }
        // Rejoin: the request parks until a boundary grants it.
        assert_eq!(w7.try_rejoin().unwrap(), RejoinStatus::Pending);
        for w in live.iter_mut() {
            w.try_arrive().unwrap();
        }
        for w in live.iter_mut() {
            w.try_depart().unwrap();
        }
        assert_eq!(w7.try_rejoin().unwrap(), RejoinStatus::Rejoined);
        assert_eq!(b.live_count(), 8);
        assert_eq!(b.shape_epoch(), 2);
        w7.try_depart().unwrap(); // resumed mid-episode, departs at once
        b.validate_shape().unwrap();
        assert_eq!(
            b.critical_depth(),
            base_depth,
            "full rejoin restores the shape"
        );
        for w in ws.iter_mut() {
            w.try_arrive().unwrap();
        }
        for w in ws.iter_mut() {
            w.try_depart().unwrap();
        }
    }

    #[test]
    fn rejoin_before_boundary_cancels_detach() {
        let b = TreeBarrier::combining(4, 2);
        let mut ws: Vec<_> = (0..4).map(|t| b.waiter(t)).collect();
        let (w3, live) = ws.split_last_mut().unwrap();
        for w in live.iter_mut() {
            w.try_arrive().unwrap();
        }
        assert!(b.detach(3));
        for w in live.iter_mut() {
            w.try_depart().unwrap();
        }
        // Attach filed before any boundary applied the detach: the
        // releaser cancels it without ever recomputing the shape.
        assert_eq!(w3.try_rejoin().unwrap(), RejoinStatus::Pending);
        for w in live.iter_mut() {
            w.try_arrive().unwrap();
        }
        for w in live.iter_mut() {
            w.try_depart().unwrap();
        }
        assert_eq!(w3.try_rejoin().unwrap(), RejoinStatus::Rejoined);
        assert_eq!(b.shape_epoch(), 0, "no shape change ever applied");
        assert_eq!(b.live_count(), 4);
        w3.try_depart().unwrap();
        for w in ws.iter_mut() {
            w.try_arrive().unwrap();
        }
        for w in ws.iter_mut() {
            w.try_depart().unwrap();
        }
    }

    #[test]
    fn threaded_detach_then_rejoin_restores_lockstep() {
        let b = TreeBarrier::combining(8, 2);
        let silent_flag = AtomicU32::new(0);
        // Phase A (threaded): thread 7 crosses 20 episodes then goes
        // silent; a detacher thread declares it dead; survivors keep
        // crossing through the reconfiguration.
        std::thread::scope(|s| {
            for tid in 0..7u32 {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for _ in 0..200 {
                        loop {
                            match w.wait_timeout(Duration::from_millis(200)) {
                                Ok(()) => break,
                                Err(BarrierError::Timeout) => continue,
                                Err(e) => panic!("survivor hit {e}"),
                            }
                        }
                    }
                });
            }
            let silent = &silent_flag;
            let b2 = &b;
            s.spawn(move || {
                let mut w = b2.waiter(7);
                for _ in 0..20 {
                    w.try_wait().unwrap();
                }
                // Dies silently; the waiter drop is clean (not pending).
                silent.store(1, Ordering::Release);
            });
            let b3 = &b;
            s.spawn(move || {
                let deadline = Deadline::after(Duration::from_secs(20));
                while silent.load(Ordering::Acquire) == 0 {
                    assert!(!deadline.expired(), "victim never went silent");
                    std::thread::sleep(Duration::from_millis(1));
                }
                // Provably silent now: declare (retrying while its last
                // arrival's episode is still in flight).
                while !b3.detach(7) {
                    assert!(!deadline.expired(), "never declared thread 7");
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        });
        assert!(!b.is_poisoned());
        assert_eq!(b.live_count(), 7);
        b.validate_shape().unwrap();
        // Phase B (single-threaded): rejoin through the boundary grant.
        let mut w7 = b.waiter(7);
        assert_eq!(w7.try_rejoin().unwrap(), RejoinStatus::Pending);
        let mut live: Vec<_> = (0..7).map(|t| b.waiter(t)).collect();
        for w in &mut live {
            w.try_arrive().unwrap();
        }
        for w in &mut live {
            w.try_depart().unwrap();
        }
        assert_eq!(w7.try_rejoin().unwrap(), RejoinStatus::Rejoined);
        w7.try_depart().unwrap();
        drop(live);
        drop(w7);
        assert_eq!(b.live_count(), 8);
        b.validate_shape().unwrap();
        lockstep_check(&b, 50);
    }
}
