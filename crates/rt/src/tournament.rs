//! The tournament barrier (Hensgen, Finkel & Manber).
//!
//! Another classic `O(log p)` baseline: threads play ⌈log₂ p⌉ rounds of
//! statically paired matches. The pre-determined *loser* of each match
//! signals the winner and sits out; the winner waits for the signal and
//! advances. The champion (thread 0) releases everyone through the
//! shared epoch flag. Unlike the combining tree, every signal targets a
//! statically known location — no fetch-and-increment is needed at all,
//! only single-writer flags — which is why it appears as the minimum-
//! communication alternative in the literature the paper builds on.
//!
//! Like the dissemination barrier, the tournament has no useful
//! arrive/depart split (winners *block* inside the arrival phase
//! waiting for their losers), so it implements only `wait`.

use crate::pad::CachePadded;
use crate::spin::wait_for_epoch;
use std::sync::atomic::{AtomicU32, Ordering};

/// A tournament barrier for `p` threads.
#[derive(Debug)]
pub struct TournamentBarrier {
    /// `flags[r][w]`: episode number signalled to winner `w` in round
    /// `r` by its paired loser.
    flags: Vec<Vec<CachePadded<AtomicU32>>>,
    epoch: CachePadded<AtomicU32>,
    rounds: u32,
    p: u32,
}

impl TournamentBarrier {
    /// Creates a barrier for `p` threads.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: u32) -> Self {
        assert!(p > 0, "barrier needs at least one thread");
        let rounds = if p == 1 { 0 } else { (p - 1).ilog2() + 1 };
        let flags = (0..rounds)
            .map(|_| (0..p).map(|_| CachePadded::new(AtomicU32::new(0))).collect())
            .collect();
        Self { flags, epoch: CachePadded::new(AtomicU32::new(0)), rounds, p }
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.p
    }

    /// Number of rounds, `⌈log₂ p⌉`.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Creates the per-thread handle for thread `tid`.
    ///
    /// Waiters may be created at any quiescent point; they inherit the
    /// barrier's current epoch.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn waiter(&self, tid: u32) -> TournamentWaiter<'_> {
        assert!(tid < self.p, "thread id out of range");
        TournamentWaiter {
            barrier: self,
            tid,
            epoch: self.epoch.load(Ordering::Acquire),
        }
    }
}

/// Per-thread handle to a [`TournamentBarrier`].
#[derive(Debug)]
pub struct TournamentWaiter<'a> {
    barrier: &'a TournamentBarrier,
    tid: u32,
    epoch: u32,
}

impl TournamentWaiter<'_> {
    /// One full barrier episode.
    pub fn wait(&mut self) {
        let b = self.barrier;
        self.epoch = self.epoch.wrapping_add(1);
        let me = self.tid;
        let mut released_by_champion = false;
        for r in 0..b.rounds {
            let stride = 1u32 << r;
            let block = stride << 1;
            if me % block == 0 {
                // Winner of this round — if a paired loser exists.
                let loser = me + stride;
                if loser < b.p {
                    wait_for_epoch(&b.flags[r as usize][me as usize], self.epoch);
                }
                // (bye: advance without waiting)
            } else {
                // Loser: signal the winner and stop playing.
                let winner = me - stride;
                b.flags[r as usize][winner as usize].store(self.epoch, Ordering::Release);
                break;
            }
            if r + 1 == b.rounds {
                // Champion: every subtree has arrived.
                b.epoch.fetch_add(1, Ordering::Release);
                released_by_champion = true;
            }
        }
        if b.rounds == 0 {
            // single thread: trivially released
            b.epoch.fetch_add(1, Ordering::Release);
            released_by_champion = true;
        }
        if !released_by_champion {
            wait_for_epoch(&b.epoch, self.epoch);
        }
    }

    /// This thread's id.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    fn lockstep(p: usize, episodes: u32) {
        let barrier = TournamentBarrier::new(p as u32);
        let phases: Vec<AtomicU32> = (0..p).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..p {
                let barrier = &barrier;
                let phases = &phases;
                s.spawn(move || {
                    let mut w = barrier.waiter(tid as u32);
                    for e in 0..episodes {
                        if (e as usize + tid) % 5 == 0 {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                        phases[tid].store(e + 1, Ordering::Release);
                        w.wait();
                        for q in phases {
                            let ph = q.load(Ordering::Acquire);
                            assert!(ph == e + 1 || ph == e + 2, "p={p} episode {e}: {ph}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn lockstep_power_of_two() {
        lockstep(4, 120);
        lockstep(8, 120);
    }

    #[test]
    fn lockstep_odd_counts_use_byes() {
        lockstep(3, 120);
        lockstep(5, 120);
        lockstep(7, 120);
    }

    #[test]
    fn single_thread_never_blocks() {
        let b = TournamentBarrier::new(1);
        let mut w = b.waiter(0);
        for _ in 0..50 {
            w.wait();
        }
    }

    #[test]
    fn two_threads_round_count() {
        assert_eq!(TournamentBarrier::new(2).rounds(), 1);
        assert_eq!(TournamentBarrier::new(3).rounds(), 2);
        assert_eq!(TournamentBarrier::new(8).rounds(), 3);
    }

    #[test]
    fn survives_waiter_churn() {
        let b = TournamentBarrier::new(3);
        for _ in 0..4 {
            std::thread::scope(|s| {
                for tid in 0..3u32 {
                    let b = &b;
                    s.spawn(move || {
                        let mut w = b.waiter(tid);
                        for _ in 0..25 {
                            w.wait();
                        }
                    });
                }
            });
        }
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn waiter_bounds_checked() {
        let b = TournamentBarrier::new(2);
        let _ = b.waiter(5);
    }
}
