//! The tournament barrier (Hensgen, Finkel & Manber).
//!
//! Another classic `O(log p)` baseline: threads play ⌈log₂ p⌉ rounds of
//! statically paired matches. The pre-determined *loser* of each match
//! signals the winner and sits out; the winner waits for the signal and
//! advances. The champion (thread 0) releases everyone through the
//! shared epoch flag. Unlike the combining tree, every signal targets a
//! statically known location — no fetch-and-increment is needed at all,
//! only single-writer flags — which is why it appears as the minimum-
//! communication alternative in the literature the paper builds on.
//!
//! Like the dissemination barrier, the tournament has no useful
//! arrive/depart split (winners *block* inside the arrival phase
//! waiting for their losers), so it implements only `wait`.
//!
//! # Fault model
//!
//! Waits can be bounded ([`TournamentWaiter::wait_timeout`]); the
//! waiter checkpoints its match position and resumes there. A waiter
//! dropped mid-episode poisons the barrier. **Eviction is structurally
//! impossible**: the match pairings are static and every thread is the
//! unique signaller of its round's winner, so a proxy would have to
//! impersonate the dead thread's entire bracket forever. Use a
//! counter-tree barrier where graceful degradation is required.

use crate::error::BarrierError;
use crate::pad::CachePadded;
use crate::spin::{wait_for_epoch_fallible, EpochWait};
use crate::sync::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// A tournament barrier for `p` threads.
#[derive(Debug)]
pub struct TournamentBarrier {
    /// `flags[r][w]`: episode number signalled to winner `w` in round
    /// `r` by its paired loser.
    flags: Vec<Vec<CachePadded<AtomicU32>>>,
    epoch: CachePadded<AtomicU32>,
    poison: CachePadded<AtomicU32>,
    rounds: u32,
    p: u32,
}

impl TournamentBarrier {
    /// Creates a barrier for `p` threads.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: u32) -> Self {
        assert!(p > 0, "barrier needs at least one thread");
        let rounds = if p == 1 { 0 } else { (p - 1).ilog2() + 1 };
        let flags = (0..rounds)
            .map(|_| {
                (0..p)
                    .map(|_| CachePadded::new(AtomicU32::new(0)))
                    .collect()
            })
            .collect();
        Self {
            flags,
            epoch: CachePadded::new(AtomicU32::new(0)),
            poison: CachePadded::new(AtomicU32::new(0)),
            rounds,
            p,
        }
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.p
    }

    /// Number of rounds, `⌈log₂ p⌉`.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Whether a participant died mid-episode, wedging the barrier.
    pub fn is_poisoned(&self) -> bool {
        self.poison.load(Ordering::Acquire) != 0
    }

    /// Creates the per-thread handle for thread `tid`.
    ///
    /// Waiters may be created at any quiescent point; they inherit the
    /// barrier's current epoch.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn waiter(&self, tid: u32) -> TournamentWaiter<'_> {
        assert!(tid < self.p, "thread id out of range");
        TournamentWaiter {
            barrier: self,
            tid,
            epoch: self.epoch.load(Ordering::Acquire),
            round: 0,
            lost: false,
            mid: false,
        }
    }
}

/// Per-thread handle to a [`TournamentBarrier`].
///
/// Dropping a waiter mid-episode poisons the barrier: peers receive
/// [`BarrierError::Poisoned`] instead of spinning forever.
#[derive(Debug)]
pub struct TournamentWaiter<'a> {
    barrier: &'a TournamentBarrier,
    tid: u32,
    epoch: u32,
    /// Resume point for a timed-out episode: next match round to play.
    round: u32,
    /// Whether this thread already lost its match this episode (and is
    /// now only waiting for the champion's release).
    lost: bool,
    /// Whether an episode is in flight (entered but not completed).
    mid: bool,
}

impl TournamentWaiter<'_> {
    /// One full barrier episode.
    ///
    /// # Panics
    ///
    /// Panics if the barrier is (or becomes) poisoned.
    pub fn wait(&mut self) {
        if let Err(e) = self.wait_deadline(None) {
            panic!("barrier wait failed: {e}");
        }
    }

    /// One full barrier episode bounded by `timeout`.
    ///
    /// On [`BarrierError::Timeout`] the matches already played stay
    /// played: call a wait method again to resume the same episode at
    /// the match that stalled. A timed-out waiter must not simply be
    /// dropped — that poisons the barrier; retry until release instead.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
        self.wait_deadline(Some(Instant::now() + timeout))
    }

    /// Unbounded fallible full barrier: like [`Self::wait`] but
    /// returning poisoning as an error instead of panicking. Reads no
    /// clock, so schedules stay deterministic under the `combar-check`
    /// model checker.
    pub fn try_wait(&mut self) -> Result<(), BarrierError> {
        self.wait_deadline(None)
    }

    fn wait_deadline(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        let b = self.barrier;
        if b.is_poisoned() {
            return Err(BarrierError::Poisoned);
        }
        if !self.mid {
            self.epoch = self.epoch.wrapping_add(1);
            self.round = 0;
            self.lost = false;
            self.mid = true;
        }
        while !self.lost && self.round < b.rounds {
            let r = self.round as usize;
            let stride = 1u32 << self.round;
            let block = stride << 1;
            if self.tid % block == 0 {
                // Winner of this round — if a paired loser exists
                // (bye: advance without waiting).
                let loser = self.tid + stride;
                if loser < b.p {
                    match wait_for_epoch_fallible(
                        &b.flags[r][self.tid as usize],
                        self.epoch,
                        &b.poison,
                        deadline,
                    ) {
                        EpochWait::Released => {}
                        EpochWait::TimedOut => return Err(BarrierError::Timeout),
                        EpochWait::Poisoned => return Err(BarrierError::Poisoned),
                    }
                }
                self.round += 1;
            } else {
                // Loser: signal the winner and stop playing.
                let winner = self.tid - stride;
                b.flags[r][winner as usize].store(self.epoch, Ordering::Release);
                self.lost = true;
            }
        }
        if !self.lost {
            // Champion: every subtree has arrived. (Also the trivial
            // single-thread case, where rounds == 0.)
            b.epoch.fetch_add(1, Ordering::Release);
            self.mid = false;
            return Ok(());
        }
        match wait_for_epoch_fallible(&b.epoch, self.epoch, &b.poison, deadline) {
            EpochWait::Released => {
                self.mid = false;
                Ok(())
            }
            EpochWait::TimedOut => Err(BarrierError::Timeout),
            EpochWait::Poisoned => Err(BarrierError::Poisoned),
        }
    }

    /// This thread's id.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

impl Drop for TournamentWaiter<'_> {
    fn drop(&mut self) {
        if self.mid {
            self.barrier.poison.store(1, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    fn lockstep(p: usize, episodes: u32) {
        let barrier = TournamentBarrier::new(p as u32);
        let phases: Vec<AtomicU32> = (0..p).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..p {
                let barrier = &barrier;
                let phases = &phases;
                s.spawn(move || {
                    let mut w = barrier.waiter(tid as u32);
                    for e in 0..episodes {
                        if (e as usize + tid) % 5 == 0 {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                        phases[tid].store(e + 1, Ordering::Release);
                        w.wait();
                        for q in phases {
                            let ph = q.load(Ordering::Acquire);
                            assert!(ph == e + 1 || ph == e + 2, "p={p} episode {e}: {ph}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn lockstep_power_of_two() {
        lockstep(4, 120);
        lockstep(8, 120);
    }

    #[test]
    fn lockstep_odd_counts_use_byes() {
        lockstep(3, 120);
        lockstep(5, 120);
        lockstep(7, 120);
    }

    #[test]
    fn single_thread_never_blocks() {
        let b = TournamentBarrier::new(1);
        let mut w = b.waiter(0);
        for _ in 0..50 {
            w.wait();
        }
    }

    #[test]
    fn two_threads_round_count() {
        assert_eq!(TournamentBarrier::new(2).rounds(), 1);
        assert_eq!(TournamentBarrier::new(3).rounds(), 2);
        assert_eq!(TournamentBarrier::new(8).rounds(), 3);
    }

    #[test]
    fn survives_waiter_churn() {
        let b = TournamentBarrier::new(3);
        for _ in 0..4 {
            std::thread::scope(|s| {
                for tid in 0..3u32 {
                    let b = &b;
                    s.spawn(move || {
                        let mut w = b.waiter(tid);
                        for _ in 0..25 {
                            w.wait();
                        }
                    });
                }
            });
        }
    }

    #[test]
    fn timeout_resumes_at_the_stalled_match() {
        // Thread 0 (the eventual champion) stalls waiting for thread 1.
        let b = TournamentBarrier::new(2);
        let mut w0 = b.waiter(0);
        assert_eq!(
            w0.wait_timeout(Duration::from_millis(2)),
            Err(BarrierError::Timeout)
        );
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut w1 = b.waiter(1);
                w1.wait_timeout(Duration::from_secs(2)).unwrap();
            });
            w0.wait_timeout(Duration::from_secs(2)).unwrap();
        });
        // A loser's timeout while awaiting the release also resumes.
        let mut w1 = b.waiter(1);
        let mut w0 = b.waiter(0);
        assert_eq!(
            w1.wait_timeout(Duration::from_millis(2)),
            Err(BarrierError::Timeout)
        );
        w0.wait_timeout(Duration::from_secs(2)).unwrap();
        w1.wait_timeout(Duration::from_secs(2)).unwrap();
    }

    #[test]
    fn dropping_mid_episode_poisons_peers() {
        let b = TournamentBarrier::new(4);
        {
            let mut dying = b.waiter(0);
            let _ = dying.wait_timeout(Duration::from_millis(1));
        }
        assert!(b.is_poisoned());
        let mut peer = b.waiter(2);
        assert_eq!(
            peer.wait_timeout(Duration::from_secs(1)),
            Err(BarrierError::Poisoned)
        );
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn waiter_bounds_checked() {
        let b = TournamentBarrier::new(2);
        let _ = b.waiter(5);
    }
}
