//! The tournament barrier (Hensgen, Finkel & Manber).
//!
//! Another classic `O(log p)` baseline: threads play ⌈log₂ p⌉ rounds of
//! statically paired matches. The pre-determined *loser* of each match
//! signals the winner and sits out; the winner waits for the signal and
//! advances. The champion releases everyone through the shared epoch
//! flag. Unlike the combining tree, every signal targets a statically
//! known location — no fetch-and-increment is needed at all, only
//! single-writer flags — which is why it appears as the minimum-
//! communication alternative in the literature the paper builds on.
//!
//! Like the dissemination barrier, the tournament has no useful
//! arrive/depart split (winners *block* inside the arrival phase
//! waiting for their losers), so it implements only `wait`.
//!
//! # Fault model: adoption instead of proxies
//!
//! The counter trees heal by *proxy*: an evictor walks the dead
//! thread's counters for it. That does not transfer to the tournament —
//! the dead thread is the unique signaller of its bracket, every
//! episode, forever. What does transfer is *idempotence*: the match
//! flags carry episode numbers, so replaying a bracket that was already
//! (partially) played stores the same values again and changes nothing.
//! Self-healing is therefore built from three pieces:
//!
//! * **Adoption** — every loser remembers which winner it signalled
//!   (its `watch`). If that winner is declared dead before the release
//!   arrives, the loser replays the dead winner's *entire* bracket from
//!   round 0 — and, chasing the chain, the bracket of any further dead
//!   winner it signals. Multiple adopters may co-play the same track;
//!   the flags are idempotent, so nobody can disagree.
//! * **Self-service** — a winner whose awaited subtree consists
//!   entirely of dead ranks stores its own flag (there is nobody left
//!   to adopt on that side). Flag stores go through a monotone
//!   ("store-max") CAS so a stale revenant replay can never clobber a
//!   fresher episode's signal.
//! * **A release ticket** — with adoption, several threads can finish
//!   the champion's track for the same episode; a CAS on the `applied`
//!   counter elects exactly one of them to reconfigure the bracket and
//!   publish the epoch.
//!
//! Membership changes (detach / rejoin-attach) are applied by the
//! ticket holder inside its quiescent window, as in the counter trees:
//! live threads are re-ranked densely (`rank_of` / `tid_of`) and the
//! round count shrinks to `⌈log₂ live⌉`, so a degraded barrier also
//! gets a *shorter* tournament, not just a tolerant one. A rejoiner
//! that comes back before its detach applied resumes fast; one that
//! was detached waits for the boundary grant, exactly like the tree
//! barriers (`heal::try_rejoin_step`).
//!
//! A thread that dies mid-bracket *without* being declared (evicted)
//! still poisons the barrier — detection is the supervisor's job, not
//! the bracket's.

use crate::error::BarrierError;
use crate::heal::{self, Change, Membership, RejoinStatus, SelfHealing};
use crate::pad::CachePadded;
use crate::roster::{Arrival, Roster};
use crate::spin::{Backoff, Deadline};
use crate::sync::{AtomicU32, Ordering};
use combar_trace as trace;
use std::time::{Duration, Instant};

/// Sentinel rank/tid for "not in the live bracket".
const INVALID: u32 = u32::MAX;

/// Whether epoch-valued `flag` has reached `target` (wrapping).
#[inline]
fn reached(flag: u32, target: u32) -> bool {
    flag.wrapping_sub(target) <= u32::MAX / 2
}

fn rounds_for(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        (n - 1).ilog2() + 1
    }
}

/// A tournament barrier for `p` threads.
#[derive(Debug)]
pub struct TournamentBarrier {
    /// `flags[r][w]`: episode number signalled to the winner at *rank*
    /// `w` in round `r`. Monotone per slot (store-max CAS), which makes
    /// replays by adopters idempotent and stale replays harmless.
    flags: Vec<Vec<CachePadded<AtomicU32>>>,
    epoch: CachePadded<AtomicU32>,
    poison: CachePadded<AtomicU32>,
    /// Release ticket: the last episode whose champion duties
    /// (reconfigure + epoch publish) were claimed. With adoption,
    /// several threads may finish the champion track; CAS `ep-1 → ep`
    /// elects exactly one.
    applied: CachePadded<AtomicU32>,
    /// Bracket position of each live tid, `INVALID` when detached.
    rank_of: Vec<CachePadded<AtomicU32>>,
    /// Inverse map: tid seated at each rank (`INVALID` above `live_n`).
    tid_of: Vec<CachePadded<AtomicU32>>,
    live_n: CachePadded<AtomicU32>,
    rounds_cur: CachePadded<AtomicU32>,
    roster: Roster,
    membership: Membership,
    base_rounds: u32,
    p: u32,
}

impl TournamentBarrier {
    /// Creates a barrier for `p` threads.
    ///
    /// Prefer building through [`crate::BarrierBuilder`] when a
    /// trait-object ([`crate::Barrier`]) surface, supervision, or a
    /// trace sink is wanted; the direct constructor stays for
    /// statically-typed embedding.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: u32) -> Self {
        assert!(p > 0, "barrier needs at least one thread");
        let base_rounds = rounds_for(p);
        let flags = (0..base_rounds)
            .map(|_| {
                (0..p)
                    .map(|_| CachePadded::new(AtomicU32::new(0)))
                    .collect()
            })
            .collect();
        Self {
            flags,
            epoch: CachePadded::new(AtomicU32::new(0)),
            poison: CachePadded::new(AtomicU32::new(0)),
            applied: CachePadded::new(AtomicU32::new(0)),
            rank_of: (0..p)
                .map(|t| CachePadded::new(AtomicU32::new(t)))
                .collect(),
            tid_of: (0..p)
                .map(|t| CachePadded::new(AtomicU32::new(t)))
                .collect(),
            live_n: CachePadded::new(AtomicU32::new(p)),
            rounds_cur: CachePadded::new(AtomicU32::new(base_rounds)),
            roster: Roster::new(p),
            membership: Membership::new(p),
            base_rounds,
            p,
        }
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.p
    }

    /// Number of rounds in the *current* bracket, `⌈log₂ live⌉`.
    /// Shrinks after detaches, returns to [`Self::base_rounds`] after
    /// full rejoin.
    pub fn rounds(&self) -> u32 {
        self.rounds_cur.load(Ordering::Acquire)
    }

    /// Number of rounds of the fault-free bracket, `⌈log₂ p⌉`.
    pub fn base_rounds(&self) -> u32 {
        self.base_rounds
    }

    /// Whether a participant died mid-episode, wedging the barrier.
    pub fn is_poisoned(&self) -> bool {
        self.poison.load(Ordering::Acquire) != 0
    }

    /// Number of currently evicted participants.
    pub fn evicted_count(&self) -> u32 {
        self.roster.evicted_count()
    }

    /// Whether participant `tid` is currently evicted.
    pub fn is_evicted(&self, tid: u32) -> bool {
        self.roster.is_evicted(tid)
    }

    /// Number of participants the live bracket currently seats.
    pub fn live_count(&self) -> u32 {
        self.membership.live_count()
    }

    /// Whether the live bracket still seats `tid` (detaches flip this
    /// at an episode boundary, not at declaration time).
    pub fn is_live(&self, tid: u32) -> bool {
        self.membership.is_live(tid)
    }

    /// Number of bracket reconfigurations applied so far.
    pub fn shape_epoch(&self) -> u32 {
        self.membership.shape_epoch()
    }

    /// Participants that have not arrived for the in-flight episode.
    pub fn stragglers(&self) -> Vec<u32> {
        self.roster.stragglers(&self.epoch)
    }

    /// Evicts participant `tid` if it has not arrived for the episode
    /// in flight. No proxy walk happens — the survivors notice the
    /// death inside their own waits (adoption / self-service) and
    /// replay the dead thread's bracket themselves. Returns whether
    /// the eviction happened.
    pub fn evict(&self, tid: u32) -> bool {
        assert!(tid < self.p, "thread id out of range");
        let ok = self.roster.evict(tid, &self.epoch);
        if ok && trace::enabled() {
            trace::emit(
                self.epoch.load(Ordering::Relaxed),
                tid,
                trace::Kind::Evict(tid),
            );
        }
        ok
    }

    /// Evicts every current straggler; returns the evicted ids.
    pub fn evict_stragglers(&self) -> Vec<u32> {
        self.stragglers()
            .into_iter()
            .filter(|&t| self.evict(t))
            .collect()
    }

    /// Declares `tid` dead: evicts it if needed and schedules its
    /// removal from the bracket at the next episode boundary. Refused
    /// when the thread has arrived for the in-flight episode — i.e. it
    /// is provably alive right now — or when it is the last live
    /// participant. Idempotent.
    ///
    /// Until the boundary, survivors adopt the thread's bracket under
    /// the old shape; afterwards the shrunken bracket simply has no
    /// seat for it.
    pub fn detach(&self, tid: u32) -> bool {
        assert!(tid < self.p, "thread id out of range");
        if self.membership.is_live(tid) && self.membership.live_count() <= 1 {
            return false;
        }
        let _ = self.evict(tid);
        self.membership.request_detach(&self.roster, tid)
    }

    /// Checks the rank maps against the membership ledger; call only at
    /// a quiescent point (no episode in flight). Used by property tests
    /// and the soak job.
    pub fn validate_shape(&self) -> Result<(), String> {
        let mask = self.membership.live_mask();
        let n = mask.iter().filter(|&&m| m).count() as u32;
        if self.live_n.load(Ordering::Acquire) != n {
            return Err(format!(
                "live_n {} != membership live count {n}",
                self.live_n.load(Ordering::Acquire)
            ));
        }
        let mut next = 0u32;
        for t in 0..self.p {
            let r = self.rank_of[t as usize].load(Ordering::Acquire);
            if mask[t as usize] {
                if r != next {
                    return Err(format!("tid {t}: rank {r}, expected dense rank {next}"));
                }
                let back = self.tid_of[r as usize].load(Ordering::Acquire);
                if back != t {
                    return Err(format!("rank {r}: tid_of {back} != {t}"));
                }
                next += 1;
            } else if r != INVALID {
                return Err(format!("detached tid {t} still holds rank {r}"));
            }
        }
        let rounds = self.rounds_cur.load(Ordering::Acquire);
        if rounds != rounds_for(n) {
            return Err(format!("rounds {rounds} != ⌈log₂ {n}⌉ = {}", rounds_for(n)));
        }
        if rounds > self.base_rounds {
            return Err(format!(
                "rounds {rounds} exceeds base bracket {}",
                self.base_rounds
            ));
        }
        Ok(())
    }

    /// Creates the per-thread handle for thread `tid`.
    ///
    /// Waiters may be created at any quiescent point; they inherit the
    /// barrier's current epoch.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn waiter(&self, tid: u32) -> TournamentWaiter<'_> {
        assert!(tid < self.p, "thread id out of range");
        TournamentWaiter {
            barrier: self,
            tid,
            epoch: self.epoch.load(Ordering::Acquire),
            rank: self.rank_of[tid as usize].load(Ordering::Acquire),
            round: 0,
            watch: INVALID,
            lost: false,
            mid: false,
            preclaimed: false,
            awaiting_attach: false,
        }
    }

    /// Monotone flag store: only ever advances the slot (wrapping), so
    /// replays are idempotent and a stale adopter can never overwrite a
    /// fresher episode's signal.
    fn store_flag(&self, r: u32, w: u32, ep: u32) {
        let slot = &self.flags[r as usize][w as usize];
        let mut cur = slot.load(Ordering::Acquire);
        while !reached(cur, ep) {
            match slot.compare_exchange(cur, ep, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(c) => {
                    trace::count_cas_failure();
                    cur = c;
                }
            }
        }
    }

    /// Whether the seat at rank `k` is dead (evicted) or vacant.
    fn rank_dead(&self, k: u32) -> bool {
        let t = self.tid_of[k as usize].load(Ordering::Acquire);
        t == INVALID || self.roster.is_evicted(t)
    }

    /// Whether every seat in `[lo, lo + span)` (clipped to the live
    /// bracket) is dead — i.e. nobody on that side is left to signal
    /// or adopt.
    fn span_dead(&self, lo: u32, span: u32) -> bool {
        let n = self.live_n.load(Ordering::Acquire);
        (lo..(lo.saturating_add(span)).min(n)).all(|k| self.rank_dead(k))
    }

    /// Champion duties for episode `ep`, exactly once per episode: the
    /// `applied` ticket elects one of the (possibly several, thanks to
    /// adoption) threads that completed the champion track. The winner
    /// folds pending membership changes into the bracket inside this
    /// quiescent window — everyone else is provably spinning on the
    /// epoch or the roster — then publishes the epoch and restamps
    /// evicted slots for the next episode (no proxy walk: the stamp
    /// only keeps roster `last` tags current for rejoin).
    fn try_release(&self, ep: u32, subject: u32) -> bool {
        if self
            .applied
            .compare_exchange(ep.wrapping_sub(1), ep, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        self.apply_pending();
        trace::emit(ep, subject, trace::Kind::Release);
        self.epoch.store(ep, Ordering::Release);
        self.roster.maintain(&self.epoch, |_| false);
        true
    }

    /// Folds pending detaches/attaches into the bracket: re-rank live
    /// tids densely, shrink/grow the round count, then grant attaches
    /// (the admit CAS publishes the new maps to each rejoiner). Plain
    /// stores are safe here: survivors observe them via the Release
    /// epoch bump that follows.
    fn apply_pending(&self) {
        if !self.membership.has_pending() {
            return;
        }
        let changes = self.membership.collect(&self.roster);
        if changes.is_empty() {
            return;
        }
        let mut n = 0u32;
        for t in 0..self.p {
            if self.membership.is_live(t) {
                self.rank_of[t as usize].store(n, Ordering::Relaxed);
                self.tid_of[n as usize].store(t, Ordering::Relaxed);
                n += 1;
            } else {
                self.rank_of[t as usize].store(INVALID, Ordering::Relaxed);
            }
        }
        for k in n..self.p {
            self.tid_of[k as usize].store(INVALID, Ordering::Relaxed);
        }
        self.live_n.store(n, Ordering::Relaxed);
        self.rounds_cur.store(rounds_for(n), Ordering::Relaxed);
        for c in &changes {
            if let Change::Attach(t) = c {
                self.membership.grant(&self.roster, *t);
            }
        }
    }

    /// Replays the bracket of the dead rank `start` for episode `ep`,
    /// statelessly and idempotently, chasing the chain of further dead
    /// winners it signals. Returns once the track is delivered (or the
    /// episode released under us).
    fn play_adopted(
        &self,
        start: u32,
        ep: u32,
        subject: u32,
        deadline: Deadline,
    ) -> Result<(), BarrierError> {
        let mut z = start;
        let mut r = 0u32;
        loop {
            if reached(self.epoch.load(Ordering::Acquire), ep) {
                return Ok(()); // episode released; nothing is owed
            }
            if r >= self.rounds_cur.load(Ordering::Acquire) {
                // The adopted track reached the champion slot.
                self.try_release(ep, subject);
                return Ok(());
            }
            let stride = 1u32 << r;
            if z % (stride << 1) == 0 {
                // `z` wins round `r` (or takes a bye).
                let loser = z + stride;
                if loser < self.live_n.load(Ordering::Acquire) {
                    self.wait_flag_adopted(r, z, loser, stride, ep, deadline)?;
                    if reached(self.epoch.load(Ordering::Acquire), ep) {
                        return Ok(());
                    }
                }
                r += 1;
            } else {
                // `z` loses round `r`: deliver its signal, then chase
                // the chain if that winner is dead too.
                let w = z - stride;
                trace::emit(ep, subject, trace::Kind::ProxyArrival(r));
                self.store_flag(r, w, ep);
                if self.rank_dead(w) {
                    z = w;
                    r = 0;
                    continue;
                }
                return Ok(());
            }
        }
    }

    /// The flag wait inside an adopted replay: like the waiter's own
    /// winner wait, minus the self-eviction check (an adopter owes the
    /// track regardless of its own roster state) and plus an early-out
    /// when the episode releases under it.
    fn wait_flag_adopted(
        &self,
        r: u32,
        w: u32,
        loser: u32,
        span: u32,
        ep: u32,
        deadline: Deadline,
    ) -> Result<(), BarrierError> {
        let flag = &self.flags[r as usize][w as usize];
        let mut backoff = Backoff::new();
        loop {
            if reached(flag.load(Ordering::Acquire), ep) {
                return Ok(());
            }
            if reached(self.epoch.load(Ordering::Acquire), ep) {
                return Ok(());
            }
            if self.is_poisoned() {
                return Err(BarrierError::Poisoned);
            }
            if self.span_dead(loser, span) {
                self.store_flag(r, w, ep);
                return Ok(());
            }
            if deadline.expired() {
                return Err(BarrierError::Timeout);
            }
            backoff.snooze();
        }
    }
}

impl SelfHealing for TournamentBarrier {
    fn threads(&self) -> u32 {
        TournamentBarrier::threads(self)
    }
    fn stragglers(&self) -> Vec<u32> {
        TournamentBarrier::stragglers(self)
    }
    fn fail(&self, tid: u32) -> bool {
        self.detach(tid)
    }
    fn is_poisoned(&self) -> bool {
        TournamentBarrier::is_poisoned(self)
    }
}

/// Per-thread handle to a [`TournamentBarrier`].
///
/// Dropping a waiter mid-episode poisons the barrier — unless the
/// participant was already evicted, in which case survivors adopt its
/// bracket and the drop is clean.
#[derive(Debug)]
pub struct TournamentWaiter<'a> {
    barrier: &'a TournamentBarrier,
    tid: u32,
    epoch: u32,
    /// Bracket seat for the episode in flight (latched at entry; the
    /// bracket cannot be reshaped while a live seat is mid-episode).
    rank: u32,
    /// Resume point for a timed-out episode: next match round to play.
    round: u32,
    /// The winner rank this thread signalled — the bracket it must
    /// adopt if that winner is declared dead before the release.
    watch: u32,
    /// Whether this thread already lost its match this episode (and is
    /// now only waiting for the champion's release).
    lost: bool,
    /// Whether an episode is in flight (entered but not completed).
    mid: bool,
    /// A fast rejoin already tagged the roster slot for the in-flight
    /// episode; the next entry must not re-claim it.
    preclaimed: bool,
    /// An attach request is outstanding; waiting for a releaser grant.
    awaiting_attach: bool,
}

impl TournamentWaiter<'_> {
    /// One full barrier episode.
    ///
    /// # Panics
    ///
    /// Panics if the barrier is (or becomes) poisoned, or if this
    /// participant was evicted (use the fallible variants to handle
    /// eviction gracefully).
    pub fn wait(&mut self) {
        if let Err(e) = self.wait_deadline(Deadline::never()) {
            panic!("barrier wait failed: {e}");
        }
    }

    /// One full barrier episode bounded by `timeout`.
    ///
    /// On [`BarrierError::Timeout`] the matches already played stay
    /// played: call a wait method again to resume the same episode at
    /// the match that stalled. A timed-out waiter must not simply be
    /// dropped — that poisons the barrier; retry until release instead.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
        self.wait_deadline(Deadline::after(timeout))
    }

    /// Like [`Self::wait_timeout`] with an absolute deadline
    /// (`None` = unbounded).
    pub fn wait_until(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        self.wait_deadline(Deadline::from_instant(deadline))
    }

    /// Unbounded fallible full barrier: like [`Self::wait`] but
    /// returning poisoning/eviction as an error instead of panicking.
    /// Reads no clock, so schedules stay deterministic under the
    /// `combar-check` model checker.
    pub fn try_wait(&mut self) -> Result<(), BarrierError> {
        self.wait_deadline(Deadline::never())
    }

    fn wait_deadline(&mut self, deadline: Deadline) -> Result<(), BarrierError> {
        let b = self.barrier;
        if b.is_poisoned() {
            return Err(BarrierError::Poisoned);
        }
        if !self.mid {
            let target = b.epoch.load(Ordering::Acquire).wrapping_add(1);
            if self.preclaimed && b.roster.last_of(self.tid) == target {
                // A fast rejoin already tagged the slot for this
                // episode; claiming again would trip the duplicate-
                // arrival check.
                self.preclaimed = false;
            } else {
                self.preclaimed = false;
                match b.roster.try_arrive(self.tid, target) {
                    Arrival::Claimed => {}
                    Arrival::Evicted => return Err(BarrierError::Evicted),
                }
            }
            let rank = b.rank_of[self.tid as usize].load(Ordering::Acquire);
            debug_assert!(rank != INVALID, "active participant must hold a rank");
            self.epoch = target;
            self.rank = rank;
            self.round = 0;
            self.lost = false;
            self.watch = INVALID;
            self.mid = true;
            trace::emit(self.epoch, self.tid, trace::Kind::Arrive);
        }
        let rounds = b.rounds_cur.load(Ordering::Acquire);
        let n = b.live_n.load(Ordering::Acquire);
        while !self.lost && self.round < rounds {
            let r = self.round;
            let stride = 1u32 << r;
            if self.rank % (stride << 1) == 0 {
                // Winner of this round — if a paired loser exists
                // (bye: advance without waiting).
                let loser = self.rank + stride;
                if loser < n {
                    self.wait_flag(r, loser, stride, deadline)?;
                }
                trace::emit(self.epoch, self.tid, trace::Kind::Win(r));
                self.round += 1;
            } else {
                // Loser: signal the winner, remember whom to adopt if
                // it dies, and stop playing.
                let w = self.rank - stride;
                trace::emit(self.epoch, self.tid, trace::Kind::Lose(r));
                b.store_flag(r, w, self.epoch);
                self.watch = w;
                self.lost = true;
            }
        }
        if !self.lost {
            // Champion track complete (also the trivial single-seat
            // bracket, where rounds == 0). The ticket decides whether
            // this thread or a co-playing adopter does the release;
            // either way the epoch wait below falls through.
            b.try_release(self.epoch, self.tid);
        }
        let mut backoff = Backoff::new();
        loop {
            if reached(b.epoch.load(Ordering::Acquire), self.epoch) {
                self.mid = false;
                return Ok(());
            }
            if b.is_poisoned() {
                return Err(BarrierError::Poisoned);
            }
            if self.watch != INVALID && b.rank_dead(self.watch) {
                // Replay the dead winner's bracket; the next pass of
                // this loop observes the epoch if the replay (or a
                // co-playing adopter) released it.
                b.play_adopted(self.watch, self.epoch, self.tid, deadline)?;
            }
            if deadline.expired() {
                return Err(BarrierError::Timeout);
            }
            backoff.snooze();
        }
    }

    /// The winner-side flag wait, polling the fault state: poisoning,
    /// this thread's own eviction (its bracket now belongs to the
    /// adopters — back out), and an all-dead subtree (self-serve the
    /// signal nobody is left to send).
    fn wait_flag(
        &mut self,
        r: u32,
        loser: u32,
        span: u32,
        deadline: Deadline,
    ) -> Result<(), BarrierError> {
        let b = self.barrier;
        let flag = &b.flags[r as usize][self.rank as usize];
        let mut backoff = Backoff::new();
        loop {
            if reached(flag.load(Ordering::Acquire), self.epoch) {
                return Ok(());
            }
            if b.is_poisoned() {
                return Err(BarrierError::Poisoned);
            }
            if b.roster.is_evicted(self.tid) {
                return Err(BarrierError::Evicted);
            }
            if b.span_dead(loser, span) {
                trace::emit(self.epoch, self.tid, trace::Kind::ProxyArrival(r));
                b.store_flag(r, self.rank, self.epoch);
                continue;
            }
            if deadline.expired() {
                return Err(BarrierError::Timeout);
            }
            backoff.snooze();
        }
    }

    /// One non-blocking rejoin step. Tournament resume semantics:
    ///
    /// * Fast path (merely evicted): the roster slot is re-tagged for
    ///   the in-flight episode, but nobody *delivered* that bracket —
    ///   adoption is lazy — so the waiter replays the episode itself on
    ///   its next wait call (idempotently co-playing with any adopter).
    /// * Boundary grant (was detached): the granting releaser seats the
    ///   thread in the new bracket and publishes that episode's epoch
    ///   right after, so the waiter resumes as lost-in-that-episode and
    ///   its next wait call completes immediately.
    pub fn try_rejoin(&mut self) -> Result<RejoinStatus, BarrierError> {
        let b = self.barrier;
        if b.is_poisoned() {
            return Err(BarrierError::Poisoned);
        }
        let was_awaiting = self.awaiting_attach;
        let mut pending = false;
        let status = heal::try_rejoin_step(
            &b.roster,
            &b.membership,
            self.tid,
            &mut self.awaiting_attach,
            &mut self.epoch,
            &mut pending,
        );
        if matches!(status, RejoinStatus::Rejoined) {
            if was_awaiting {
                self.epoch = self.epoch.wrapping_add(1);
                self.mid = true;
                self.lost = true;
                self.watch = INVALID;
            } else {
                self.mid = false;
                self.preclaimed = true;
            }
            trace::emit(self.epoch, self.tid, trace::Kind::Rejoin);
        }
        Ok(status)
    }

    /// Re-admission after eviction: drives [`Self::try_rejoin`] until
    /// it resolves, spin-then-yield between polls. Returns `Ok(false)`
    /// if this participant was not evicted. Complete the rejoin with a
    /// wait call.
    ///
    /// An attach can only be granted by an episode boundary, so this
    /// blocks until the live participants complete an episode; if they
    /// may be idle, prefer [`Self::rejoin_within`].
    pub fn rejoin(&mut self) -> Result<bool, BarrierError> {
        let this = self;
        heal::drive_rejoin(move || this.try_rejoin())
    }

    /// Bounded [`Self::rejoin`], polling with jittered exponential
    /// backoff so simultaneous rejoiners desynchronize. On
    /// [`BarrierError::Timeout`] any filed attach request stays
    /// pending; a later call resumes waiting for it.
    pub fn rejoin_within(&mut self, timeout: Duration) -> Result<bool, BarrierError> {
        let tid = self.tid;
        let this = self;
        heal::drive_rejoin_within(tid, timeout, move || this.try_rejoin())
    }

    /// This thread's id.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

impl Drop for TournamentWaiter<'_> {
    fn drop(&mut self) {
        // A mid-episode drop wedges the bracket — unless the thread was
        // already declared dead, in which case adoption covers it.
        if self.mid && !self.barrier.roster.is_evicted(self.tid) {
            self.barrier.poison.store(1, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    const SHORT: Duration = Duration::from_millis(5);
    const LONG: Duration = Duration::from_secs(10);

    fn lockstep(p: usize, episodes: u32) {
        let barrier = TournamentBarrier::new(p as u32);
        let phases: Vec<AtomicU32> = (0..p).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..p {
                let barrier = &barrier;
                let phases = &phases;
                s.spawn(move || {
                    let mut w = barrier.waiter(tid as u32);
                    for e in 0..episodes {
                        if (e as usize + tid) % 5 == 0 {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                        phases[tid].store(e + 1, Ordering::Release);
                        w.wait();
                        for q in phases {
                            let ph = q.load(Ordering::Acquire);
                            assert!(ph == e + 1 || ph == e + 2, "p={p} episode {e}: {ph}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn lockstep_power_of_two() {
        lockstep(4, 120);
        lockstep(8, 120);
    }

    #[test]
    fn lockstep_odd_counts_use_byes() {
        lockstep(3, 120);
        lockstep(5, 120);
        lockstep(7, 120);
    }

    #[test]
    fn single_thread_never_blocks() {
        let b = TournamentBarrier::new(1);
        let mut w = b.waiter(0);
        for _ in 0..50 {
            w.wait();
        }
    }

    #[test]
    fn two_threads_round_count() {
        assert_eq!(TournamentBarrier::new(2).rounds(), 1);
        assert_eq!(TournamentBarrier::new(3).rounds(), 2);
        assert_eq!(TournamentBarrier::new(8).rounds(), 3);
    }

    #[test]
    fn survives_waiter_churn() {
        let b = TournamentBarrier::new(3);
        for _ in 0..4 {
            std::thread::scope(|s| {
                for tid in 0..3u32 {
                    let b = &b;
                    s.spawn(move || {
                        let mut w = b.waiter(tid);
                        for _ in 0..25 {
                            w.wait();
                        }
                    });
                }
            });
        }
    }

    #[test]
    fn timeout_resumes_at_the_stalled_match() {
        // Thread 0 (the eventual champion) stalls waiting for thread 1.
        let b = TournamentBarrier::new(2);
        let mut w0 = b.waiter(0);
        assert_eq!(
            w0.wait_timeout(Duration::from_millis(2)),
            Err(BarrierError::Timeout)
        );
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut w1 = b.waiter(1);
                w1.wait_timeout(Duration::from_secs(2)).unwrap();
            });
            w0.wait_timeout(Duration::from_secs(2)).unwrap();
        });
        // A loser's timeout while awaiting the release also resumes.
        let mut w1 = b.waiter(1);
        let mut w0 = b.waiter(0);
        assert_eq!(
            w1.wait_timeout(Duration::from_millis(2)),
            Err(BarrierError::Timeout)
        );
        w0.wait_timeout(Duration::from_secs(2)).unwrap();
        w1.wait_timeout(Duration::from_secs(2)).unwrap();
    }

    #[test]
    fn dropping_mid_episode_poisons_peers() {
        let b = TournamentBarrier::new(4);
        {
            let mut dying = b.waiter(0);
            let _ = dying.wait_timeout(Duration::from_millis(1));
        }
        assert!(b.is_poisoned());
        let mut peer = b.waiter(2);
        assert_eq!(
            peer.wait_timeout(Duration::from_secs(1)),
            Err(BarrierError::Poisoned)
        );
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn waiter_bounds_checked() {
        let b = TournamentBarrier::new(2);
        let _ = b.waiter(5);
    }

    #[test]
    fn evicted_straggler_is_adopted_and_rejoins_fast() {
        // p=2: thread 1 never shows up; thread 0 self-serves its flag
        // after the eviction and releases alone.
        let b = TournamentBarrier::new(2);
        let mut w0 = b.waiter(0);
        assert_eq!(w0.wait_timeout(SHORT), Err(BarrierError::Timeout));
        assert_eq!(b.stragglers(), vec![1]);
        assert!(b.evict(1));
        w0.wait_timeout(LONG).unwrap();
        // Further episodes release without thread 1 (bracket unchanged,
        // the dead seat is self-served every time).
        w0.wait_timeout(LONG).unwrap();
        // Fast rejoin: the slot is tagged for the in-flight episode and
        // the rejoiner replays that episode itself.
        let mut w1 = b.waiter(1);
        assert_eq!(w1.rejoin(), Ok(true));
        std::thread::scope(|s| {
            s.spawn(|| w1.wait_timeout(LONG).unwrap());
            w0.wait_timeout(LONG).unwrap();
        });
        assert!(!b.is_poisoned());
        assert_eq!(b.evicted_count(), 0);
    }

    #[test]
    fn dead_champion_is_adopted_by_its_losers() {
        let b = TournamentBarrier::new(4);
        let mut w1 = b.waiter(1);
        let mut w2 = b.waiter(2);
        let mut w3 = b.waiter(3);
        // Everyone but the champion plays; the bracket stalls on rank 0.
        assert_eq!(w1.wait_timeout(SHORT), Err(BarrierError::Timeout));
        assert_eq!(w3.wait_timeout(SHORT), Err(BarrierError::Timeout));
        assert_eq!(w2.wait_timeout(SHORT), Err(BarrierError::Timeout));
        // Declare the champion dead: its direct losers (1 and 2) watch
        // it, replay its track, and one of them wins the release ticket.
        assert!(b.evict(0));
        w1.wait_timeout(LONG).unwrap();
        w2.wait_timeout(LONG).unwrap();
        w3.wait_timeout(LONG).unwrap();
        assert!(!b.is_poisoned());
        // Fast rejoin; the rejoiner replays the in-flight episode.
        let mut w0 = b.waiter(0);
        assert_eq!(w0.rejoin(), Ok(true));
        std::thread::scope(|s| {
            s.spawn(|| w0.wait_timeout(LONG).unwrap());
            s.spawn(|| w1.wait_timeout(LONG).unwrap());
            s.spawn(|| w2.wait_timeout(LONG).unwrap());
            w3.wait_timeout(LONG).unwrap();
        });
        assert_eq!(b.evicted_count(), 0);
        assert!(!b.is_poisoned());
    }

    #[test]
    fn detach_shrinks_bracket_and_rejoin_restores() {
        let b = TournamentBarrier::new(4);
        let mut w0 = b.waiter(0);
        let mut w1 = b.waiter(1);
        let mut w2 = b.waiter(2);
        let mut w3 = b.waiter(3);
        assert_eq!(b.rounds(), 2);
        // Declare thread 3 dead before it ever arrives.
        assert!(b.detach(3));
        assert!(b.is_evicted(3));
        assert!(b.is_live(3), "detach applies only at the boundary");
        // Losers first (they park on the epoch), then the champion.
        assert_eq!(w1.wait_timeout(SHORT), Err(BarrierError::Timeout));
        assert_eq!(w2.wait_timeout(SHORT), Err(BarrierError::Timeout));
        w0.wait_timeout(LONG).unwrap();
        w1.wait_timeout(LONG).unwrap();
        w2.wait_timeout(LONG).unwrap();
        // The boundary applied the detach: three seats, still 2 rounds.
        assert!(!b.is_live(3));
        assert_eq!(b.live_count(), 3);
        assert_eq!(b.shape_epoch(), 1);
        assert_eq!(b.rounds(), 2);
        b.validate_shape().unwrap();
        // An episode under the shrunken bracket (rank 2 takes a bye).
        assert_eq!(w1.wait_timeout(SHORT), Err(BarrierError::Timeout));
        assert_eq!(w2.wait_timeout(SHORT), Err(BarrierError::Timeout));
        w0.wait_timeout(LONG).unwrap();
        w1.wait_timeout(LONG).unwrap();
        w2.wait_timeout(LONG).unwrap();
        // Rejoin goes through the boundary grant.
        assert_eq!(w3.try_rejoin().unwrap(), RejoinStatus::Pending);
        assert_eq!(w1.wait_timeout(SHORT), Err(BarrierError::Timeout));
        assert_eq!(w2.wait_timeout(SHORT), Err(BarrierError::Timeout));
        w0.wait_timeout(LONG).unwrap();
        assert_eq!(w3.try_rejoin().unwrap(), RejoinStatus::Rejoined);
        w3.wait_timeout(LONG).unwrap();
        w1.wait_timeout(LONG).unwrap();
        w2.wait_timeout(LONG).unwrap();
        assert_eq!(b.live_count(), 4);
        assert_eq!(b.shape_epoch(), 2);
        assert_eq!(b.rounds(), 2);
        b.validate_shape().unwrap();
        // Full-strength episode: 3 loses to 2, 1 to 0, 2 to 0.
        assert_eq!(w1.wait_timeout(SHORT), Err(BarrierError::Timeout));
        assert_eq!(w3.wait_timeout(SHORT), Err(BarrierError::Timeout));
        assert_eq!(w2.wait_timeout(SHORT), Err(BarrierError::Timeout));
        w0.wait_timeout(LONG).unwrap();
        w1.wait_timeout(LONG).unwrap();
        w2.wait_timeout(LONG).unwrap();
        w3.wait_timeout(LONG).unwrap();
        assert!(!b.is_poisoned());
    }

    #[test]
    fn detach_shrinks_round_count() {
        // 5 seats need 3 rounds; detaching down to 4 needs only 2.
        let b = TournamentBarrier::new(5);
        assert_eq!(b.rounds(), 3);
        let mut w: Vec<_> = (0..5).map(|t| b.waiter(t)).collect();
        assert!(b.detach(4));
        // Losers of the 4-live episode (old bracket still: 1→0, 3→2,
        // 2→0; rank 4's track is self-served).
        assert_eq!(w[1].wait_timeout(SHORT), Err(BarrierError::Timeout));
        assert_eq!(w[3].wait_timeout(SHORT), Err(BarrierError::Timeout));
        assert_eq!(w[2].wait_timeout(SHORT), Err(BarrierError::Timeout));
        w[0].wait_timeout(LONG).unwrap();
        for loser in w.iter_mut().take(4).skip(1) {
            loser.wait_timeout(LONG).unwrap();
        }
        assert_eq!(b.live_count(), 4);
        assert_eq!(b.rounds(), 2, "bracket shrank with the membership");
        b.validate_shape().unwrap();
    }

    #[test]
    fn rejoin_before_boundary_cancels_detach() {
        let b = TournamentBarrier::new(2);
        let mut w0 = b.waiter(0);
        let mut w1 = b.waiter(1);
        assert!(b.detach(1));
        // The parked slot cannot rejoin fast; it files an attach.
        assert_eq!(w1.try_rejoin().unwrap(), RejoinStatus::Pending);
        // The next boundary cancels the never-applied detach: no
        // reconfiguration, just a roster re-admission.
        w0.wait_timeout(LONG).unwrap();
        assert_eq!(w1.try_rejoin().unwrap(), RejoinStatus::Rejoined);
        w1.wait_timeout(LONG).unwrap();
        assert_eq!(b.shape_epoch(), 0, "cancelled detach never reshaped");
        assert_eq!(b.live_count(), 2);
        b.validate_shape().unwrap();
    }

    #[test]
    fn detach_refuses_last_live_participant() {
        let b = TournamentBarrier::new(2);
        assert!(b.detach(1));
        let mut w0 = b.waiter(0);
        w0.wait_timeout(LONG).unwrap(); // boundary applies the detach
        assert_eq!(b.live_count(), 1);
        assert!(!b.detach(0), "cannot detach the last live seat");
        assert!(b.is_live(0));
        w0.wait_timeout(LONG).unwrap();
    }

    #[test]
    fn threaded_detach_then_rejoin_restores_lockstep() {
        let b = TournamentBarrier::new(4);
        let silent_flag = AtomicU32::new(0);
        // Phase A (threaded): thread 3 crosses 20 episodes then goes
        // silent; a detacher thread declares it dead; survivors keep
        // crossing through the reconfiguration by adopting its bracket.
        std::thread::scope(|s| {
            for tid in 0..3u32 {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for _ in 0..200 {
                        loop {
                            match w.wait_timeout(Duration::from_millis(200)) {
                                Ok(()) => break,
                                Err(BarrierError::Timeout) => continue,
                                Err(e) => panic!("survivor hit {e}"),
                            }
                        }
                    }
                });
            }
            let silent = &silent_flag;
            let b2 = &b;
            s.spawn(move || {
                let mut w = b2.waiter(3);
                for _ in 0..20 {
                    w.try_wait().unwrap();
                }
                // Dies silently; the waiter drop is clean (not mid).
                silent.store(1, Ordering::Release);
            });
            let b3 = &b;
            s.spawn(move || {
                let deadline = Deadline::after(Duration::from_secs(20));
                while silent.load(Ordering::Acquire) == 0 {
                    assert!(!deadline.expired(), "victim never went silent");
                    std::thread::sleep(Duration::from_millis(1));
                }
                // Provably silent now: declare (retrying while its last
                // arrival's episode is still in flight).
                while !b3.detach(3) {
                    assert!(!deadline.expired(), "never declared thread 3");
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        });
        assert!(!b.is_poisoned());
        assert_eq!(b.live_count(), 3);
        b.validate_shape().unwrap();
        // Phase B (single-threaded): rejoin through the boundary grant.
        let mut w3 = b.waiter(3);
        assert_eq!(w3.try_rejoin().unwrap(), RejoinStatus::Pending);
        let mut w0 = b.waiter(0);
        let mut w1 = b.waiter(1);
        let mut w2 = b.waiter(2);
        assert_eq!(w1.wait_timeout(SHORT), Err(BarrierError::Timeout));
        assert_eq!(w2.wait_timeout(SHORT), Err(BarrierError::Timeout));
        w0.wait_timeout(LONG).unwrap();
        assert_eq!(w3.try_rejoin().unwrap(), RejoinStatus::Rejoined);
        w3.wait_timeout(LONG).unwrap();
        w1.wait_timeout(LONG).unwrap();
        w2.wait_timeout(LONG).unwrap();
        assert_eq!(b.live_count(), 4);
        b.validate_shape().unwrap();
        drop((w0, w1, w2, w3));
        // Phase C (threaded): full-strength lockstep again.
        std::thread::scope(|s| {
            for tid in 0..4u32 {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for _ in 0..50 {
                        w.wait();
                    }
                });
            }
        });
        assert!(!b.is_poisoned());
    }
}
