//! Fallible-wait error type shared by every barrier in the crate.

/// Why a fallible barrier operation did not complete normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierError {
    /// The deadline passed before the episode's release. The waiter's
    /// arrival (if it was registered) remains valid: calling a wait
    /// method again resumes the same episode rather than re-arriving.
    Timeout,
    /// A participant died mid-episode (its waiter was dropped between
    /// arrive and depart, typically by a panic unwinding), so the
    /// episode can never complete. The barrier is permanently poisoned.
    Poisoned,
    /// This participant was evicted by the graceful-degradation
    /// protocol after failing to arrive. Survivors keep crossing via
    /// proxy arrivals; the evicted thread may call `rejoin` to be
    /// re-admitted.
    Evicted,
    /// The participant's view of the epoch stream has diverged from
    /// the authority's — a recovered epoch server lost a journal
    /// suffix the client already observed. The session cannot be
    /// resumed safely; continuing would silently double-release or
    /// skip epochs, so the client surfaces the divergence instead.
    Diverged,
}

impl core::fmt::Display for BarrierError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Timeout => write!(f, "barrier wait timed out"),
            Self::Poisoned => write!(f, "barrier poisoned by a participant dying mid-episode"),
            Self::Evicted => write!(f, "participant was evicted from the barrier"),
            Self::Diverged => write!(
                f,
                "epoch stream diverged from the recovered authority (lost journal suffix)"
            ),
        }
    }
}

impl std::error::Error for BarrierError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(BarrierError::Timeout.to_string().contains("timed out"));
        assert!(BarrierError::Poisoned.to_string().contains("poisoned"));
        assert!(BarrierError::Evicted.to_string().contains("evicted"));
        assert!(BarrierError::Diverged.to_string().contains("diverged"));
    }
}
