//! Barrier conformance: one shared contract matrix for every kind.
//!
//! Every barrier in this crate makes the same promises — lockstep
//! phasing, unbounded reuse through sense/epoch reversal, release only
//! after all arrivals, survival of waiter churn — but historically each
//! integration test restated those assertions by hand per kind. This
//! module names the kinds ([`BarrierKind`]) and packages the contracts
//! as reusable check functions so the full matrix (kind × contract ×
//! thread count) is written once and every new barrier joins it by
//! adding one enum variant. Type erasure comes from the unified
//! [`crate::barrier::Barrier`] trait: [`AnyBarrier`]/[`AnyWaiter`] are
//! thin newtypes over boxed trait objects (re-exported here from
//! [`crate::barrier`]), so the whole matrix doubles as a conformance
//! check on every kind's trait impl.
//!
//! The contracts:
//!
//! * [`check_lockstep`] — the fundamental guarantee, soaked under
//!   adversarial staggering via [`lockstep_torture`] for ≥ 100
//!   episodes;
//! * [`check_reuse_and_churn`] — back-to-back episodes at maximal
//!   arrival rate across *odd-length* phases with fresh waiters per
//!   phase, stressing sense reversal on both parities of the churn
//!   boundary;
//! * [`check_arrival_release_ordering`] — no release before every
//!   arrival of the episode, observed through per-thread signal stamps;
//! * [`check_fuzzy_slack`] — for kinds with an arrive/depart split,
//!   slack work between the phases completes before any peer departs
//!   the *next* episode (Gupta's fuzzy contract).
//!
//! Deeper, kind-specific behaviour (victor/victim migration, adaptive
//! degree policy, eviction) stays in dedicated tests; model-checked
//! interleaving coverage lives in `tests/model_check.rs` on top of
//! `combar-check`.

use crate::barrier::BarrierBuilder;
use crate::harness::{lockstep_torture, Stagger, TortureReport};
use crate::BarrierError;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

pub use crate::barrier::{AnyBarrier, AnyWaiter};

/// Episodes each conformance contract drives (the contract demands at
/// least 100 reuses of the same barrier object).
pub const CONFORMANCE_EPISODES: u32 = 120;

/// Bounded step so harness watchdog/abort machinery can drain a wedged
/// run instead of hanging the test binary.
const STEP: Duration = Duration::from_secs(5);

/// A barrier family (plus its shape parameters, where it has any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierKind {
    /// Single shared counter with sense reversal.
    Central,
    /// Mutex/condvar barrier (threads sleep instead of spinning).
    Blocking,
    /// Static combining tree of the given fan-in.
    CombiningTree {
        /// Fan-in of every counter in the tree.
        degree: u32,
    },
    /// MCS-style tree (each counter owned by one processor).
    McsTree {
        /// Fan-in bound of the owner subtrees.
        degree: u32,
    },
    /// Dissemination barrier (⌈log₂ p⌉ rounds of pairwise flags).
    Dissemination,
    /// Tournament barrier (statically paired winners per round).
    Tournament,
    /// MCS tree with the paper's dynamic victor/victim placement.
    Dynamic {
        /// Fan-in bound of the owner subtrees.
        degree: u32,
    },
    /// Adaptive-degree combining tree (spread-threshold stand-in
    /// policy; the analytic-model policy lives in the `combar` core
    /// crate and is exercised by its own test).
    Adaptive,
    /// Async epoch runtime: participants are parked wakers on sharded
    /// wait lists; release fans out as batched wakeups. The threaded
    /// matrix drives it through the blocking bridge; logical-scale
    /// coverage lives in [`crate::asyncb::conformance`].
    Async {
        /// Number of arrival shards.
        shards: u32,
    },
}

impl BarrierKind {
    /// The canonical matrix axis: one entry per family, plus extra
    /// degrees where shape changes the protocol (a degree-p combining
    /// tree collapses to a central barrier; degree 2 maximizes depth).
    pub fn all() -> Vec<BarrierKind> {
        vec![
            BarrierKind::Central,
            BarrierKind::Blocking,
            BarrierKind::CombiningTree { degree: 2 },
            BarrierKind::CombiningTree { degree: 8 },
            BarrierKind::McsTree { degree: 2 },
            BarrierKind::Dissemination,
            BarrierKind::Tournament,
            BarrierKind::Dynamic { degree: 2 },
            BarrierKind::Adaptive,
            BarrierKind::Async { shards: 4 },
        ]
    }

    /// Human-readable label used in assertion messages.
    pub fn label(&self) -> String {
        match self {
            BarrierKind::Central => "central".into(),
            BarrierKind::Blocking => "blocking".into(),
            BarrierKind::CombiningTree { degree } => format!("combining-tree(d={degree})"),
            BarrierKind::McsTree { degree } => format!("mcs-tree(d={degree})"),
            BarrierKind::Dissemination => "dissemination".into(),
            BarrierKind::Tournament => "tournament".into(),
            BarrierKind::Dynamic { degree } => format!("dynamic(d={degree})"),
            BarrierKind::Adaptive => "adaptive".into(),
            BarrierKind::Async { shards } => format!("async(s={shards})"),
        }
    }

    /// Whether this kind's waiters expose the fuzzy arrive/depart
    /// split ([`check_fuzzy_slack`] is a no-op for the rest).
    pub fn supports_fuzzy(&self) -> bool {
        matches!(
            self,
            BarrierKind::Central
                | BarrierKind::Blocking
                | BarrierKind::CombiningTree { .. }
                | BarrierKind::McsTree { .. }
                | BarrierKind::Dynamic { .. }
                | BarrierKind::Async { .. }
        )
    }

    /// Constructs a barrier of this kind for `p` threads, through the
    /// unified [`BarrierBuilder`] path.
    pub fn build(&self, p: u32) -> AnyBarrier {
        BarrierBuilder::new(*self, p).build()
    }
}

/// Contract 1 — lockstep: soaks the barrier under adversarial
/// staggering and asserts no thread ever runs more than one episode
/// ahead of another. Returns the harness report for further checks.
///
/// # Panics
///
/// Panics if the lockstep invariant is violated or the run wedges.
pub fn check_lockstep(kind: BarrierKind, p: u32, episodes: u32) -> TortureReport {
    let b = kind.build(p);
    let report = lockstep_torture(p, episodes, Stagger::Mixed, |tid| {
        let mut w = b.waiter(tid);
        move || w.wait_timeout(STEP)
    });
    assert_eq!(
        report.episodes,
        episodes,
        "{}: torture cut short",
        kind.label()
    );
    assert!(
        report.max_skew <= 1,
        "{}: lockstep skew {}",
        kind.label(),
        report.max_skew
    );
    report
}

/// Contract 2 — reuse and waiter churn: the same barrier object serves
/// ≥ 100 back-to-back episodes at maximal arrival rate, split into
/// *odd-length* phases with fresh waiters per phase so the churn
/// boundary lands on both parities of the internal sense/epoch
/// reversal (a waiter must resynchronize from barrier state, not
/// assume it was born at parity zero).
///
/// # Panics
///
/// Panics if any crossing fails or times out.
pub fn check_reuse_and_churn(kind: BarrierKind, p: u32) {
    let b = kind.build(p);
    // 5 phases × 21 episodes = 105 ≥ 100 total reuses.
    for phase in 0..5 {
        std::thread::scope(|s| {
            for tid in 0..p {
                let b = &b;
                s.spawn(move || {
                    let mut w = b.waiter(tid);
                    for e in 0..21u32 {
                        w.wait_timeout(STEP).unwrap_or_else(|err| {
                            panic!(
                                "{}: phase {phase} episode {e} tid {tid}: {err}",
                                kind.label()
                            )
                        });
                    }
                });
            }
        });
    }
}

/// Contract 3 — arrival/release ordering: a crossing may not return
/// until every participant has signalled the episode. Each thread
/// stamps a shared slot *before* stepping; after the step it must see
/// every peer's stamp at this episode or (at most) the next.
///
/// # Panics
///
/// Panics if any thread is released before a peer arrived.
pub fn check_arrival_release_ordering(kind: BarrierKind, p: u32) {
    let b = kind.build(p);
    let arrived: Vec<AtomicU32> = (0..p).map(|_| AtomicU32::new(0)).collect();
    std::thread::scope(|s| {
        for tid in 0..p {
            let b = &b;
            let arrived = &arrived;
            s.spawn(move || {
                let mut w = b.waiter(tid);
                for e in 0..CONFORMANCE_EPISODES {
                    arrived[tid as usize].store(e + 1, Ordering::Release);
                    w.wait_timeout(STEP).unwrap();
                    for (q, a) in arrived.iter().enumerate() {
                        let seen = a.load(Ordering::Acquire);
                        assert!(
                            seen == e + 1 || seen == e + 2,
                            "{}: released from episode {e} while peer {q} had \
                             only signalled {seen}",
                            kind.label()
                        );
                    }
                }
            });
        }
    });
}

/// Contract 4 — fuzzy slack: work done between `arrive` and `depart`
/// of episode `e` is complete before any thread departs episode
/// `e + 1`. Returns `false` (doing nothing) for kinds without the
/// split.
///
/// # Panics
///
/// Panics if a departure overtakes a peer's slack work.
pub fn check_fuzzy_slack(kind: BarrierKind, p: u32) -> bool {
    if !kind.supports_fuzzy() {
        return false;
    }
    const EPISODES: u32 = 100;
    let b = kind.build(p);
    let slack_units = AtomicU32::new(0);
    std::thread::scope(|s| {
        for tid in 0..p {
            let b = &b;
            let slack_units = &slack_units;
            s.spawn(move || {
                let mut any = b.waiter(tid);
                let w = any.as_fuzzy().expect("kind advertises fuzzy support");
                for e in 0..EPISODES {
                    w.arrive();
                    slack_units.fetch_add(1, Ordering::AcqRel);
                    w.depart();
                    // All arrivals for episode e happened; my own slack
                    // ran; at least p·e + my (e+1) units must exist.
                    let seen = slack_units.load(Ordering::Acquire);
                    assert!(
                        seen > e * p,
                        "{}: episode {e}: only {seen} slack units visible",
                        kind.label()
                    );
                }
            });
        }
    });
    assert_eq!(slack_units.load(Ordering::Relaxed), EPISODES * p);
    true
}

/// Contract 5 — bounded waiting through the erased path: a waiter whose
/// peers have not arrived observes [`BarrierError::Timeout`] *through
/// the `AnyWaiter` trait object*, the episode stays in flight (a
/// further wait resumes it rather than re-arriving), and the barrier
/// serves later episodes untouched. This is the contract the networked
/// epoch server's clients lean on: giving up on a bounded wait must
/// never corrupt the crossing.
///
/// # Panics
///
/// Panics if the lone waiter does not time out, or any subsequent
/// crossing fails.
pub fn check_wait_timeout(kind: BarrierKind, p: u32) {
    let b = kind.build(p);
    if p < 2 {
        // No peer to be late; the erased call must still complete.
        b.waiter(0).wait_timeout(STEP).unwrap();
        return;
    }
    let timed_out = AtomicU32::new(0);
    std::thread::scope(|s| {
        for tid in 0..p {
            let b = &b;
            let timed_out = &timed_out;
            s.spawn(move || {
                let mut w = b.waiter(tid);
                if tid == 0 {
                    // Alone at the barrier: the bounded wait gives up...
                    let r = w.wait_timeout(Duration::from_millis(10));
                    assert_eq!(
                        r,
                        Err(BarrierError::Timeout),
                        "{}: lone waiter must time out",
                        kind.label()
                    );
                    timed_out.store(1, Ordering::Release);
                    // ...and a later wait resumes the same episode.
                    w.wait_timeout(STEP)
                        .unwrap_or_else(|e| panic!("{}: resume: {e}", kind.label()));
                } else {
                    // Hold back until the timeout has provably fired.
                    while timed_out.load(Ordering::Acquire) == 0 {
                        std::hint::spin_loop();
                    }
                    w.wait_timeout(STEP)
                        .unwrap_or_else(|e| panic!("{}: late peer: {e}", kind.label()));
                }
                // The timeout must not have wounded the episode
                // machinery: further crossings stay clean.
                for e in 0..3 {
                    w.wait_timeout(STEP).unwrap_or_else(|err| {
                        panic!("{}: post-timeout episode {e}: {err}", kind.label())
                    });
                }
            });
        }
    });
}

/// Runs the full contract suite for one (kind, thread count) cell.
pub fn check_full_contract(kind: BarrierKind, p: u32) {
    check_lockstep(kind, p, CONFORMANCE_EPISODES);
    check_reuse_and_churn(kind, p);
    check_arrival_release_ordering(kind, p);
    check_fuzzy_slack(kind, p);
    check_wait_timeout(kind, p);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The axis covers every family and the erased dispatch works.
    #[test]
    fn matrix_axis_builds_and_steps() {
        for kind in BarrierKind::all() {
            let b = kind.build(1);
            let mut w = b.waiter(0);
            w.wait_timeout(STEP)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
            assert_eq!(
                kind.supports_fuzzy(),
                w.as_fuzzy().is_some(),
                "{}: fuzzy advertisement mismatch",
                kind.label()
            );
        }
    }

    /// One full cell, inside the crate, so `cargo test -p combar-rt`
    /// exercises the matrix machinery without the integration suite.
    #[test]
    fn full_contract_smoke() {
        check_full_contract(BarrierKind::Central, 3);
    }
}
