//! The central (single-counter) barrier.
//!
//! The simplest software barrier: one shared counter plus an epoch
//! flag. Its synchronization delay grows linearly in `p` under
//! simultaneous arrival — the baseline the paper's Section 1 starts
//! from — but it is *optimal* under extreme load imbalance (the last
//! processor pays a single update), which is exactly the paper's
//! 64-processor σ = 25·t_c result.
//!
//! # Fault model
//!
//! Besides the infallible spinning API, the barrier supports the
//! crate-wide degradation protocol: [`CentralWaiter::wait_timeout`]
//! bounds every wait, a waiter dropped mid-episode poisons the barrier
//! ([`BarrierError::Poisoned`]), and a participant that stops arriving
//! can be evicted ([`CentralBarrier::evict`]) so survivors keep
//! crossing — its arrivals are thereafter delivered by proxy at each
//! release, and it may later [`CentralWaiter::rejoin`].
//!
//! # Self-healing
//!
//! Eviction keeps the expected count: the dead thread's arrival is
//! proxied every episode forever. A *detach* ([`CentralBarrier::detach`]
//! or [`SelfHealing::fail`] from a supervisor) additionally shrinks the
//! expected count at the next episode boundary — the releaser's
//! quiescent window (after the counter resets, before the epoch bump)
//! is the one instant no arrival is in flight, so the new expected
//! count publishes atomically with the release. A detached thread
//! rejoins through [`CentralWaiter::try_rejoin`] /
//! [`CentralWaiter::rejoin_within`]; the grant lands at a boundary and
//! restores the full count.

use crate::error::BarrierError;
use crate::heal::{self, Change, Membership, RejoinStatus, SelfHealing};
use crate::pad::CachePadded;
use crate::roster::{Arrival, Roster};
use crate::spin::{wait_for_epoch_fallible, EpochWait};
use crate::sync::{AtomicU32, Ordering};
use combar_trace as trace;
use std::time::{Duration, Instant};

/// A sense-reversing central counter barrier for `p` threads.
#[derive(Debug)]
pub struct CentralBarrier {
    count: CachePadded<AtomicU32>,
    /// Arrivals that release an episode — the live count; rewritten
    /// only inside a releaser's quiescent window.
    expected: CachePadded<AtomicU32>,
    epoch: CachePadded<AtomicU32>,
    poison: CachePadded<AtomicU32>,
    roster: Roster,
    membership: Membership,
    next_id: AtomicU32,
    p: u32,
}

impl CentralBarrier {
    /// Creates a barrier for `p` threads.
    ///
    /// Prefer building through [`crate::BarrierBuilder`] when a
    /// trait-object ([`crate::Barrier`]) surface, supervision, or a
    /// trace sink is wanted; the direct constructor stays for
    /// statically-typed embedding.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: u32) -> Self {
        assert!(p > 0, "barrier needs at least one thread");
        Self {
            count: CachePadded::new(AtomicU32::new(0)),
            expected: CachePadded::new(AtomicU32::new(p)),
            epoch: CachePadded::new(AtomicU32::new(0)),
            poison: CachePadded::new(AtomicU32::new(0)),
            roster: Roster::new(p),
            membership: Membership::new(p),
            next_id: AtomicU32::new(0),
            p,
        }
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.p
    }

    /// Creates the per-thread handle. Each thread must use its own;
    /// participant ids are assigned round-robin in creation order.
    ///
    /// Waiters may be created at any quiescent point (no episode in
    /// flight): they inherit the barrier's current epoch, so barriers
    /// survive being reused across thread-team phases.
    pub fn waiter(&self) -> CentralWaiter<'_> {
        let tid = self.next_id.fetch_add(1, Ordering::Relaxed) % self.p;
        self.waiter_for(tid)
    }

    /// Creates the handle for an explicit participant id — useful when
    /// eviction decisions must name a specific thread.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn waiter_for(&self, tid: u32) -> CentralWaiter<'_> {
        assert!(tid < self.p, "thread id out of range");
        CentralWaiter {
            barrier: self,
            tid,
            epoch: self.epoch.load(Ordering::Acquire),
            pending: false,
            awaiting_attach: false,
        }
    }

    /// Whether a participant died mid-episode, wedging the barrier.
    pub fn is_poisoned(&self) -> bool {
        self.poison.load(Ordering::Acquire) != 0
    }

    /// Number of currently evicted participants.
    pub fn evicted_count(&self) -> u32 {
        self.roster.evicted_count()
    }

    /// Whether participant `tid` is currently evicted.
    pub fn is_evicted(&self, tid: u32) -> bool {
        self.roster.is_evicted(tid)
    }

    /// Evicts participant `tid` if it has not arrived for the episode
    /// in flight, delivering its arrival by proxy so survivors release.
    /// Each later release re-delivers its proxy, so the barrier keeps
    /// functioning with `p − evicted` live threads. Returns whether the
    /// eviction happened (`false`: already evicted, or it did arrive).
    pub fn evict(&self, tid: u32) -> bool {
        assert!(tid < self.p, "thread id out of range");
        if self.roster.evict(tid, &self.epoch) {
            if trace::enabled() {
                trace::emit(
                    self.epoch.load(Ordering::Relaxed),
                    tid,
                    trace::Kind::Evict(tid),
                );
            }
            if self.bump() {
                self.maintain();
            }
            true
        } else {
            false
        }
    }

    /// Evicts every participant that has not arrived for the in-flight
    /// episode; returns the evicted ids. The caller is inherently not
    /// among them (it has either arrived or not entered the episode,
    /// and evicting a thread that later shows up is safe — it gets
    /// [`BarrierError::Evicted`] and may rejoin).
    pub fn evict_stragglers(&self) -> Vec<u32> {
        self.stragglers()
            .into_iter()
            .filter(|&t| self.evict(t))
            .collect()
    }

    /// Participants that have not arrived for the in-flight episode.
    pub fn stragglers(&self) -> Vec<u32> {
        self.roster.stragglers(&self.epoch)
    }

    /// Number of participants the live shape currently counts.
    pub fn live_count(&self) -> u32 {
        self.membership.live_count()
    }

    /// Whether the live shape still counts `tid` (detaches flip this at
    /// an episode boundary, not at declaration time).
    pub fn is_live(&self, tid: u32) -> bool {
        self.membership.is_live(tid)
    }

    /// Number of expected-count reconfigurations applied so far.
    pub fn shape_epoch(&self) -> u32 {
        self.membership.shape_epoch()
    }

    /// Declares `tid` dead: evicts it if needed (delivering the
    /// in-flight proxy) and shrinks the expected count at the next
    /// episode boundary. Fails (returning `false`) when the thread has
    /// arrived for the in-flight episode — it is provably alive — or
    /// when it is the last live participant (a barrier with nobody
    /// left could never release again). Idempotent.
    pub fn detach(&self, tid: u32) -> bool {
        assert!(tid < self.p, "thread id out of range");
        if self.membership.is_live(tid) && self.membership.live_count() <= 1 {
            return false;
        }
        let _ = self.evict(tid);
        self.membership.request_detach(&self.roster, tid)
    }

    /// One arrival count; returns whether it released the episode.
    fn bump(&self) -> bool {
        let expected = self.expected.load(Ordering::Acquire);
        let prev = self.count.fetch_add(1, Ordering::AcqRel);
        debug_assert!(prev < expected, "more arrivals than the live count");
        if prev + 1 == expected {
            // Last arriver: reset for the next episode (the quiescent
            // window — no arrival in flight), fold membership changes,
            // then release.
            self.count.store(0, Ordering::Relaxed);
            self.apply_pending();
            self.epoch.fetch_add(1, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Folds queued membership changes into the expected count. Called
    /// only from the releaser's quiescent window.
    fn apply_pending(&self) {
        if !self.membership.has_pending() {
            return;
        }
        let changes = self.membership.collect(&self.roster);
        if changes.is_empty() {
            return;
        }
        self.expected
            .store(self.membership.live_count(), Ordering::Relaxed);
        // Grants last: the roster CAS publishes the store above to the
        // polling rejoiner (survivors get it from the epoch bump).
        for change in changes {
            match change {
                Change::Attach(tid) => self.membership.grant(&self.roster, tid),
                Change::Detach(tid) => {
                    debug_assert!(!self.membership.is_live(tid));
                }
            }
        }
    }

    /// Post-release proxy sweep for evicted participants. Detached
    /// slots are stamped but not counted — the expected count no longer
    /// includes them.
    fn maintain(&self) {
        self.roster.maintain(&self.epoch, |tid| {
            if !self.membership.is_live(tid) {
                return false;
            }
            if trace::enabled() {
                trace::emit(
                    self.epoch.load(Ordering::Relaxed),
                    tid,
                    trace::Kind::ProxyArrival(0),
                );
            }
            self.bump()
        });
    }
}

impl SelfHealing for CentralBarrier {
    fn threads(&self) -> u32 {
        CentralBarrier::threads(self)
    }
    fn stragglers(&self) -> Vec<u32> {
        CentralBarrier::stragglers(self)
    }
    fn fail(&self, tid: u32) -> bool {
        self.detach(tid)
    }
    fn is_poisoned(&self) -> bool {
        CentralBarrier::is_poisoned(self)
    }
}

/// Per-thread handle to a [`CentralBarrier`].
///
/// Dropping a waiter between `arrive` and a completed depart (e.g. a
/// panic unwinding through the slack section of a fuzzy episode)
/// poisons the barrier: peers receive [`BarrierError::Poisoned`]
/// instead of spinning forever.
#[derive(Debug)]
pub struct CentralWaiter<'a> {
    barrier: &'a CentralBarrier,
    tid: u32,
    epoch: u32,
    pending: bool,
    /// An attach request is outstanding; waiting for a releaser grant.
    awaiting_attach: bool,
}

impl CentralWaiter<'_> {
    /// Signals arrival (the fuzzy barrier's release phase). The caller
    /// may then run independent slack work before [`Self::depart`].
    ///
    /// # Panics
    ///
    /// Panics if called twice without a depart, if the barrier is
    /// poisoned, or if this participant has been evicted (use
    /// [`Self::try_arrive`] for the fallible form).
    pub fn arrive(&mut self) {
        assert!(!self.pending, "arrive called twice without depart");
        if let Err(e) = self.try_arrive() {
            panic!("barrier arrive failed: {e}");
        }
    }

    /// Fallible arrival: errors with [`BarrierError::Poisoned`] or
    /// [`BarrierError::Evicted`] instead of panicking.
    pub fn try_arrive(&mut self) -> Result<(), BarrierError> {
        assert!(!self.pending, "arrive called twice without depart");
        let b = self.barrier;
        if b.is_poisoned() {
            return Err(BarrierError::Poisoned);
        }
        let target = self.epoch.wrapping_add(1);
        match b.roster.try_arrive(self.tid, target) {
            Arrival::Evicted => Err(BarrierError::Evicted),
            Arrival::Claimed => {
                self.pending = true;
                trace::emit(self.epoch, self.tid, trace::Kind::Arrive);
                if b.bump() {
                    trace::emit(self.epoch, self.tid, trace::Kind::Win(0));
                    trace::emit(self.epoch, self.tid, trace::Kind::Release);
                    b.maintain();
                } else {
                    trace::emit(self.epoch, self.tid, trace::Kind::Lose(0));
                }
                Ok(())
            }
        }
    }

    /// Blocks until every thread of the current episode has arrived
    /// (the fuzzy barrier's enforce phase).
    ///
    /// # Panics
    ///
    /// Panics if the barrier becomes poisoned while waiting.
    pub fn depart(&mut self) {
        assert!(self.pending, "depart called without arrive");
        if let Err(e) = self.depart_deadline(None) {
            panic!("barrier depart failed: {e}");
        }
    }

    fn depart_deadline(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        assert!(self.pending, "depart called without arrive");
        let b = self.barrier;
        let target = self.epoch.wrapping_add(1);
        match wait_for_epoch_fallible(&b.epoch, target, &b.poison, deadline) {
            EpochWait::Released => {
                self.epoch = target;
                self.pending = false;
                Ok(())
            }
            EpochWait::TimedOut => Err(BarrierError::Timeout),
            EpochWait::Poisoned => Err(BarrierError::Poisoned),
        }
    }

    fn wait_deadline(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        if !self.pending {
            self.try_arrive()?;
        }
        self.depart_deadline(deadline)
    }

    /// A full barrier: `arrive` then `depart`.
    ///
    /// # Panics
    ///
    /// Panics if the barrier is poisoned or this participant evicted.
    pub fn wait(&mut self) {
        if let Err(e) = self.wait_deadline(None) {
            panic!("barrier wait failed: {e}");
        }
    }

    /// A full barrier bounded by `timeout`.
    ///
    /// On [`BarrierError::Timeout`] the arrival stays registered: call
    /// a wait method again to resume the same episode. A timed-out
    /// waiter must not simply be dropped — that poisons the barrier
    /// (the episode still counts its arrival); retry, or have a peer
    /// evict it.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
        self.wait_deadline(Some(Instant::now() + timeout))
    }

    /// Unbounded fallible full barrier: like [`Self::wait`] but
    /// returning poisoning/eviction as an error instead of panicking.
    /// Reads no clock, so schedules stay deterministic under the
    /// `combar-check` model checker.
    pub fn try_wait(&mut self) -> Result<(), BarrierError> {
        self.wait_deadline(None)
    }

    /// Barrier episodes this waiter has completed (its local copy of
    /// the barrier epoch). After [`Self::rejoin`], reflects the epoch
    /// the proxied pending episode belongs to minus one, so a revived
    /// participant can tell how many episodes its proxy already covered.
    pub fn episodes(&self) -> u32 {
        self.epoch
    }

    /// Unbounded fallible depart: like [`Self::depart`] but returning
    /// poisoning as an error instead of panicking. Reads no clock.
    pub fn try_depart(&mut self) -> Result<(), BarrierError> {
        self.depart_deadline(None)
    }

    /// One non-blocking rejoin step. Reads no clock, so rejoin loops
    /// stay deterministic under the `combar-check` model checker.
    ///
    /// * Merely evicted (count untouched) → re-admits immediately via
    ///   the fast roster path, returns [`RejoinStatus::Rejoined`].
    /// * Detached → files an attach request the next episode's releaser
    ///   grants inside its quiescent window, then returns
    ///   [`RejoinStatus::Pending`] until the grant lands.
    ///
    /// After `Rejoined` the waiter is mid-episode (its latest arrival
    /// was delivered by proxy): complete it with a wait call, which
    /// departs without re-arriving.
    pub fn try_rejoin(&mut self) -> Result<RejoinStatus, BarrierError> {
        let b = self.barrier;
        if b.is_poisoned() {
            return Err(BarrierError::Poisoned);
        }
        let status = heal::try_rejoin_step(
            &b.roster,
            &b.membership,
            self.tid,
            &mut self.awaiting_attach,
            &mut self.epoch,
            &mut self.pending,
        );
        if matches!(status, RejoinStatus::Rejoined) {
            trace::emit(self.epoch, self.tid, trace::Kind::Rejoin);
        }
        Ok(status)
    }

    /// Re-admission after eviction: drives [`Self::try_rejoin`] until it
    /// resolves, spin-then-yield between polls. On success the waiter is
    /// mid-episode (its latest arrival was delivered by proxy): complete
    /// it with a wait call, which departs without re-arriving. Returns
    /// `Ok(false)` if this participant was not evicted.
    ///
    /// An attach can only be granted by an episode boundary, so for a
    /// detached participant this blocks until the live participants
    /// complete an episode; if they may be idle, prefer
    /// [`Self::rejoin_within`].
    pub fn rejoin(&mut self) -> Result<bool, BarrierError> {
        let this = self;
        heal::drive_rejoin(move || this.try_rejoin())
    }

    /// [`Self::rejoin`] bounded by `timeout`, polling with jittered
    /// exponential backoff ([`crate::JitterBackoff`]) so simultaneous
    /// rejoiners desynchronize. Returns [`BarrierError::Timeout`] if no
    /// episode boundary granted the attach in time (the request stays
    /// filed; a later call resumes waiting for it).
    pub fn rejoin_within(&mut self, timeout: Duration) -> Result<bool, BarrierError> {
        let tid = self.tid;
        let this = self;
        heal::drive_rejoin_within(tid, timeout, move || this.try_rejoin())
    }

    /// This thread's participant id.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

impl Drop for CentralWaiter<'_> {
    fn drop(&mut self) {
        if self.pending {
            self.barrier.poison.store(1, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn single_thread_never_blocks() {
        let b = CentralBarrier::new(1);
        let mut w = b.waiter();
        for _ in 0..100 {
            w.wait();
        }
    }

    #[test]
    fn four_threads_stay_in_lockstep() {
        const P: usize = 4;
        const EPISODES: usize = 200;
        let barrier = CentralBarrier::new(P as u32);
        let phases: Vec<AtomicU32> = (0..P).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..P {
                let barrier = &barrier;
                let phases = &phases;
                s.spawn(move || {
                    let mut w = barrier.waiter();
                    for e in 0..EPISODES as u32 {
                        phases[tid].store(e + 1, Ordering::Release);
                        w.wait();
                        for q in phases {
                            let ph = q.load(Ordering::Acquire);
                            assert!(ph == e + 1 || ph == e + 2, "episode {e}: saw phase {ph}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn fuzzy_split_allows_work_between_phases() {
        const P: usize = 3;
        let barrier = CentralBarrier::new(P as u32);
        let acc = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..P {
                let barrier = &barrier;
                let acc = &acc;
                s.spawn(move || {
                    let mut w = barrier.waiter();
                    for _ in 0..50 {
                        w.arrive();
                        acc.fetch_add(1, Ordering::Relaxed); // slack work
                        w.depart();
                    }
                });
            }
        });
        assert_eq!(acc.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn eviction_lets_survivors_cross_and_rejoin_resumes() {
        // Single-threaded orchestration of the full degradation cycle.
        let b = CentralBarrier::new(2);
        let mut alive = b.waiter_for(0);
        let mut lost = b.waiter_for(1);

        // Episode 1: tid 1 never arrives; the survivor times out, then
        // evicts the straggler and completes.
        alive.try_arrive().unwrap();
        assert_eq!(
            alive.wait_timeout(Duration::from_millis(2)),
            Err(BarrierError::Timeout)
        );
        assert_eq!(b.evict_stragglers(), vec![1]);
        alive.wait_timeout(Duration::from_millis(100)).unwrap();

        // Survivor keeps crossing alone: proxies flow each release.
        for _ in 0..150 {
            alive.wait_timeout(Duration::from_millis(100)).unwrap();
        }
        assert_eq!(b.evicted_count(), 1);

        // The lost thread shows up late, learns of its eviction,
        // rejoins, and the pair is in lockstep again.
        assert_eq!(lost.try_arrive(), Err(BarrierError::Evicted));
        assert!(lost.rejoin().unwrap());
        assert_eq!(b.evicted_count(), 0);
        // The rejoined waiter resumes mid-episode (arrival proxied), so
        // its first wait merely departs; the pair then runs in lockstep.
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..20 {
                    alive.wait_timeout(Duration::from_millis(500)).unwrap();
                }
            });
            s.spawn(|| {
                for _ in 0..20 {
                    lost.wait_timeout(Duration::from_millis(500)).unwrap();
                }
            });
        });
    }

    #[test]
    fn detach_shrinks_expected_count_and_rejoin_restores() {
        let b = CentralBarrier::new(4);
        let mut ws: Vec<_> = (0..4).map(|t| b.waiter_for(t)).collect();
        let (w3, live) = ws.split_last_mut().unwrap();
        // Episode 1: thread 3 stalls; declare it dead (eviction proxy
        // releases the in-flight episode).
        for w in live.iter_mut() {
            w.try_arrive().unwrap();
        }
        assert!(b.detach(3));
        for w in live.iter_mut() {
            w.try_depart().unwrap();
        }
        assert_eq!(b.live_count(), 4, "detach applies only at a boundary");
        // Episode 2 still runs under the old count (3 covered by
        // proxy); its releaser folds the detach in.
        for w in live.iter_mut() {
            w.try_arrive().unwrap();
        }
        for w in live.iter_mut() {
            w.try_depart().unwrap();
        }
        assert_eq!(b.live_count(), 3);
        assert_eq!(b.shape_epoch(), 1);
        // Episode 3 needs no proxy: the count no longer includes 3.
        for w in live.iter_mut() {
            w.try_arrive().unwrap();
        }
        for w in live.iter_mut() {
            w.try_depart().unwrap();
        }
        // Rejoin parks until a boundary grants it.
        assert_eq!(w3.try_rejoin().unwrap(), RejoinStatus::Pending);
        for w in live.iter_mut() {
            w.try_arrive().unwrap();
        }
        for w in live.iter_mut() {
            w.try_depart().unwrap();
        }
        assert_eq!(w3.try_rejoin().unwrap(), RejoinStatus::Rejoined);
        assert_eq!(b.live_count(), 4);
        assert_eq!(b.shape_epoch(), 2);
        w3.try_depart().unwrap(); // resumed mid-episode, departs at once
        for w in ws.iter_mut() {
            w.try_arrive().unwrap();
        }
        for w in ws.iter_mut() {
            w.try_depart().unwrap();
        }
    }

    #[test]
    fn detach_refuses_last_live_participant() {
        let b = CentralBarrier::new(2);
        let mut w0 = b.waiter_for(0);
        assert!(b.detach(1));
        // The first boundary applies the detach; the second runs on
        // the shrunk count alone.
        w0.try_wait().unwrap();
        w0.try_wait().unwrap();
        assert_eq!(b.live_count(), 1);
        assert!(!b.detach(0), "last live participant is not declarable");
        assert!(!b.is_evicted(0));
        w0.try_wait().unwrap();
    }

    #[test]
    fn evicting_an_arrived_thread_is_refused() {
        let b = CentralBarrier::new(2);
        let mut w = b.waiter_for(0);
        w.try_arrive().unwrap();
        assert!(!b.evict(0), "arrived participant must not be evictable");
        assert!(b.evict_stragglers().contains(&1));
        w.wait_timeout(Duration::from_millis(100)).unwrap();
    }

    #[test]
    fn dropping_pending_waiter_poisons_peers() {
        let b = CentralBarrier::new(2);
        {
            let mut dying = b.waiter_for(0);
            dying.try_arrive().unwrap();
            // dropped here, mid-episode
        }
        assert!(b.is_poisoned());
        let mut peer = b.waiter_for(1);
        assert_eq!(peer.try_arrive(), Err(BarrierError::Poisoned));
    }

    #[test]
    fn clean_drop_does_not_poison() {
        let b = CentralBarrier::new(1);
        {
            let mut w = b.waiter();
            w.wait();
        }
        assert!(!b.is_poisoned());
    }

    #[test]
    #[should_panic(expected = "arrive called twice")]
    fn double_arrive_is_rejected() {
        let b = CentralBarrier::new(2);
        let mut w = b.waiter();
        w.arrive();
        w.arrive();
    }

    #[test]
    #[should_panic(expected = "depart called without arrive")]
    fn depart_without_arrive_is_rejected() {
        let b = CentralBarrier::new(2);
        let mut w = b.waiter();
        w.depart();
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = CentralBarrier::new(0);
    }
}
