//! The central (single-counter) barrier.
//!
//! The simplest software barrier: one shared counter plus an epoch
//! flag. Its synchronization delay grows linearly in `p` under
//! simultaneous arrival — the baseline the paper's Section 1 starts
//! from — but it is *optimal* under extreme load imbalance (the last
//! processor pays a single update), which is exactly the paper's
//! 64-processor σ = 25·t_c result.

use crate::pad::CachePadded;
use crate::spin::wait_for_epoch;
use std::sync::atomic::{AtomicU32, Ordering};

/// A sense-reversing central counter barrier for `p` threads.
#[derive(Debug)]
pub struct CentralBarrier {
    count: CachePadded<AtomicU32>,
    epoch: CachePadded<AtomicU32>,
    p: u32,
}

impl CentralBarrier {
    /// Creates a barrier for `p` threads.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: u32) -> Self {
        assert!(p > 0, "barrier needs at least one thread");
        Self {
            count: CachePadded::new(AtomicU32::new(0)),
            epoch: CachePadded::new(AtomicU32::new(0)),
            p,
        }
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.p
    }

    /// Creates the per-thread handle. Each thread must use its own.
    ///
    /// Waiters may be created at any quiescent point (no episode in
    /// flight): they inherit the barrier's current epoch, so barriers
    /// survive being reused across thread-team phases.
    pub fn waiter(&self) -> CentralWaiter<'_> {
        CentralWaiter {
            barrier: self,
            epoch: self.epoch.load(Ordering::Acquire),
            pending: false,
        }
    }
}

/// Per-thread handle to a [`CentralBarrier`].
#[derive(Debug)]
pub struct CentralWaiter<'a> {
    barrier: &'a CentralBarrier,
    epoch: u32,
    pending: bool,
}

impl CentralWaiter<'_> {
    /// Signals arrival (the fuzzy barrier's release phase). The caller
    /// may then run independent slack work before [`Self::depart`].
    pub fn arrive(&mut self) {
        assert!(!self.pending, "arrive called twice without depart");
        self.pending = true;
        let b = self.barrier;
        let prev = b.count.fetch_add(1, Ordering::AcqRel);
        debug_assert!(prev < b.p, "more threads than the barrier was built for");
        if prev + 1 == b.p {
            // Last arriver: reset for the next episode, then release.
            b.count.store(0, Ordering::Relaxed);
            b.epoch.fetch_add(1, Ordering::Release);
        }
    }

    /// Blocks until every thread of the current episode has arrived
    /// (the fuzzy barrier's enforce phase).
    pub fn depart(&mut self) {
        assert!(self.pending, "depart called without arrive");
        self.pending = false;
        self.epoch = self.epoch.wrapping_add(1);
        wait_for_epoch(&self.barrier.epoch, self.epoch);
    }

    /// A full barrier: `arrive` then `depart`.
    pub fn wait(&mut self) {
        self.arrive();
        self.depart();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn single_thread_never_blocks() {
        let b = CentralBarrier::new(1);
        let mut w = b.waiter();
        for _ in 0..100 {
            w.wait();
        }
    }

    #[test]
    fn four_threads_stay_in_lockstep() {
        const P: usize = 4;
        const EPISODES: usize = 200;
        let barrier = CentralBarrier::new(P as u32);
        let phases: Vec<AtomicU32> = (0..P).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..P {
                let barrier = &barrier;
                let phases = &phases;
                s.spawn(move || {
                    let mut w = barrier.waiter();
                    for e in 0..EPISODES as u32 {
                        phases[tid].store(e + 1, Ordering::Release);
                        w.wait();
                        for q in phases {
                            let ph = q.load(Ordering::Acquire);
                            assert!(
                                ph == e + 1 || ph == e + 2,
                                "episode {e}: saw phase {ph}"
                            );
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn fuzzy_split_allows_work_between_phases() {
        const P: usize = 3;
        let barrier = CentralBarrier::new(P as u32);
        let acc = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..P {
                let barrier = &barrier;
                let acc = &acc;
                s.spawn(move || {
                    let mut w = barrier.waiter();
                    for _ in 0..50 {
                        w.arrive();
                        acc.fetch_add(1, Ordering::Relaxed); // slack work
                        w.depart();
                    }
                });
            }
        });
        assert_eq!(acc.load(Ordering::Relaxed), 150);
    }

    #[test]
    #[should_panic(expected = "arrive called twice")]
    fn double_arrive_is_rejected() {
        let b = CentralBarrier::new(2);
        let mut w = b.waiter();
        w.arrive();
        w.arrive();
    }

    #[test]
    #[should_panic(expected = "depart called without arrive")]
    fn depart_without_arrive_is_rejected() {
        let b = CentralBarrier::new(2);
        let mut w = b.waiter();
        w.depart();
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = CentralBarrier::new(0);
    }
}
