//! A blocking (sleeping) central barrier.
//!
//! The spinning barriers in this crate assume roughly one thread per
//! core — the paper's setting. When the host is oversubscribed
//! (CI machines, laptops, or barrier counts far above the core count),
//! spinning burns the very cycles the awaited thread needs. This
//! variant parks waiters on a condition variable instead.
//!
//! Unlike `std::sync::Barrier`, it supports the fuzzy
//! [`arrive`](BlockingWaiter::arrive)/[`depart`](BlockingWaiter::depart)
//! split, so it slots into the same [`crate::FuzzyWaiter`] harnesses as
//! the spinning barriers.
//!
//! # Fault model
//!
//! The full surface: bounded waits via
//! [`BlockingWaiter::wait_timeout`] (built on `Condvar::wait_timeout`),
//! poisoning on mid-episode drops, and eviction with re-admission.
//! Because the mutex serialises everything, eviction needs no proxy
//! machinery at all: an evicted participant is simply excluded from the
//! release count, and a rejoiner participates again from the next
//! episode.

use crate::error::BarrierError;
use crate::fuzzy::FuzzyWaiter;
use combar_trace as trace;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct State {
    /// Which participants have arrived for the episode in flight.
    arrived: Vec<bool>,
    /// Which participants are currently evicted.
    evicted: Vec<bool>,
    generation: u64,
    poisoned: bool,
}

impl State {
    /// Releases the episode if every non-evicted participant arrived.
    /// Returns whether it did.
    fn release_if_complete(&mut self) -> bool {
        let complete = self
            .arrived
            .iter()
            .zip(&self.evicted)
            .all(|(&a, &e)| a || e);
        if complete {
            self.arrived.fill(false);
            self.generation += 1;
        }
        complete
    }
}

/// A sense-free blocking barrier for `p` threads.
#[derive(Debug)]
pub struct BlockingBarrier {
    state: Mutex<State>,
    cond: Condvar,
    next_id: AtomicU32,
    p: u32,
}

impl BlockingBarrier {
    /// Creates a barrier for `p` threads.
    ///
    /// Prefer building through [`crate::BarrierBuilder`] when a
    /// trait-object ([`crate::Barrier`]) surface, supervision, or a
    /// trace sink is wanted; the direct constructor stays for
    /// statically-typed embedding.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: u32) -> Self {
        assert!(p > 0, "barrier needs at least one thread");
        Self {
            state: Mutex::new(State {
                arrived: vec![false; p as usize],
                evicted: vec![false; p as usize],
                generation: 0,
                poisoned: false,
            }),
            cond: Condvar::new(),
            next_id: AtomicU32::new(0),
            p,
        }
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.p
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // The std mutex's own poisoning is folded into ours: a panic
        // while holding the lock also means a participant died.
        match self.state.lock() {
            Ok(g) => g,
            Err(e) => {
                let mut g = e.into_inner();
                g.poisoned = true;
                g
            }
        }
    }

    /// Creates the next per-thread handle (participant ids are assigned
    /// round-robin).
    ///
    /// Waiters may be created at any quiescent point; they inherit the
    /// barrier's current generation.
    pub fn waiter(&self) -> BlockingWaiter<'_> {
        let tid = self.next_id.fetch_add(1, Ordering::Relaxed) % self.p;
        self.waiter_for(tid)
    }

    /// Creates the per-thread handle for participant `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn waiter_for(&self, tid: u32) -> BlockingWaiter<'_> {
        assert!(tid < self.p, "thread id out of range");
        let generation = self.lock().generation;
        BlockingWaiter {
            barrier: self,
            tid,
            generation,
            pending: false,
        }
    }

    /// Whether a participant died mid-episode, wedging the barrier.
    pub fn is_poisoned(&self) -> bool {
        self.lock().poisoned
    }

    /// Number of currently evicted participants.
    pub fn evicted_count(&self) -> u32 {
        self.lock().evicted.iter().filter(|&&e| e).count() as u32
    }

    /// Whether participant `tid` is currently evicted.
    pub fn is_evicted(&self, tid: u32) -> bool {
        self.lock().evicted[tid as usize]
    }

    /// Participants that have not arrived for the in-flight episode.
    pub fn stragglers(&self) -> Vec<u32> {
        let st = self.lock();
        (0..self.p)
            .filter(|&t| !st.arrived[t as usize] && !st.evicted[t as usize])
            .collect()
    }

    /// Evicts participant `tid` if it has not arrived for the episode
    /// in flight; it is excluded from release counts until it rejoins.
    /// Returns whether the eviction happened.
    pub fn evict(&self, tid: u32) -> bool {
        assert!(tid < self.p, "thread id out of range");
        let mut st = self.lock();
        let t = tid as usize;
        if st.evicted[t] || st.arrived[t] {
            return false;
        }
        st.evicted[t] = true;
        if trace::enabled() {
            trace::emit(st.generation as u32, tid, trace::Kind::Evict(tid));
        }
        if st.release_if_complete() {
            self.cond.notify_all();
        }
        true
    }

    /// Evicts every current straggler; returns the evicted ids.
    pub fn evict_stragglers(&self) -> Vec<u32> {
        let mut st = self.lock();
        let evicted: Vec<u32> = (0..self.p)
            .filter(|&t| {
                let t = t as usize;
                !st.arrived[t] && !st.evicted[t]
            })
            .collect();
        for &t in &evicted {
            st.evicted[t as usize] = true;
        }
        if !evicted.is_empty() && st.release_if_complete() {
            self.cond.notify_all();
        }
        evicted
    }
}

/// Per-thread handle to a [`BlockingBarrier`].
///
/// Dropping a waiter between `arrive` and a completed depart poisons
/// the barrier: peers receive [`BarrierError::Poisoned`] instead of
/// parking forever.
#[derive(Debug)]
pub struct BlockingWaiter<'a> {
    barrier: &'a BlockingBarrier,
    tid: u32,
    generation: u64,
    pending: bool,
}

impl BlockingWaiter<'_> {
    /// Signals arrival; never blocks. The caller may run slack work
    /// before [`Self::depart`].
    ///
    /// # Panics
    ///
    /// Panics if called twice without a depart, if the barrier is
    /// poisoned, or if this participant has been evicted.
    pub fn arrive(&mut self) {
        assert!(!self.pending, "arrive called twice without depart");
        if let Err(e) = self.try_arrive() {
            panic!("barrier arrive failed: {e}");
        }
    }

    /// Fallible arrival: errors with [`BarrierError::Poisoned`] or
    /// [`BarrierError::Evicted`] instead of panicking.
    pub fn try_arrive(&mut self) -> Result<(), BarrierError> {
        assert!(!self.pending, "arrive called twice without depart");
        let b = self.barrier;
        let mut st = b.lock();
        if st.poisoned {
            return Err(BarrierError::Poisoned);
        }
        let t = self.tid as usize;
        if st.evicted[t] {
            return Err(BarrierError::Evicted);
        }
        assert!(
            !st.arrived[t],
            "duplicate arrival for one episode (aliased waiters?)"
        );
        st.arrived[t] = true;
        self.pending = true;
        let episode = self.generation as u32;
        trace::emit(episode, self.tid, trace::Kind::Arrive);
        if st.release_if_complete() {
            trace::emit(episode, self.tid, trace::Kind::Win(0));
            trace::emit(episode, self.tid, trace::Kind::Release);
            b.cond.notify_all();
        } else {
            trace::emit(episode, self.tid, trace::Kind::Lose(0));
        }
        Ok(())
    }

    /// Parks until every thread of the episode has arrived.
    ///
    /// # Panics
    ///
    /// Panics if the barrier becomes poisoned while parked.
    pub fn depart(&mut self) {
        assert!(self.pending, "depart called without arrive");
        if let Err(e) = self.depart_deadline(None) {
            panic!("barrier depart failed: {e}");
        }
    }

    fn depart_deadline(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        assert!(self.pending, "depart called without arrive");
        let b = self.barrier;
        let target = self.generation + 1;
        let mut st = b.lock();
        loop {
            if st.generation >= target {
                self.generation = target;
                self.pending = false;
                return Ok(());
            }
            if st.poisoned {
                return Err(BarrierError::Poisoned);
            }
            match deadline {
                None => st = b.cond.wait(st).unwrap_or_else(|e| e.into_inner()),
                Some(d) => {
                    let Some(remaining) = d.checked_duration_since(Instant::now()) else {
                        return Err(BarrierError::Timeout);
                    };
                    st = b
                        .cond
                        .wait_timeout(st, remaining)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
            }
        }
    }

    fn wait_deadline(&mut self, deadline: Option<Instant>) -> Result<(), BarrierError> {
        if !self.pending {
            self.try_arrive()?;
        }
        self.depart_deadline(deadline)
    }

    /// A full barrier: `arrive` then `depart`.
    ///
    /// # Panics
    ///
    /// Panics if the barrier is poisoned or this participant evicted.
    pub fn wait(&mut self) {
        if let Err(e) = self.wait_deadline(None) {
            panic!("barrier wait failed: {e}");
        }
    }

    /// A full barrier bounded by `timeout`.
    ///
    /// On [`BarrierError::Timeout`] the arrival stays registered: call
    /// a wait method again to resume the same episode rather than
    /// re-arriving. A timed-out waiter must not simply be dropped —
    /// that poisons the barrier; retry, or have a peer evict it.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<(), BarrierError> {
        self.wait_deadline(Some(Instant::now() + timeout))
    }

    /// Unbounded fallible full barrier: like [`Self::wait`] but
    /// returning poisoning/eviction as an error instead of panicking.
    /// Reads no clock.
    pub fn try_wait(&mut self) -> Result<(), BarrierError> {
        self.wait_deadline(None)
    }

    /// Unbounded fallible depart: like [`Self::depart`] but returning
    /// poisoning as an error instead of panicking. Reads no clock.
    pub fn try_depart(&mut self) -> Result<(), BarrierError> {
        self.depart_deadline(None)
    }

    /// Re-admission after eviction: this participant counts again from
    /// the *next* episode (the lock serialises everything, so no
    /// mid-episode proxy state needs recovering). Returns `Ok(false)`
    /// if this participant was not evicted.
    pub fn rejoin(&mut self) -> Result<bool, BarrierError> {
        let b = self.barrier;
        let mut st = b.lock();
        if st.poisoned {
            return Err(BarrierError::Poisoned);
        }
        let t = self.tid as usize;
        if !st.evicted[t] {
            return Ok(false);
        }
        st.evicted[t] = false;
        self.generation = st.generation;
        self.pending = false;
        trace::emit(self.generation as u32, self.tid, trace::Kind::Rejoin);
        Ok(true)
    }

    /// This thread's id.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

impl FuzzyWaiter for BlockingWaiter<'_> {
    fn arrive(&mut self) {
        BlockingWaiter::arrive(self)
    }
    fn depart(&mut self) {
        BlockingWaiter::depart(self)
    }
}

impl Drop for BlockingWaiter<'_> {
    fn drop(&mut self) {
        if self.pending {
            let mut st = self.barrier.lock();
            st.poisoned = true;
            self.barrier.cond.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{lockstep_torture, Stagger};

    #[test]
    fn lockstep_under_heavy_oversubscription() {
        // 16 threads on however-few cores: spinning would crawl; the
        // blocking barrier must stay correct and brisk.
        let b = BlockingBarrier::new(16);
        let report = lockstep_torture(16, 60, Stagger::Mixed, |_| {
            let mut w = b.waiter();
            move || w.wait_timeout(Duration::from_secs(10))
        });
        assert!(report.max_skew <= 1);
    }

    #[test]
    fn fuzzy_split_works() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let b = BlockingBarrier::new(3);
        let acc = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let b = &b;
                let acc = &acc;
                s.spawn(move || {
                    let mut w = b.waiter();
                    for _ in 0..40 {
                        w.arrive();
                        acc.fetch_add(1, Ordering::Relaxed);
                        w.depart();
                    }
                });
            }
        });
        assert_eq!(acc.load(Ordering::Relaxed), 120);
    }

    #[test]
    fn single_thread_never_blocks() {
        let b = BlockingBarrier::new(1);
        let mut w = b.waiter();
        for _ in 0..50 {
            w.wait();
        }
    }

    #[test]
    fn survives_waiter_churn() {
        let b = BlockingBarrier::new(4);
        for _ in 0..3 {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let b = &b;
                    s.spawn(move || {
                        let mut w = b.waiter();
                        for _ in 0..25 {
                            w.wait();
                        }
                    });
                }
            });
        }
    }

    #[test]
    fn timeout_then_eviction_releases_survivor() {
        let b = BlockingBarrier::new(2);
        let mut w0 = b.waiter_for(0);
        assert_eq!(
            w0.wait_timeout(Duration::from_millis(2)),
            Err(BarrierError::Timeout)
        );
        assert_eq!(b.evict_stragglers(), vec![1]);
        // Eviction completed the episode; the survivor resumes alone
        // for 100 further episodes.
        for _ in 0..100 {
            w0.wait_timeout(Duration::from_secs(2)).unwrap();
        }
        // Rejoin: participant 1 counts again from the next episode.
        let mut w1 = b.waiter_for(1);
        assert!(w1.rejoin().unwrap());
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..10 {
                    w1.wait_timeout(Duration::from_secs(2)).unwrap();
                }
            });
            for _ in 0..10 {
                w0.wait_timeout(Duration::from_secs(2)).unwrap();
            }
        });
    }

    #[test]
    fn dropping_pending_waiter_poisons_peers() {
        let b = BlockingBarrier::new(2);
        {
            let mut dying = b.waiter_for(0);
            dying.try_arrive().unwrap();
        }
        assert!(b.is_poisoned());
        let mut peer = b.waiter_for(1);
        assert_eq!(peer.try_arrive(), Err(BarrierError::Poisoned));
    }

    #[test]
    #[should_panic(expected = "arrive called twice")]
    fn double_arrive_rejected() {
        let b = BlockingBarrier::new(2);
        let mut w = b.waiter();
        w.arrive();
        w.arrive();
    }
}
