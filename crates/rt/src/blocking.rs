//! A blocking (sleeping) central barrier.
//!
//! The spinning barriers in this crate assume roughly one thread per
//! core — the paper's setting. When the host is oversubscribed
//! (CI machines, laptops, or barrier counts far above the core count),
//! spinning burns the very cycles the awaited thread needs. This
//! variant parks waiters on a condition variable instead.
//!
//! Unlike `std::sync::Barrier`, it supports the fuzzy
//! [`arrive`](BlockingWaiter::arrive)/[`depart`](BlockingWaiter::depart)
//! split, so it slots into the same [`crate::FuzzyWaiter`] harnesses as
//! the spinning barriers.

use crate::fuzzy::FuzzyWaiter;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct State {
    count: u32,
    generation: u64,
}

/// A sense-free blocking barrier for `p` threads.
#[derive(Debug)]
pub struct BlockingBarrier {
    state: Mutex<State>,
    cond: Condvar,
    p: u32,
}

impl BlockingBarrier {
    /// Creates a barrier for `p` threads.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: u32) -> Self {
        assert!(p > 0, "barrier needs at least one thread");
        Self { state: Mutex::new(State { count: 0, generation: 0 }), cond: Condvar::new(), p }
    }

    /// Number of participating threads.
    pub fn threads(&self) -> u32 {
        self.p
    }

    /// Creates the per-thread handle.
    ///
    /// Waiters may be created at any quiescent point; they inherit the
    /// barrier's current generation.
    pub fn waiter(&self) -> BlockingWaiter<'_> {
        let generation = self.state.lock().expect("no poisoning").generation;
        BlockingWaiter { barrier: self, generation, pending: false }
    }
}

/// Per-thread handle to a [`BlockingBarrier`].
#[derive(Debug)]
pub struct BlockingWaiter<'a> {
    barrier: &'a BlockingBarrier,
    generation: u64,
    pending: bool,
}

impl BlockingWaiter<'_> {
    /// Signals arrival; never blocks. The caller may run slack work
    /// before [`Self::depart`].
    pub fn arrive(&mut self) {
        assert!(!self.pending, "arrive called twice without depart");
        self.pending = true;
        let b = self.barrier;
        let mut st = b.state.lock().expect("no poisoning");
        st.count += 1;
        debug_assert!(st.count <= b.p, "more threads than the barrier was built for");
        if st.count == b.p {
            st.count = 0;
            st.generation += 1;
            b.cond.notify_all();
        }
    }

    /// Parks until every thread of the episode has arrived.
    pub fn depart(&mut self) {
        assert!(self.pending, "depart called without arrive");
        self.pending = false;
        let target = self.generation + 1;
        self.generation = target;
        let b = self.barrier;
        let mut st = b.state.lock().expect("no poisoning");
        while st.generation < target {
            st = b.cond.wait(st).expect("no poisoning");
        }
    }

    /// A full barrier: `arrive` then `depart`.
    pub fn wait(&mut self) {
        self.arrive();
        self.depart();
    }
}

impl FuzzyWaiter for BlockingWaiter<'_> {
    fn arrive(&mut self) {
        BlockingWaiter::arrive(self)
    }
    fn depart(&mut self) {
        BlockingWaiter::depart(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{lockstep_torture, Stagger};

    #[test]
    fn lockstep_under_heavy_oversubscription() {
        // 16 threads on however-few cores: spinning would crawl; the
        // blocking barrier must stay correct and brisk.
        let b = BlockingBarrier::new(16);
        let report = lockstep_torture(16, 60, Stagger::Mixed, |_| {
            let mut w = b.waiter();
            move || w.wait()
        });
        assert!(report.max_skew <= 1);
    }

    #[test]
    fn fuzzy_split_works() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let b = BlockingBarrier::new(3);
        let acc = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let b = &b;
                let acc = &acc;
                s.spawn(move || {
                    let mut w = b.waiter();
                    for _ in 0..40 {
                        w.arrive();
                        acc.fetch_add(1, Ordering::Relaxed);
                        w.depart();
                    }
                });
            }
        });
        assert_eq!(acc.load(Ordering::Relaxed), 120);
    }

    #[test]
    fn single_thread_never_blocks() {
        let b = BlockingBarrier::new(1);
        let mut w = b.waiter();
        for _ in 0..50 {
            w.wait();
        }
    }

    #[test]
    fn survives_waiter_churn() {
        let b = BlockingBarrier::new(4);
        for _ in 0..3 {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let b = &b;
                    s.spawn(move || {
                        let mut w = b.waiter();
                        for _ in 0..25 {
                            w.wait();
                        }
                    });
                }
            });
        }
    }

    #[test]
    #[should_panic(expected = "arrive called twice")]
    fn double_arrive_rejected() {
        let b = BlockingBarrier::new(2);
        let mut w = b.waiter();
        w.arrive();
        w.arrive();
    }
}
