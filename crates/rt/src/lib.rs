//! Threaded barrier runtime for the `combar` study.
//!
//! Real software barriers built on `std::sync::atomic` — the paper's
//! premise is that barriers made of *simple* hardware primitives
//! (fetch-and-increment under a lock; here, native atomics) can scale
//! to large machines when the tree degree matches the load imbalance
//! and slow processors are placed near the root:
//!
//! * [`CentralBarrier`] — one counter + sense-reversing epoch; the
//!   `O(p)` baseline that is nevertheless optimal under extreme
//!   imbalance — with [`BlockingBarrier`] as the parking (condvar)
//!   variant for oversubscribed hosts;
//! * [`TreeBarrier`] — static combining tree of any degree over any
//!   `combar-topo` topology (combining, MCS, ring);
//! * [`DynamicBarrier`] — the paper's dynamic placement barrier
//!   (Section 5.1): victor/victim swaps migrate slow threads to the
//!   root;
//! * [`DisseminationBarrier`] and [`TournamentBarrier`] — the classic
//!   `⌈log₂ p⌉`-round baselines from the literature the paper builds
//!   on;
//! * [`fuzzy`] — the arrive/depart split (Gupta's fuzzy barrier) every
//!   counter-tree waiter supports;
//! * [`AdaptiveBarrier`] — reconfigures its degree at run time from the
//!   measured arrival spread (the feasibility claim of the paper's
//!   conclusion), with the degree policy injected (the `combar` core
//!   crate supplies the analytic model as that policy);
//! * [`AsyncBarrier`] ([`asyncb`]) — the async epoch runtime: a
//!   participant is a parked waker on a sharded wait list, not an OS
//!   thread, so a handful of driver threads ([`asyncb::Executor`])
//!   multiplex millions of logical participants; arrivals combine
//!   through cache-padded shards into one root per epoch and release
//!   fans out as batched wakeups per shard.
//!
//! # Unified API
//!
//! All ten kinds implement the [`Barrier`]/[`Waiter`] trait pair and
//! are constructed through [`BarrierBuilder`], which folds the
//! per-kind constructor signatures, the self-healing supervisor, and
//! the trace sink into one surface; [`conformance::AnyBarrier`] is the
//! owning `Box<dyn Barrier>` newtype the conformance matrix and the
//! chaos experiments run through. The direct constructors remain for
//! statically-typed embedding.
//!
//! # Observability
//!
//! Every barrier emits structured `combar-trace` events (arrivals,
//! per-counter win/lose, combines, releases, proxy arrivals, swaps,
//! evictions, heals, rejoins) through per-thread lock-free sinks, and
//! the spin/yield/CAS hot spots feed cheap occurrence counters. With
//! no sink attached every site costs one relaxed flag test, and no
//! emission site adds a schedule point under the model checker, so
//! traced and checked runs see the same protocol. `combar-trace`'s
//! `critical_paths` folds a drained timeline into the measured
//! critical depth per episode — the observable the paper's static
//! `O(log p)` vs dynamic `O(1)` placement claim is about.
//!
//! [`harness`] packages the lockstep soak test used throughout the
//! repository, so downstream barrier implementations can be tortured
//! identically, and [`conformance`] turns the shared barrier contract
//! (lockstep, reuse, arrival/release ordering, fuzzy slack) into a
//! type-erased matrix every kind is checked against. All hot state is
//! cache-padded ([`CachePadded`]); waiting is spin-then-yield
//! ([`spin::Backoff`]) so the crate behaves on machines with fewer
//! cores than threads.
//!
//! # Model checking
//!
//! All atomics and scheduling hints go through the [`sync`] facade:
//! by default they resolve to `combar-check`'s shadowed atomics, so
//! the whole runtime can execute under that crate's deterministic
//! schedule-exploration checker (see `tests/model_check.rs`); outside
//! a checked run the shadow ops cost one thread-local flag test.
//! Build with `--cfg combar_sync_raw` to compile the facade straight
//! to `std::sync::atomic` instead. Checked fixtures must avoid wall
//! clocks, so the barriers expose clock-free fallible crossings
//! (`try_wait`/`try_depart`) alongside `wait_timeout`.
//!
//! # Fault model
//!
//! Every barrier additionally exposes a fallible surface
//! ([`BarrierError`]):
//!
//! * **bounded waits** — `wait_timeout(Duration)` alongside the
//!   infallible `wait()`; a timed-out arrival stays registered and the
//!   next wait call resumes the same episode;
//! * **poisoning** — a waiter dropped mid-episode (typically a panic
//!   unwinding) permanently poisons the barrier, turning a would-be
//!   deadlock into prompt [`BarrierError::Poisoned`] errors for peers;
//! * **graceful degradation** — the counter-tree barriers (central,
//!   tree, dynamic, blocking, adaptive) support *eviction*: a
//!   participant that stops arriving can be removed (`evict` /
//!   `evict_stragglers`) and its arrivals are thereafter delivered by
//!   proxy at each release, so survivors keep crossing. The
//!   [`TournamentBarrier`] supports eviction too, through *adoption*:
//!   losers replay a dead winner's whole signalling track, so the
//!   static pairwise schedule heals around the corpse. Only the
//!   dissemination barrier cannot recover — every thread is a
//!   structurally unique signaller in every round there;
//! * **self-healing** — eviction is the entry point of a full
//!   detect → reconfigure → rejoin loop ([`heal`]): a lease-based
//!   [`Supervisor`] turns heartbeat silence into `fail(tid)` calls, the
//!   next episode's releaser folds the membership change into the live
//!   shape inside its quiescent window (re-parenting orphaned subtrees,
//!   see `Topology::prune_shape`), and the corpse can later come back —
//!   `try_rejoin` (clock-free) / `rejoin` / `rejoin_within` (jittered
//!   exponential backoff, [`JitterBackoff`]) — restoring the fault-free
//!   shape at an episode boundary.
//!
//! [`harness::chaos_torture`] soaks any barrier under a seeded
//! `combar-chaos` fault plan, including participant deaths, and
//! [`harness::churn_torture`] drives scripted death *and* comeback
//! schedules through the whole self-healing loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod asyncb;
pub mod barrier;
pub mod blocking;
pub mod central;
pub mod conformance;
pub mod dissemination;
pub mod dynamic;
pub mod error;
pub mod fuzzy;
pub mod harness;
pub mod heal;
pub mod pad;
mod roster;
pub mod spin;
pub mod sync;
pub mod tournament;
pub mod tree;

pub use adaptive::{AdaptiveBarrier, AdaptiveWaiter, DegreePolicy};
pub use asyncb::{yield_now, AsyncBarrier, AsyncWaiter, Executor, Timer, WaitFuture};
pub use barrier::{Barrier, BarrierBuilder, Waiter};
pub use blocking::{BlockingBarrier, BlockingWaiter};
pub use central::{CentralBarrier, CentralWaiter};
pub use conformance::{AnyBarrier, AnyWaiter, BarrierKind};
pub use dissemination::{DisseminationBarrier, DisseminationWaiter};
pub use dynamic::{DynamicBarrier, DynamicWaiter};
pub use error::BarrierError;
pub use fuzzy::{fuzzy_episode, FuzzyTiming, FuzzyWaiter};
pub use harness::{
    chaos_torture, lockstep_torture, time_episodes, work_torture_on, ChaosReport, Stagger,
    TortureReport,
};
pub use heal::{JitterBackoff, RejoinStatus, SelfHealing, Supervisor, SupervisorConfig};
pub use pad::CachePadded;
pub use spin::{Deadline, EpochWait};
pub use tournament::{TournamentBarrier, TournamentWaiter};
pub use tree::{TreeBarrier, TreeWaiter};
