//! Busy-wait strategy.
//!
//! The paper's barriers busy-wait on shared flags. On a machine with
//! fewer cores than threads (including this repository's CI), pure
//! spinning livelocks the releaser off the CPU, so the waiter spins
//! briefly and then yields to the scheduler with exponential backoff —
//! the standard adaptive strategy.

use std::sync::atomic::{AtomicU32, Ordering};

/// Exponential spin-then-yield backoff.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Fresh backoff state.
    pub fn new() -> Self {
        Self { step: 0 }
    }

    /// One wait quantum: a handful of `spin_loop` hints while the wait
    /// is young, escalating to `yield_now` once it is clear the awaited
    /// thread is not about to act.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step < 6 {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }

    /// Resets to the spinning phase.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Whether the backoff has escalated to yielding.
    pub fn is_yielding(&self) -> bool {
        self.step >= 6
    }
}

/// Spins until `flag` (an epoch counter) reaches at least `target`,
/// with Acquire ordering on the successful read.
#[inline]
pub fn wait_for_epoch(flag: &AtomicU32, target: u32) {
    let mut backoff = Backoff::new();
    while flag.load(Ordering::Acquire).wrapping_sub(target) > u32::MAX / 2 {
        backoff.snooze();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn backoff_escalates_to_yielding() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..6 {
            b.snooze();
        }
        assert!(b.is_yielding());
        b.reset();
        assert!(!b.is_yielding());
    }

    #[test]
    fn wait_for_epoch_returns_when_flag_advances() {
        let flag = Arc::new(AtomicU32::new(0));
        let f2 = flag.clone();
        let h = std::thread::spawn(move || {
            for _ in 0..50 {
                std::thread::yield_now();
            }
            f2.store(3, Ordering::Release);
        });
        wait_for_epoch(&flag, 3);
        assert!(flag.load(Ordering::Relaxed) >= 3);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_epoch_handles_wraparound() {
        // target just past a wrapped counter: u32::MAX wraps to 0, 1 …
        let flag = AtomicU32::new(u32::MAX);
        // already-satisfied target (flag − target small) returns at once
        wait_for_epoch(&flag, u32::MAX);
        flag.store(2, Ordering::Release); // wrapped past target 0
        wait_for_epoch(&flag, 0);
        wait_for_epoch(&flag, 2);
    }
}
