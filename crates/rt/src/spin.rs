//! Busy-wait strategy.
//!
//! The paper's barriers busy-wait on shared flags. On a machine with
//! fewer cores than threads (including this repository's CI), pure
//! spinning livelocks the releaser off the CPU, so the waiter spins
//! briefly and then yields to the scheduler with exponential backoff —
//! the standard adaptive strategy.

use crate::sync::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// A point in time a wait must not outlive, or `None` for an unbounded
/// wait.
///
/// Every timed loop in the runtime — the fallible epoch waits, the
/// torture-harness watchdog, the supervisor's heartbeat grace windows,
/// the rejoin backoff — previously hand-rolled the same
/// `start = Instant::now()` arithmetic; this is the one shared form.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires.
    pub fn never() -> Self {
        Self { at: None }
    }

    /// A deadline at a fixed instant.
    pub fn at(at: Instant) -> Self {
        Self { at: Some(at) }
    }

    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Self {
            at: Instant::now().checked_add(timeout),
        }
    }

    /// Wraps an optional instant (the shape the `wait_*_deadline`
    /// public APIs take).
    pub fn from_instant(at: Option<Instant>) -> Self {
        Self { at }
    }

    /// The underlying instant, if bounded.
    pub fn instant(&self) -> Option<Instant> {
        self.at
    }

    /// Whether the deadline has passed. A `never` deadline never
    /// expires.
    ///
    /// Reads the OS clock (only when bounded); where many logical
    /// participants share one driver thread, prefer
    /// [`Deadline::expired_at`] with a single `Instant::now()` sampled
    /// per poll batch.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|d| Instant::now() >= d)
    }

    /// [`Deadline::expired`] against a caller-supplied `now` — the
    /// clock-injected form. A deadline is a per-wait value, not a
    /// per-OS-thread one: an async driver polling thousands of parked
    /// waits samples the clock once and checks each wait's own deadline
    /// against it.
    pub fn expired_at(&self, now: Instant) -> bool {
        self.at.is_some_and(|d| now >= d)
    }

    /// Time left before expiry; `None` for an unbounded deadline,
    /// `Some(ZERO)` once expired.
    ///
    /// Reads the OS clock (only when bounded); see
    /// [`Deadline::remaining_at`] for the clock-injected form.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// [`Deadline::remaining`] against a caller-supplied `now`.
    pub fn remaining_at(&self, now: Instant) -> Option<Duration> {
        self.at.map(|d| d.saturating_duration_since(now))
    }

    /// Restarts the window: `timeout` from now. Used by watchdog-style
    /// loops that re-arm on progress.
    pub fn rearm(&mut self, timeout: Duration) {
        *self = Self::after(timeout);
    }
}

/// Exponential spin-then-yield backoff, optionally bounded by a
/// deadline.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
    deadline: Deadline,
}

impl Backoff {
    /// Fresh backoff state with no deadline.
    pub fn new() -> Self {
        Self {
            step: 0,
            deadline: Deadline::never(),
        }
    }

    /// Fresh backoff state that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            step: 0,
            deadline: Deadline::at(deadline),
        }
    }

    /// The deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline.instant()
    }

    /// Whether the deadline (if any) has passed.
    pub fn expired(&self) -> bool {
        self.deadline.expired()
    }

    /// One wait quantum like [`Backoff::snooze`], then reports whether
    /// the deadline has passed. Always returns `false` when no deadline
    /// was set.
    #[inline]
    pub fn snooze_expired(&mut self) -> bool {
        self.snooze();
        self.expired()
    }

    /// One wait quantum: a handful of `spin_loop` hints while the wait
    /// is young, escalating to `yield_now` once it is clear the awaited
    /// thread is not about to act.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step < 6 {
            for _ in 0..(1u32 << self.step) {
                crate::sync::spin_hint();
            }
            combar_trace::count_spins(1u64 << self.step);
            self.step += 1;
        } else {
            crate::sync::yield_now();
            combar_trace::count_yield();
        }
    }

    /// Resets to the spinning phase.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Whether the backoff has escalated to yielding.
    pub fn is_yielding(&self) -> bool {
        self.step >= 6
    }
}

/// Spins until `flag` (an epoch counter) reaches at least `target`,
/// with Acquire ordering on the successful read.
#[inline]
pub fn wait_for_epoch(flag: &AtomicU32, target: u32) {
    let mut backoff = Backoff::new();
    while flag.load(Ordering::Acquire).wrapping_sub(target) > u32::MAX / 2 {
        backoff.snooze();
    }
}

/// How a fallible epoch wait ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochWait {
    /// The flag reached the target.
    Released,
    /// The deadline passed first.
    TimedOut,
    /// The poison flag became set first.
    Poisoned,
}

/// Fault-aware variant of [`wait_for_epoch`]: additionally watches a
/// poison flag (any non-zero value aborts the wait) and an optional
/// deadline. The release check runs first, so a wait whose target is
/// already met never reports a timeout or poisoning.
#[inline]
pub fn wait_for_epoch_fallible(
    flag: &AtomicU32,
    target: u32,
    poison: &AtomicU32,
    deadline: Option<Instant>,
) -> EpochWait {
    let mut backoff = match deadline {
        Some(d) => Backoff::with_deadline(d),
        None => Backoff::new(),
    };
    loop {
        if flag.load(Ordering::Acquire).wrapping_sub(target) <= u32::MAX / 2 {
            return EpochWait::Released;
        }
        if poison.load(Ordering::Acquire) != 0 {
            return EpochWait::Poisoned;
        }
        if backoff.expired() {
            return EpochWait::TimedOut;
        }
        backoff.snooze();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backoff_escalates_to_yielding() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..6 {
            b.snooze();
        }
        assert!(b.is_yielding());
        b.reset();
        assert!(!b.is_yielding());
    }

    #[test]
    fn wait_for_epoch_returns_when_flag_advances() {
        let flag = Arc::new(AtomicU32::new(0));
        let f2 = flag.clone();
        let h = std::thread::spawn(move || {
            for _ in 0..50 {
                std::thread::yield_now();
            }
            f2.store(3, Ordering::Release);
        });
        wait_for_epoch(&flag, 3);
        assert!(flag.load(Ordering::Relaxed) >= 3);
        h.join().unwrap();
    }

    #[test]
    fn fallible_wait_reports_timeout_and_poison() {
        use std::time::Duration;
        let flag = AtomicU32::new(0);
        let poison = AtomicU32::new(0);
        // Deadline already passed → timeout, promptly.
        let deadline = Instant::now();
        assert_eq!(
            wait_for_epoch_fallible(&flag, 1, &poison, Some(deadline)),
            EpochWait::TimedOut
        );
        // Released target wins even with an expired deadline.
        flag.store(1, Ordering::Release);
        assert_eq!(
            wait_for_epoch_fallible(&flag, 1, &poison, Some(deadline)),
            EpochWait::Released
        );
        // Poison wins over an unmet target.
        poison.store(1, Ordering::Release);
        assert_eq!(
            wait_for_epoch_fallible(&flag, 2, &poison, None),
            EpochWait::Poisoned
        );
        // Short real deadline actually elapses.
        poison.store(0, Ordering::Release);
        let t0 = Instant::now();
        let deadline = t0 + Duration::from_millis(5);
        assert_eq!(
            wait_for_epoch_fallible(&flag, 2, &poison, Some(deadline)),
            EpochWait::TimedOut
        );
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn backoff_deadline_expiry() {
        let mut b = Backoff::new();
        assert!(b.deadline().is_none());
        assert!(!b.expired());
        assert!(!b.snooze_expired());
        let mut b = Backoff::with_deadline(Instant::now());
        assert!(b.snooze_expired());
    }

    #[test]
    fn deadline_expiry_and_rearm() {
        use std::time::Duration;
        let never = Deadline::never();
        assert!(!never.expired());
        assert_eq!(never.remaining(), None);
        let past = Deadline::at(Instant::now());
        assert!(past.expired());
        assert_eq!(past.remaining(), Some(Duration::ZERO));
        let mut d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
        d.rearm(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(Deadline::from_instant(None), Deadline::never());
    }

    #[test]
    fn deadline_clock_injection_matches_sampled_now() {
        use std::time::Duration;
        let now = Instant::now();
        let d = Deadline::at(now + Duration::from_secs(5));
        assert!(!d.expired_at(now));
        assert!(d.expired_at(now + Duration::from_secs(5)));
        assert!(d.expired_at(now + Duration::from_secs(6)));
        assert_eq!(d.remaining_at(now), Some(Duration::from_secs(5)));
        assert_eq!(
            d.remaining_at(now + Duration::from_secs(7)),
            Some(Duration::ZERO)
        );
        let never = Deadline::never();
        assert!(!never.expired_at(now + Duration::from_secs(3600)));
        assert_eq!(never.remaining_at(now), None);
    }

    #[test]
    fn wait_for_epoch_handles_wraparound() {
        // target just past a wrapped counter: u32::MAX wraps to 0, 1 …
        let flag = AtomicU32::new(u32::MAX);
        // already-satisfied target (flag − target small) returns at once
        wait_for_epoch(&flag, u32::MAX);
        flag.store(2, Ordering::Release); // wrapped past target 0
        wait_for_epoch(&flag, 0);
        wait_for_epoch(&flag, 2);
    }
}
