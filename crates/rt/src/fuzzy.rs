//! Fuzzy barrier interface (Gupta, 1989).
//!
//! A fuzzy barrier splits synchronization into a **release** phase
//! (signal arrival) and an **enforce** phase (block), letting the
//! program execute *independent* operations — slack — in between. The
//! paper shows slack is what makes dynamic placement work: it preserves
//! arrival order across iterations, making the slow processor
//! predictable.
//!
//! Every counter-tree waiter in this crate already exposes
//! `arrive`/`depart`; this module unifies them behind a trait and adds
//! a convenience wrapper that times the phases.

use crate::central::CentralWaiter;
use crate::dynamic::DynamicWaiter;
use crate::tree::TreeWaiter;
use std::time::{Duration, Instant};

/// A barrier participant that supports the fuzzy split.
pub trait FuzzyWaiter {
    /// Signal arrival (the release phase). Independent work may follow.
    fn arrive(&mut self);

    /// Block until all threads of the episode have arrived (the
    /// enforce phase).
    fn depart(&mut self);

    /// A complete barrier: arrive, then depart, with no slack.
    fn wait(&mut self) {
        self.arrive();
        self.depart();
    }
}

impl FuzzyWaiter for CentralWaiter<'_> {
    fn arrive(&mut self) {
        CentralWaiter::arrive(self)
    }
    fn depart(&mut self) {
        CentralWaiter::depart(self)
    }
}

impl FuzzyWaiter for TreeWaiter<'_> {
    fn arrive(&mut self) {
        TreeWaiter::arrive(self)
    }
    fn depart(&mut self) {
        TreeWaiter::depart(self)
    }
}

impl FuzzyWaiter for DynamicWaiter<'_> {
    fn arrive(&mut self) {
        DynamicWaiter::arrive(self)
    }
    fn depart(&mut self) {
        DynamicWaiter::depart(self)
    }
}

/// Statistics of one fuzzy episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzyTiming {
    /// Time spent in the arrive (signalling) call.
    pub signal: Duration,
    /// Time spent executing the slack closure.
    pub slack: Duration,
    /// Time spent blocked at the enforce point.
    pub idle: Duration,
}

/// Runs one fuzzy episode: signal, execute `slack_work`, then enforce;
/// returns where the time went. With enough slack, `idle` approaches
/// zero — Gupta's observation, and the regime where the paper's
/// dynamic placement pays off.
pub fn fuzzy_episode<W: FuzzyWaiter, F: FnOnce()>(waiter: &mut W, slack_work: F) -> FuzzyTiming {
    let t0 = Instant::now();
    waiter.arrive();
    let t1 = Instant::now();
    slack_work();
    let t2 = Instant::now();
    waiter.depart();
    let t3 = Instant::now();
    FuzzyTiming {
        signal: t1 - t0,
        slack: t2 - t1,
        idle: t3 - t2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::central::CentralBarrier;
    use crate::dynamic::DynamicBarrier;
    use crate::tree::TreeBarrier;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Exercise all three waiter kinds through the trait.
    #[test]
    fn trait_object_uniformity() {
        fn run_generic<W: FuzzyWaiter>(w: &mut W, n: u32) {
            for _ in 0..n {
                w.wait();
            }
        }
        let c = CentralBarrier::new(1);
        run_generic(&mut c.waiter(), 5);
        let t = TreeBarrier::combining(1, 4);
        run_generic(&mut t.waiter(0), 5);
        let d = DynamicBarrier::mcs(1, 4);
        run_generic(&mut d.waiter(0), 5);
    }

    #[test]
    fn fuzzy_episode_accounts_time() {
        let b = CentralBarrier::new(2);
        let done = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let b = &b;
                let done = &done;
                s.spawn(move || {
                    let mut w = b.waiter();
                    let t = fuzzy_episode(&mut w, || {
                        // measurable slack work
                        let mut acc = 0u64;
                        for i in 0..50_000u64 {
                            acc = acc.wrapping_add(i * i);
                        }
                        done.fetch_add(acc | 1, Ordering::Relaxed);
                    });
                    assert!(t.slack > Duration::ZERO);
                });
            }
        });
        assert_ne!(done.load(Ordering::Relaxed), 0);
    }

    /// The enforce point waits for every *arrival* (signal) — but not
    /// for slack work, which is independent by construction. Verify the
    /// arrival ordering half of that contract: after `depart`, every
    /// thread has signalled the current episode.
    #[test]
    fn enforce_waits_for_all_arrivals() {
        const P: usize = 3;
        let b = TreeBarrier::combining(P as u32, 2);
        let arrived = [const { AtomicU64::new(0) }; P];
        std::thread::scope(|s| {
            for tid in 0..P {
                let b = &b;
                let arrived = &arrived;
                s.spawn(move || {
                    let mut w = b.waiter(tid as u32);
                    for e in 0..40u64 {
                        arrived[tid].store(e + 1, Ordering::Release);
                        w.arrive();
                        w.depart();
                        for a in arrived {
                            let seen = a.load(Ordering::Acquire);
                            assert!(
                                seen == e + 1 || seen == e + 2,
                                "episode {e}: arrival count {seen}"
                            );
                        }
                    }
                });
            }
        });
    }
}
