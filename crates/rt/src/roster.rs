//! Participant roster for the graceful-degradation (eviction) protocol
//! of the counter-tree barriers.
//!
//! Each participant owns one packed `AtomicU64` slot:
//! `state << 32 | last`, where `state` is Active/Evicted/Parked and
//! `last` is the epoch-tagged target of its most recent arrival (own
//! or proxied).
//! Every transition — arrival, eviction, proxy delivery, re-admission —
//! is a single CAS on that slot, which makes the races between a slow
//! arriver and its evictor, between two evictors, and between a
//! maintainer and a rejoiner all linearizable:
//!
//! * **arrive vs evict**: both CAS from `(Active, last)`; exactly one
//!   wins, so the episode receives exactly one count for the thread
//!   (its own or the evictor's proxy), never zero or two.
//! * **proxy vs proxy**: a proxy for target `T` is the CAS
//!   `(Evicted, last≠T) → (Evicted, T)`; double delivery is impossible.
//! * **rejoin vs proxy**: the rejoiner CASes `(Evicted, last) →
//!   (Active, last)` and resumes as "arrived for `last`, pending
//!   depart", since `last` is exactly the episode its proxy covered.
//! * **detach vs rejoin**: a detacher parks the slot
//!   (`Evicted → Parked`) before scheduling the shape change; parking
//!   and the fast rejoin CAS cannot both win, so a participant is
//!   never simultaneously roster-active and shape-detached. A parked
//!   participant re-enters only via the releaser's boundary
//!   [`Roster::admit`].
//!
//! The invariant that makes stale maintainers harmless: episode `X`
//! cannot release until every evicted slot carries `last ≥ X`, so a
//! maintainer holding an outdated target always fails its CAS or skips.
//!
//! The rejoin-vs-maintain race (a rejoiner's `Evicted → Active` CAS
//! interleaved with a maintainer's proxy CAS on the same slot) is
//! explored under the deterministic scheduler in
//! `tests/model_check.rs::exhaustive_evict_rejoin_converges`: both CAS
//! orders occur across the schedule space and every interleaving
//! converges with exactly one count per thread per episode.

use crate::pad::CachePadded;
use crate::sync::{AtomicU32, AtomicU64, Ordering};

const ACTIVE: u32 = 0;
const EVICTED: u32 = 1;
/// Evicted *and* scheduled for (or already subject to) a membership
/// detach: the fast `rejoin` path is closed, and re-admission happens
/// only through the releaser's boundary reconfiguration
/// ([`Roster::admit`]). Parking linearizes the detach-vs-rejoin race on
/// the slot itself: a rejoiner's `Evicted → Active` CAS and a
/// detacher's `Evicted → Parked` CAS cannot both succeed.
const PARKED: u32 = 2;

fn pack(state: u32, last: u32) -> u64 {
    ((state as u64) << 32) | last as u64
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Outcome of [`Roster::try_arrive`].
pub(crate) enum Arrival {
    /// The slot was claimed; the caller must signal the barrier.
    Claimed,
    /// The participant is evicted and must rejoin instead.
    Evicted,
}

/// Per-participant eviction state for one barrier.
#[derive(Debug)]
pub(crate) struct Roster {
    slots: Vec<CachePadded<AtomicU64>>,
    evicted: AtomicU32,
}

impl Roster {
    pub(crate) fn new(p: u32) -> Self {
        Self {
            slots: (0..p)
                .map(|_| CachePadded::new(AtomicU64::new(pack(ACTIVE, 0))))
                .collect(),
            evicted: AtomicU32::new(0),
        }
    }

    /// Number of currently evicted participants. A single relaxed-ish
    /// load, cheap enough for every release path.
    pub(crate) fn evicted_count(&self) -> u32 {
        self.evicted.load(Ordering::Acquire)
    }

    pub(crate) fn is_evicted(&self, tid: u32) -> bool {
        unpack(self.slots[tid as usize].load(Ordering::Acquire)).0 != ACTIVE
    }

    pub(crate) fn is_parked(&self, tid: u32) -> bool {
        unpack(self.slots[tid as usize].load(Ordering::Acquire)).0 == PARKED
    }

    /// The slot's epoch tag: the target of the participant's most
    /// recent (own or proxied) arrival. A freshly admitted participant
    /// reads this to resume as "arrived for `last`, pending depart".
    pub(crate) fn last_of(&self, tid: u32) -> u32 {
        unpack(self.slots[tid as usize].load(Ordering::Acquire)).1
    }

    /// Closes the fast rejoin path for an evicted participant, ahead of
    /// a membership detach at the next episode boundary. Fails if the
    /// participant is active (it came back) or already parked.
    pub(crate) fn park(&self, tid: u32) -> bool {
        let slot = &self.slots[tid as usize];
        loop {
            let s = slot.load(Ordering::Acquire);
            let (state, last) = unpack(s);
            if state != EVICTED {
                return state == PARKED;
            }
            if slot
                .compare_exchange(s, pack(PARKED, last), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Re-admits a parked participant; the releaser-side half of the
    /// attach protocol, called only inside the boundary reconfiguration
    /// window. The slot's `last` tag is necessarily the episode being
    /// released (maintenance stamps every non-active slot each release),
    /// so the admitted participant resumes as "arrived, pending depart"
    /// exactly like a fast-path rejoiner.
    pub(crate) fn admit(&self, tid: u32) -> bool {
        let slot = &self.slots[tid as usize];
        loop {
            let s = slot.load(Ordering::Acquire);
            let (state, last) = unpack(s);
            if state != PARKED {
                return false;
            }
            if slot
                .compare_exchange(s, pack(ACTIVE, last), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.evicted.fetch_sub(1, Ordering::AcqRel);
                return true;
            }
        }
    }

    /// Claims this participant's arrival for `target`.
    pub(crate) fn try_arrive(&self, tid: u32, target: u32) -> Arrival {
        let slot = &self.slots[tid as usize];
        loop {
            let s = slot.load(Ordering::Acquire);
            let (state, last) = unpack(s);
            if state != ACTIVE {
                return Arrival::Evicted;
            }
            assert!(
                last != target,
                "duplicate arrival for one episode (aliased waiters?)"
            );
            if slot
                .compare_exchange(s, pack(ACTIVE, target), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Arrival::Claimed;
            }
        }
    }

    /// Evicts `tid` if (and only if) it has not arrived for the episode
    /// in flight. On success the slot is already tagged with that
    /// episode's target and the caller **must** deliver the proxy
    /// signal for it exactly once.
    ///
    /// `epoch` is re-read on every CAS retry: a successful CAS proves
    /// the slot did not change since the target was computed, and the
    /// in-flight episode cannot release without this slot changing, so
    /// the target is never stale at the linearization point.
    pub(crate) fn evict(&self, tid: u32, epoch: &AtomicU32) -> bool {
        let slot = &self.slots[tid as usize];
        loop {
            let target = epoch.load(Ordering::Acquire).wrapping_add(1);
            let s = slot.load(Ordering::Acquire);
            let (state, last) = unpack(s);
            if state != ACTIVE || last == target {
                return false; // already evicted, or it did arrive
            }
            if slot
                .compare_exchange(
                    s,
                    pack(EVICTED, target),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.evicted.fetch_add(1, Ordering::AcqRel);
                return true;
            }
        }
    }

    /// Participants that have not arrived for the in-flight episode
    /// (candidates for [`Roster::evict`]).
    pub(crate) fn stragglers(&self, epoch: &AtomicU32) -> Vec<u32> {
        let target = epoch.load(Ordering::Acquire).wrapping_add(1);
        (0..self.slots.len() as u32)
            .filter(|&t| {
                let (state, last) = unpack(self.slots[t as usize].load(Ordering::Acquire));
                state == ACTIVE && last != target
            })
            .collect()
    }

    /// Re-admits `tid`. Returns the epoch its latest proxy covered —
    /// the rejoined waiter must resume as "arrived for that episode,
    /// pending depart" — or `None` if the participant was not evicted.
    pub(crate) fn rejoin(&self, tid: u32) -> Option<u32> {
        let slot = &self.slots[tid as usize];
        loop {
            let s = slot.load(Ordering::Acquire);
            let (state, last) = unpack(s);
            if state != EVICTED {
                return None;
            }
            if slot
                .compare_exchange(s, pack(ACTIVE, last), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.evicted.fetch_sub(1, Ordering::AcqRel);
                return Some(last);
            }
        }
    }

    /// Post-release maintenance: deliver proxy arrivals for every
    /// evicted (or parked) participant for the next episode, looping
    /// while those proxies themselves complete episodes. Called by
    /// whoever bumps the barrier's epoch, whenever
    /// `evicted_count() > 0`.
    ///
    /// `signal(tid)` must perform the barrier's arrival walk for `tid`
    /// — or, for a participant whose detach has already taken effect
    /// (the live shape no longer counts it), do nothing — and report
    /// whether it released the episode. The stamp itself still happens
    /// for detached slots: it keeps `last` equal to the in-flight
    /// target, which the boundary [`Roster::admit`] relies on.
    pub(crate) fn maintain<F: FnMut(u32) -> bool>(&self, epoch: &AtomicU32, mut signal: F) {
        loop {
            if self.evicted.load(Ordering::Acquire) == 0 {
                return;
            }
            let target = epoch.load(Ordering::Acquire).wrapping_add(1);
            let mut released = false;
            for tid in 0..self.slots.len() as u32 {
                let slot = &self.slots[tid as usize];
                loop {
                    let s = slot.load(Ordering::Acquire);
                    let (state, last) = unpack(s);
                    if state == ACTIVE || last == target {
                        break;
                    }
                    if slot
                        .compare_exchange(
                            s,
                            pack(state, target),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        if signal(tid) {
                            released = true;
                        }
                        break;
                    }
                }
            }
            if !released {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrive_then_evict_loses() {
        let r = Roster::new(2);
        let epoch = AtomicU32::new(0);
        assert!(matches!(r.try_arrive(0, 1), Arrival::Claimed));
        assert!(!r.evict(0, &epoch), "arrived participant is not evictable");
        assert!(r.evict(1, &epoch));
        assert!(r.is_evicted(1));
        assert!(matches!(r.try_arrive(1, 1), Arrival::Evicted));
        assert_eq!(r.evicted_count(), 1);
    }

    #[test]
    fn rejoin_restores_active_state() {
        let r = Roster::new(1);
        let epoch = AtomicU32::new(4);
        assert!(r.evict(0, &epoch));
        assert_eq!(
            r.rejoin(0),
            Some(5),
            "proxy target is the in-flight episode"
        );
        assert_eq!(r.rejoin(0), None, "double rejoin is a no-op");
        assert_eq!(r.evicted_count(), 0);
        assert!(!r.is_evicted(0));
    }

    #[test]
    fn stragglers_excludes_arrived_and_evicted() {
        let r = Roster::new(3);
        let epoch = AtomicU32::new(0);
        assert!(matches!(r.try_arrive(0, 1), Arrival::Claimed));
        assert!(r.evict(2, &epoch));
        assert_eq!(r.stragglers(&epoch), vec![1]);
    }

    #[test]
    fn maintain_delivers_one_proxy_per_target() {
        let r = Roster::new(2);
        let epoch = AtomicU32::new(0);
        assert!(r.evict(1, &epoch)); // tags slot with target 1
        let mut calls = Vec::new();
        // Episode 1 not yet released: proxy for 1 already delivered by
        // the evictor, so maintain has nothing to do.
        r.maintain(&epoch, |t| {
            calls.push(t);
            false
        });
        assert!(calls.is_empty());
        // Release episode 1: maintain now delivers the proxy for 2.
        epoch.store(1, Ordering::Release);
        r.maintain(&epoch, |t| {
            calls.push(t);
            false
        });
        assert_eq!(calls, vec![1]);
    }

    #[test]
    fn park_closes_fast_rejoin_and_admit_reopens() {
        let r = Roster::new(2);
        let epoch = AtomicU32::new(3);
        assert!(!r.park(0), "active participant cannot be parked");
        assert!(r.evict(0, &epoch));
        assert!(r.park(0));
        assert!(r.park(0), "parking is idempotent");
        assert!(r.is_parked(0));
        assert!(r.is_evicted(0), "parked counts as evicted");
        assert_eq!(r.rejoin(0), None, "fast rejoin path is closed");
        assert_eq!(r.evicted_count(), 1);
        assert!(matches!(r.try_arrive(0, 4), Arrival::Evicted));
        assert!(r.admit(0));
        assert!(!r.admit(0), "double admit is a no-op");
        assert!(!r.is_evicted(0));
        assert_eq!(r.evicted_count(), 0);
    }

    #[test]
    fn maintain_stamps_parked_slots() {
        let r = Roster::new(1);
        let epoch = AtomicU32::new(0);
        assert!(r.evict(0, &epoch)); // tagged for target 1
        assert!(r.park(0));
        epoch.store(1, Ordering::Release);
        let mut calls = Vec::new();
        r.maintain(&epoch, |t| {
            calls.push(t);
            false
        });
        assert_eq!(calls, vec![0], "parked slot still stamped and offered");
        // After admission the slot resumes as arrived-for-2.
        assert!(r.admit(0));
        assert!(matches!(r.try_arrive(0, 3), Arrival::Claimed));
    }

    #[test]
    fn maintain_loops_while_proxies_release() {
        let r = Roster::new(1);
        let epoch = AtomicU32::new(0);
        assert!(r.evict(0, &epoch)); // slot tagged for target 1
        epoch.store(1, Ordering::Release); // the evictor's proxy released it
                                           // Every further proxy releases an episode; emulate three then
                                           // stop releasing.
        let mut n = 0;
        r.maintain(&epoch, |_| {
            n += 1;
            epoch.fetch_add(1, Ordering::AcqRel);
            n < 3
        });
        assert_eq!(n, 3);
    }
}
