//! Self-healing supervision: heartbeat failure detection, membership
//! reconfiguration plumbing, and rejoin backoff.
//!
//! PR 1's eviction was one-way and caller-driven: some thread noticed a
//! timeout, called `evict_stragglers()`, and the barrier kept its
//! degraded shape forever. This module closes the loop:
//!
//! 1. **Detect** — [`Supervisor`] keeps one heartbeat slot per
//!    participant, bumped on every `wait*` entry by the integration
//!    layer (the torture harnesses, or any application loop). The grace
//!    window is a *lease* derived from the observed inter-arrival
//!    distribution — `mean + sigma_mult · σ̂`, echoing the paper's
//!    arrival-distribution model — and each consecutive miss doubles
//!    the window before death is declared, so transient yield storms do
//!    not cause false evictions. Heartbeats live outside the barriers
//!    themselves so the barrier hot paths stay clock-free for the
//!    deterministic model checker.
//! 2. **Reconfigure** — [`SelfHealing::fail`] evicts the participant
//!    (the immediate, proxy-based half from PR 1) *and* schedules a
//!    membership detach that the next episode's releaser applies in its
//!    quiescent window, re-parenting orphaned children onto the
//!    grandparent counter (see `Topology::prune_shape`).
//! 3. **Rejoin** — a detached thread re-requests membership through the
//!    roster; the releaser grafts it back at its original leaf at an
//!    episode boundary. [`JitterBackoff`] paces the polling with
//!    jittered exponential delays so a herd of rejoiners does not
//!    hammer the roster.
//!
//! [`Membership`] is the crate-internal half shared by the counter
//! barriers (central, tree, dynamic): the live-shape flags plus the
//! pending attach/detach requests, with the apply step run only inside
//! the releaser's quiescent window (after the root counter resets,
//! before the epoch bump — every surviving waiter is provably spinning
//! at that instant, so the new shape publishes atomically with the
//! release).

use crate::error::BarrierError;
use crate::pad::CachePadded;
use crate::roster::Roster;
use crate::spin::{Backoff, Deadline};
use crate::sync::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Outcome of a single non-blocking rejoin poll
/// (`try_rejoin` on the barrier waiters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejoinStatus {
    /// The participant was not evicted; nothing to do.
    NotEvicted,
    /// Re-admission is requested but has not been granted yet; poll
    /// again (the grant happens at an episode boundary).
    Pending,
    /// The participant is active again and its waiter has resumed.
    Rejoined,
}

/// A barrier that supports supervised failure handling: straggler
/// enumeration plus declare-dead with shape reconfiguration.
pub trait SelfHealing {
    /// Number of participants the barrier was built for.
    fn threads(&self) -> u32;
    /// Participants that have not arrived for the episode in flight
    /// (death candidates; already-evicted participants are excluded).
    fn stragglers(&self) -> Vec<u32>;
    /// Declares `tid` dead: evicts it (delivering the in-flight proxy)
    /// and schedules the membership detach for the next episode
    /// boundary. Returns `false` if the participant could not be
    /// declared (it arrived, or was already declared). Idempotent and
    /// safe to retry.
    fn fail(&self, tid: u32) -> bool;
    /// Whether the barrier is poisoned beyond recovery.
    fn is_poisoned(&self) -> bool;
}

/// Tuning for the [`Supervisor`]'s lease-based failure detector.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Floor for the grace window, used before any inter-beat samples
    /// exist and as a lower clamp afterwards.
    pub min_grace: Duration,
    /// Grace = `mean + sigma_mult · σ̂` of the observed inter-beat
    /// intervals (the lease length).
    pub sigma_mult: f64,
    /// Consecutive missed (and exponentially widened) leases before a
    /// participant is declared dead.
    pub max_misses: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            min_grace: Duration::from_millis(5),
            sigma_mult: 4.0,
            max_misses: 3,
        }
    }
}

/// Lease-based failure detector over per-participant heartbeats.
///
/// Any thread may drive [`Supervisor::poll`]; detection is cooperative
/// and does not need a dedicated monitor thread. The supervisor never
/// touches barrier internals except through [`SelfHealing`].
#[derive(Debug)]
pub struct Supervisor {
    start: Instant,
    cfg: SupervisorConfig,
    /// Nanoseconds since `start` of each participant's latest beat.
    beats: Vec<CachePadded<AtomicU64>>,
    /// Consecutive lease misses per participant.
    misses: Vec<CachePadded<AtomicU32>>,
    /// Pooled inter-beat statistics (count, sum µs, sum of squared µs).
    n: AtomicU64,
    sum_us: AtomicU64,
    sumsq_us: AtomicU64,
}

impl Supervisor {
    /// A supervisor for `p` participants with default tuning.
    pub fn new(p: u32) -> Self {
        Self::with_config(p, SupervisorConfig::default())
    }

    /// A supervisor for `p` participants.
    pub fn with_config(p: u32, cfg: SupervisorConfig) -> Self {
        Self {
            start: Instant::now(),
            cfg,
            beats: (0..p)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            misses: (0..p)
                .map(|_| CachePadded::new(AtomicU32::new(0)))
                .collect(),
            n: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            sumsq_us: AtomicU64::new(0),
        }
    }

    /// Records a heartbeat for `tid`. Call on every barrier-wait entry.
    pub fn beat(&self, tid: u32) {
        let now = self.now_ns();
        let prev = self.beats[tid as usize].swap(now, Ordering::AcqRel);
        if prev != 0 {
            let delta_us = now.saturating_sub(prev) / 1_000;
            self.n.fetch_add(1, Ordering::Relaxed);
            self.sum_us.fetch_add(delta_us, Ordering::Relaxed);
            self.sumsq_us
                .fetch_add(delta_us.saturating_mul(delta_us), Ordering::Relaxed);
        }
        self.misses[tid as usize].store(0, Ordering::Release);
    }

    /// The current lease length: `mean + sigma_mult · σ̂` of the pooled
    /// inter-beat intervals, floored at `min_grace`. With fewer than
    /// two samples this is simply `min_grace`.
    pub fn grace(&self) -> Duration {
        let n = self.n.load(Ordering::Relaxed);
        if n < 2 {
            return self.cfg.min_grace;
        }
        let sum = self.sum_us.load(Ordering::Relaxed) as f64;
        let sumsq = self.sumsq_us.load(Ordering::Relaxed) as f64;
        let mean = sum / n as f64;
        let var = (sumsq / n as f64 - mean * mean).max(0.0);
        let grace_us = mean + self.cfg.sigma_mult * var.sqrt();
        self.cfg
            .min_grace
            .max(Duration::from_micros(grace_us as u64))
    }

    /// One detection pass: every straggler whose silence exceeds its
    /// current (exponentially widened) lease gets one more miss; a
    /// straggler over `max_misses` is declared dead via
    /// [`SelfHealing::fail`]. Returns the participants newly declared.
    ///
    /// Drive this from timeout paths (e.g. a torture-harness rescue
    /// closure): each call escalates at most one miss per straggler, so
    /// declaring death takes `max_misses` separate polls spread over
    /// the widening leases — a slow-but-alive thread that beats in
    /// between resets its count.
    pub fn poll<B: SelfHealing + ?Sized>(&self, barrier: &B) -> Vec<u32> {
        let grace = self.grace();
        let now = self.now_ns();
        let mut declared = Vec::new();
        for tid in barrier.stragglers() {
            let last = self.beats[tid as usize].load(Ordering::Acquire);
            let silent_ns = now.saturating_sub(last); // beat 0 = never: silent since start
            let misses = self.misses[tid as usize].load(Ordering::Acquire);
            let lease = grace.saturating_mul(1u32 << misses.min(16));
            if silent_ns < lease.as_nanos() as u64 {
                continue;
            }
            if misses >= self.cfg.max_misses {
                if barrier.fail(tid) {
                    // Episode 0: the supervisor runs outside any episode;
                    // heal events are correlated by subject, not episode.
                    combar_trace::emit(0, tid, combar_trace::Kind::Heal(tid));
                    declared.push(tid);
                }
            } else {
                self.misses[tid as usize].store(misses + 1, Ordering::Release);
            }
        }
        declared
    }

    fn now_ns(&self) -> u64 {
        // +1 so a beat at t=0 is distinguishable from "never beat".
        self.start.elapsed().as_nanos() as u64 + 1
    }
}

/// Jittered exponential backoff for rejoin polling: delays double from
/// `base` up to `max`, each scaled by a pseudo-random factor in
/// `[0.5, 1.0)` so simultaneous rejoiners desynchronize.
#[derive(Debug)]
pub struct JitterBackoff {
    state: u64,
    delay: Duration,
    max: Duration,
}

impl JitterBackoff {
    /// Backoff starting at `base`, capped at `max`, jittered from
    /// `seed` (use the thread id).
    ///
    /// Both durations are floored at 1 µs — a zero `base` (or cap)
    /// still makes forward progress instead of degenerating into a
    /// zero-sleep busy loop — and `base` is clamped to the cap, so the
    /// first delay already respects `max`.
    pub fn new(seed: u64, base: Duration, max: Duration) -> Self {
        let max = max.max(Duration::from_micros(1));
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
            delay: base.max(Duration::from_micros(1)).min(max),
            max,
        }
    }

    /// The next delay to sleep before re-polling.
    pub fn next_delay(&mut self) -> Duration {
        // xorshift64* — tiny, seedable, good enough for jitter.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let out = self.state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        let frac = 0.5 + (out >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        let jittered = self.delay.mul_f64(frac).min(self.max);
        // Saturate rather than overflow: with a cap near `Duration::MAX`
        // the un-saturated doubling would panic after ~64 steps.
        self.delay = self.delay.saturating_mul(2).min(self.max);
        jittered
    }

    /// The instant the next re-poll is due, measured from `now` — the
    /// non-blocking form of [`JitterBackoff::sleep`]. Advances the
    /// backoff schedule without sleeping, so an async caller can park
    /// on the returned instant (e.g. a timer re-poll of a
    /// `wait_deadline`) instead of stalling an executor driver. The
    /// pacing stays per logical participant: each session owns its own
    /// `JitterBackoff` and deadline, however many of them share a
    /// driver thread.
    pub fn next_deadline(&mut self, now: Instant) -> Instant {
        now + self.next_delay()
    }

    /// Sleeps for the next delay, clamped so it never overshoots
    /// `deadline`. Returns `false` once the deadline has expired.
    ///
    /// This blocks the calling **OS thread**, which is correct only
    /// when that thread serves a single participant (the
    /// thread-per-participant barriers). Never call it from an executor
    /// driver: one session's backoff nap would stall every other
    /// logical participant multiplexed onto that driver. Async code
    /// paces with [`JitterBackoff::next_deadline`] and a timer instead.
    pub fn sleep(&mut self, deadline: Deadline) -> bool {
        let now = Instant::now();
        let mut d = self.next_delay();
        if let Some(rem) = deadline.remaining_at(now) {
            if rem.is_zero() {
                return false;
            }
            d = d.min(rem);
        }
        std::thread::sleep(d);
        true
    }
}

/// Crate-internal membership ledger for the counter barriers: which
/// participants the live shape counts, plus the attach requests the
/// next releaser should grant. Detach requests ride on the roster's
/// `Parked` state (see `roster.rs`), so membership transitions stay
/// linearizable on the roster slot.
#[derive(Debug)]
pub(crate) struct Membership {
    /// 1 while the live shape counts the participant.
    live: Vec<CachePadded<AtomicU32>>,
    attach_req: Vec<CachePadded<AtomicU32>>,
    /// Any boundary work queued? Checked (cheaply) on every release.
    pending: CachePadded<AtomicU32>,
    /// Number of reconfigurations applied (the "shape epoch").
    shape_epoch: CachePadded<AtomicU32>,
}

/// One membership change the releaser must fold into the shape.
pub(crate) enum Change {
    /// Remove from the live shape (roster slot is parked).
    Detach(u32),
    /// Graft back into the live shape and re-admit through the roster.
    Attach(u32),
}

impl Membership {
    pub(crate) fn new(p: u32) -> Self {
        Self {
            live: (0..p)
                .map(|_| CachePadded::new(AtomicU32::new(1)))
                .collect(),
            attach_req: (0..p)
                .map(|_| CachePadded::new(AtomicU32::new(0)))
                .collect(),
            pending: CachePadded::new(AtomicU32::new(0)),
            shape_epoch: CachePadded::new(AtomicU32::new(0)),
        }
    }

    pub(crate) fn is_live(&self, tid: u32) -> bool {
        self.live[tid as usize].load(Ordering::Acquire) == 1
    }

    pub(crate) fn live_count(&self) -> u32 {
        self.live.iter().map(|l| l.load(Ordering::Acquire)).sum()
    }

    pub(crate) fn live_mask(&self) -> Vec<bool> {
        self.live
            .iter()
            .map(|l| l.load(Ordering::Acquire) == 1)
            .collect()
    }

    pub(crate) fn shape_epoch(&self) -> u32 {
        self.shape_epoch.load(Ordering::Acquire)
    }

    pub(crate) fn has_pending(&self) -> bool {
        self.pending.load(Ordering::Acquire) != 0
    }

    /// Parks `tid` in the roster (closing its fast rejoin path) and
    /// queues the detach for the next boundary. Fails if the roster
    /// slot is active.
    pub(crate) fn request_detach(&self, roster: &Roster, tid: u32) -> bool {
        if !roster.park(tid) {
            return false;
        }
        self.pending.store(1, Ordering::Release);
        true
    }

    /// Queues re-admission of a parked participant for the next
    /// boundary.
    pub(crate) fn request_attach(&self, tid: u32) {
        self.attach_req[tid as usize].store(1, Ordering::Release);
        self.pending.store(1, Ordering::Release);
    }

    /// Collects the boundary changes, updating the live flags. Must be
    /// called only inside the releaser's quiescent window. Returns the
    /// changes to fold into the shape (empty = nothing to recompute);
    /// the caller must then recompute its shape arrays, call
    /// [`Membership::grant`] for every `Attach`, and finally bump the
    /// barrier epoch (Release) to publish.
    ///
    /// A detach that would leave the live shape empty is skipped (the
    /// slot stays parked and proxy-maintained): a barrier with zero
    /// expected arrivals could never release an episode again.
    pub(crate) fn collect(&self, roster: &Roster) -> Vec<Change> {
        if self.pending.swap(0, Ordering::AcqRel) == 0 {
            return Vec::new();
        }
        let mut changes = Vec::new();
        let mut live_now = self.live_count();
        for tid in 0..self.live.len() as u32 {
            let parked = roster.is_parked(tid);
            let attach = self.attach_req[tid as usize].load(Ordering::Acquire) != 0;
            if attach {
                self.attach_req[tid as usize].store(0, Ordering::Relaxed);
                if parked {
                    if self.is_live(tid) {
                        // Detach cancelled before it ever applied: the
                        // shape never excluded the participant, so only
                        // the roster needs re-admission.
                        roster.admit(tid);
                    } else {
                        self.live[tid as usize].store(1, Ordering::Relaxed);
                        live_now += 1;
                        changes.push(Change::Attach(tid));
                    }
                }
                // A stale request for a non-parked slot is dropped.
            } else if parked && self.is_live(tid) {
                if live_now <= 1 {
                    continue; // never detach the last live participant
                }
                self.live[tid as usize].store(0, Ordering::Relaxed);
                live_now -= 1;
                changes.push(Change::Detach(tid));
            }
        }
        if !changes.is_empty() {
            self.shape_epoch.fetch_add(1, Ordering::AcqRel);
        }
        changes
    }

    /// Grants an attach after the shape recompute: re-admits the slot.
    /// The roster CAS publishes every prior shape store to the polling
    /// rejoiner.
    pub(crate) fn grant(&self, roster: &Roster, tid: u32) {
        let admitted = roster.admit(tid);
        debug_assert!(admitted, "attach granted for a non-parked slot");
    }
}

/// One non-blocking rejoin step over the shared roster/membership
/// protocol — the waiter half every counter barrier shares. The caller
/// checks poisoning first. Reads no clock.
///
/// * Merely evicted (shape untouched) → fast roster re-admission.
/// * Detached (or detach-parked) → files an attach request the next
///   episode's releaser grants in its quiescent window; `Pending` until
///   the grant lands, observed via the roster slot going active (the
///   admit CAS also publishes the new shape). The slot's `last` tag is
///   the episode the grant released, so the waiter resumes as "arrived,
///   pending depart" either way.
pub(crate) fn try_rejoin_step(
    roster: &Roster,
    membership: &Membership,
    tid: u32,
    awaiting_attach: &mut bool,
    epoch: &mut u32,
    pending: &mut bool,
) -> RejoinStatus {
    if *awaiting_attach {
        if roster.is_evicted(tid) {
            return RejoinStatus::Pending;
        }
        *awaiting_attach = false;
        *epoch = roster.last_of(tid).wrapping_sub(1);
        *pending = true;
        return RejoinStatus::Rejoined;
    }
    if !roster.is_evicted(tid) {
        return RejoinStatus::NotEvicted;
    }
    if roster.is_parked(tid) || !membership.is_live(tid) {
        membership.request_attach(tid);
        *awaiting_attach = true;
        return RejoinStatus::Pending;
    }
    match roster.rejoin(tid) {
        Some(last) => {
            *epoch = last.wrapping_sub(1);
            *pending = true;
            RejoinStatus::Rejoined
        }
        // Lost the race with a detacher's park; a retry resolves it.
        None => RejoinStatus::Pending,
    }
}

/// Drives a `try_rejoin` step to resolution with spin-then-yield
/// between polls (an attach resolves only at an episode boundary, so
/// this blocks until the live participants complete an episode).
pub(crate) fn drive_rejoin<F>(mut step: F) -> Result<bool, BarrierError>
where
    F: FnMut() -> Result<RejoinStatus, BarrierError>,
{
    let mut backoff = Backoff::new();
    loop {
        match step()? {
            RejoinStatus::NotEvicted => return Ok(false),
            RejoinStatus::Rejoined => return Ok(true),
            RejoinStatus::Pending => backoff.snooze(),
        }
    }
}

/// Bounded [`drive_rejoin`], polling with jittered exponential backoff
/// (seeded from `tid`) so simultaneous rejoiners desynchronize. On
/// [`BarrierError::Timeout`] any filed attach request stays pending; a
/// later call resumes waiting for it.
pub(crate) fn drive_rejoin_within<F>(
    tid: u32,
    timeout: Duration,
    mut step: F,
) -> Result<bool, BarrierError>
where
    F: FnMut() -> Result<RejoinStatus, BarrierError>,
{
    let deadline = Deadline::after(timeout);
    let mut jitter = JitterBackoff::new(
        tid as u64 + 1,
        Duration::from_micros(50),
        Duration::from_millis(5),
    );
    loop {
        match step()? {
            RejoinStatus::NotEvicted => return Ok(false),
            RejoinStatus::Rejoined => return Ok(true),
            RejoinStatus::Pending => {
                if !jitter.sleep(deadline) {
                    return Err(BarrierError::Timeout);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grace_tracks_interarrival_sigma() {
        let s = Supervisor::with_config(
            2,
            SupervisorConfig {
                min_grace: Duration::from_micros(10),
                sigma_mult: 4.0,
                max_misses: 3,
            },
        );
        assert_eq!(s.grace(), Duration::from_micros(10), "no samples yet");
        // Synthesize beats; real sleeps keep deltas positive.
        for _ in 0..5 {
            s.beat(0);
            std::thread::sleep(Duration::from_millis(1));
        }
        let g = s.grace();
        assert!(g >= Duration::from_micros(500), "grace too small: {g:?}");
    }

    #[test]
    fn jitter_backoff_doubles_within_bounds() {
        let mut b = JitterBackoff::new(7, Duration::from_millis(1), Duration::from_millis(8));
        let mut prev_base = Duration::from_millis(1);
        for _ in 0..6 {
            let d = b.next_delay();
            assert!(d >= prev_base / 2, "jitter below half base: {d:?}");
            assert!(d <= Duration::from_millis(8), "jitter above cap: {d:?}");
            prev_base = (prev_base * 2).min(Duration::from_millis(8));
        }
        // Two seeds diverge.
        let mut b1 = JitterBackoff::new(1, Duration::from_millis(4), Duration::from_secs(1));
        let mut b2 = JitterBackoff::new(2, Duration::from_millis(4), Duration::from_secs(1));
        assert_ne!(b1.next_delay(), b2.next_delay());
    }

    #[test]
    fn jitter_backoff_zero_base_still_progresses() {
        let mut b = JitterBackoff::new(7, Duration::ZERO, Duration::from_millis(10));
        for _ in 0..8 {
            let d = b.next_delay();
            assert!(d > Duration::ZERO, "zero-duration delay busy-loops");
            assert!(d <= Duration::from_millis(10));
        }
        // Degenerate cap too: still nonzero, still bounded.
        let mut z = JitterBackoff::new(7, Duration::ZERO, Duration::ZERO);
        let d = z.next_delay();
        assert!(d > Duration::ZERO && d <= Duration::from_micros(1));
    }

    #[test]
    fn jitter_backoff_saturates_instead_of_overflowing() {
        // An effectively unbounded cap: repeated doubling must saturate,
        // not overflow-panic, and stay within the cap.
        let mut b = JitterBackoff::new(3, Duration::from_secs(u64::MAX / 4), Duration::MAX);
        for _ in 0..80 {
            assert!(b.next_delay() <= Duration::MAX);
        }
    }

    #[test]
    fn jitter_backoff_clamps_base_above_cap() {
        let cap = Duration::from_millis(2);
        let mut b = JitterBackoff::new(5, Duration::from_secs(10), cap);
        for _ in 0..8 {
            assert!(b.next_delay() <= cap, "delay escaped the cap");
        }
    }

    #[test]
    fn jitter_backoff_is_deterministic_per_seed() {
        let (base, max) = (Duration::from_millis(1), Duration::from_millis(16));
        let mut a = JitterBackoff::new(42, base, max);
        let mut b = JitterBackoff::new(42, base, max);
        let sa: Vec<_> = (0..12).map(|_| a.next_delay()).collect();
        let sb: Vec<_> = (0..12).map(|_| b.next_delay()).collect();
        assert_eq!(sa, sb, "same seed must replay the same sequence");
        let mut c = JitterBackoff::new(43, base, max);
        let sc: Vec<_> = (0..12).map(|_| c.next_delay()).collect();
        assert_ne!(sa, sc, "different seeds must diverge");
    }

    #[test]
    fn jitter_backoff_next_deadline_paces_without_sleeping() {
        let (base, max) = (Duration::from_millis(1), Duration::from_millis(16));
        let mut paced = JitterBackoff::new(42, base, max);
        let mut slept = JitterBackoff::new(42, base, max);
        let now = Instant::now();
        let t0 = Instant::now();
        for _ in 0..8 {
            // Same schedule as the blocking form, but the driver-thread
            // clock does not advance: the due instant is a value the
            // caller parks on, not time already spent.
            let due = paced.next_deadline(now);
            assert_eq!(due, now + slept.next_delay());
            assert!(due > now);
        }
        assert!(
            t0.elapsed() < base * 8,
            "next_deadline must not block the calling thread"
        );
    }

    #[test]
    fn membership_detach_spares_last_live() {
        let m = Membership::new(2);
        let roster = Roster::new(2);
        let epoch = AtomicU32::new(0);
        assert!(roster.evict(0, &epoch));
        assert!(roster.evict(1, &epoch));
        assert!(m.request_detach(&roster, 0));
        assert!(m.request_detach(&roster, 1));
        let changes = m.collect(&roster);
        assert_eq!(changes.len(), 1, "one of the two detaches must wait");
        assert_eq!(m.live_count(), 1);
        assert_eq!(m.shape_epoch(), 1);
        assert!(m.collect(&roster).is_empty(), "pending flag consumed");
    }

    #[test]
    fn membership_attach_cancels_unapplied_detach() {
        let m = Membership::new(2);
        let roster = Roster::new(2);
        let epoch = AtomicU32::new(0);
        assert!(roster.evict(0, &epoch));
        assert!(m.request_detach(&roster, 0));
        m.request_attach(0); // rejoin lands before any boundary
        let changes = m.collect(&roster);
        assert!(changes.is_empty(), "shape never excluded the thread");
        assert!(m.is_live(0));
        assert!(!roster.is_evicted(0), "roster re-admitted directly");
    }
}
