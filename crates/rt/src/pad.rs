//! Cache-line padding.
//!
//! Every hot atomic in the runtime lives on its own cache line so that
//! two processors spinning on different counters never ping-pong the
//! same line — on the KSR1 this is the difference between a local
//! sub-cache hit and a ring transaction, and on modern x86/ARM it
//! avoids false sharing between adjacent counters.

/// Pads and aligns `T` to 128 bytes.
///
/// 128 rather than 64 because recent Intel parts prefetch cache lines
/// in adjacent pairs, so destructive interference spans two 64-byte
/// lines (the same sizing crossbeam uses).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value in its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the padding, returning the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn alignment_and_size_are_multiples_of_128() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU32>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<AtomicU32>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<[u8; 200]>>(), 256);
    }

    #[test]
    fn adjacent_array_elements_live_on_distinct_lines() {
        let v: Vec<CachePadded<AtomicU32>> = (0..4)
            .map(|_| CachePadded::new(AtomicU32::new(0)))
            .collect();
        let a = &*v[0] as *const AtomicU32 as usize;
        let b = &*v[1] as *const AtomicU32 as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_and_into_inner_round_trip() {
        let mut p = CachePadded::new(41);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
        let q: CachePadded<u8> = 7.into();
        assert_eq!(*q, 7);
    }
}
