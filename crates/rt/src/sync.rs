//! Synchronization facade: the barrier modules' only door to atomics
//! and scheduler hints.
//!
//! Every barrier in this crate performs its shared-memory traffic
//! through these names instead of `std::sync::atomic` directly. They
//! resolve to [`combar_check`]'s shadow types, which behave exactly
//! like the `std` types outside a checker session (one thread-local
//! flag test of overhead per operation) and become schedule points
//! with happens-before recording inside one. That is what lets
//! `tests/model_check.rs` exhaustively explore barrier interleavings
//! against the *production* protocol code rather than a model of it.
//!
//! Building with `RUSTFLAGS="--cfg combar_sync_raw"` strips the
//! instrumentation entirely and compiles the facade straight to
//! `std::sync::atomic` / `std::thread::yield_now` /
//! `std::hint::spin_loop` for overhead-sensitive benchmarking; the
//! barrier sources are identical either way.

#[cfg(not(combar_sync_raw))]
pub use combar_check::shadow::{spin_hint, yield_now, AtomicU32, AtomicU64};

#[cfg(combar_sync_raw)]
pub use std::sync::atomic::{AtomicU32, AtomicU64};

/// `std::thread::yield_now` (raw build).
#[cfg(combar_sync_raw)]
#[inline]
pub fn yield_now() {
    std::thread::yield_now();
}

/// `std::hint::spin_loop` (raw build).
#[cfg(combar_sync_raw)]
#[inline]
pub fn spin_hint() {
    std::hint::spin_loop();
}

pub use std::sync::atomic::Ordering;
