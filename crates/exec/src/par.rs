//! Ordered, chunked, work-stealing parallel map.
//!
//! `par_map_indexed(n, f)` evaluates `f(0..n)` on a scoped pool and
//! returns the results in index order. Work distribution uses a single
//! shared atomic cursor over fixed-size chunks: a worker claims the
//! next chunk, evaluates it into a local vector, and appends
//! `(chunk_start, results)` to a shared list. After the scope joins,
//! the chunks are sorted by start index and flattened — ordering never
//! depends on which worker ran what, only the schedule does.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::pool;

/// Maps `f` over the index range `0..n` in parallel, returning results
/// in index order.
///
/// Runs serially on the calling thread when `n <= 1`, when
/// [`thread_count`](crate::thread_count) resolves to 1, or when called
/// from inside a pool worker (nested parallelism degrades to serial
/// rather than oversubscribing). A panic in `f` propagates to the
/// caller via `std::thread::scope`'s implicit join.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = pool::thread_count().min(n.max(1));
    if n <= 1 || threads <= 1 || pool::in_worker() {
        return (0..n).map(f).collect();
    }

    // Small fixed chunks (4 per worker on average) keep stealing cheap
    // while still amortizing cursor contention for large n.
    let chunk = (n / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    pool::enter_worker();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        let results: Vec<T> = (start..end).map(&f).collect();
                        done.lock().unwrap().push((start, results));
                    }
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload reaches the
        // caller intact instead of scope's generic "a scoped thread
        // panicked".
        for worker in workers {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    let mut chunks = done.into_inner().unwrap();
    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, mut results) in chunks {
        out.append(&mut results);
    }
    out
}

/// Maps `f` over a slice in parallel, returning results in input order.
///
/// Equivalent to `items.iter().map(f).collect()` but evaluated on the
/// worker pool; see [`par_map_indexed`] for the serial fallbacks and
/// panic behavior.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_thread_count;

    #[test]
    fn results_are_in_index_order() {
        let got = with_thread_count(4, || par_map_indexed(1000, |i| i * 3));
        let want: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u32> = with_thread_count(4, || par_map_indexed(0, |_| unreachable!()));
        assert!(got.is_empty());
        let none: Vec<u32> = with_thread_count(4, || par_map(&[] as &[u32], |&x| x));
        assert!(none.is_empty());
    }

    #[test]
    fn single_item_runs_on_caller() {
        let caller = std::thread::current().id();
        let got = with_thread_count(4, || par_map_indexed(1, |_| std::thread::current().id()));
        assert_eq!(got, vec![caller]);
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        let pooled = with_thread_count(4, || par_map(&items, |&x| x * x + 1));
        assert_eq!(serial, pooled);
    }

    #[test]
    #[should_panic(expected = "worker failure 17")]
    fn worker_panic_propagates() {
        with_thread_count(4, || {
            par_map_indexed(100, |i| {
                if i == 17 {
                    panic!("worker failure 17");
                }
                i
            })
        });
    }

    #[test]
    fn nested_calls_run_serially() {
        let nested_workers = with_thread_count(4, || {
            par_map_indexed(8, |_| {
                // Inside a worker the nested map must stay on this thread.
                let me = std::thread::current().id();
                par_map_indexed(8, |_| std::thread::current().id())
                    .into_iter()
                    .all(|id| id == me)
            })
        });
        assert!(nested_workers.into_iter().all(|ok| ok));
    }

    #[test]
    fn thread_count_one_is_serial() {
        let caller = std::thread::current().id();
        let ids = with_thread_count(1, || par_map_indexed(64, |_| std::thread::current().id()));
        assert!(ids.into_iter().all(|id| id == caller));
    }

    #[test]
    fn uses_multiple_workers_when_asked() {
        let ids = with_thread_count(4, || {
            par_map_indexed(256, |_| {
                // Give the other workers a chance to claim chunks.
                std::thread::yield_now();
                std::thread::current().id()
            })
        });
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected at least two workers");
    }
}
