//! Deterministic parallel execution for the `combar` workspace.
//!
//! Every result table in this repository is a pure function of its
//! seeds, and the golden-snapshot tests hold the renderings to the
//! byte. That rules out the usual "just parallelize it" approach where
//! RNG streams follow worker threads: the moment a stream is keyed by
//! *which worker* ran a cell, the output depends on scheduling. This
//! crate provides the alternative the experiment layer is built on:
//!
//! * [`par_map`] / [`par_map_indexed`] — a chunked work-stealing
//!   parallel map over an index range, run on a scoped worker pool
//!   sized by [`thread_count`] (`std::thread::available_parallelism()`,
//!   overridable via the `COMBAR_THREADS` environment variable or
//!   [`with_thread_count`]). Results always come back in input order,
//!   worker panics propagate to the caller, and nested calls from
//!   inside a worker degrade to serial execution instead of
//!   oversubscribing.
//! * [`Sweep`] — a parameter grid paired with per-cell deterministic
//!   RNG streams: cell `i` of a sweep seeded with `s` draws from
//!   `Xoshiro256pp::split(s, i)`, *never* from worker-local state, so
//!   a sweep's results are bit-identical for any thread count,
//!   including one.
//!
//! # Determinism contract
//!
//! For any `f` that is itself a pure function of `(cell, seed)`,
//!
//! ```
//! use combar_exec::{with_thread_count, Rng, Sweep};
//!
//! let sweep = Sweep::new(42, vec![1u32, 2, 3, 4]);
//! let serial = with_thread_count(1, || sweep.run(|c| c.rng().next_u64()));
//! let pooled = with_thread_count(4, || sweep.run(|c| c.rng().next_u64()));
//! assert_eq!(serial, pooled);
//! ```
//!
//! The crate is intentionally zero-dependency beyond `combar-rng` (the
//! workspace builds offline; see DESIGN.md §10 for why this exists
//! instead of a `rayon` dependency).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod par;
mod pool;
mod sweep;

pub use par::{par_map, par_map_indexed};
pub use pool::{thread_count, with_thread_count};
pub use sweep::{Cell, Sweep};

// Re-exported so sweep callers can drive the cell RNGs without adding
// a direct combar-rng dependency.
pub use combar_rng::Rng;
