//! Worker-pool sizing and nesting control.
//!
//! The pool itself is scoped: [`par_map_indexed`](crate::par_map_indexed)
//! spawns its workers with `std::thread::scope` per call, so there is
//! no global state to poison, no shutdown ordering, and a worker panic
//! unwinds straight into the caller. What *is* shared is the sizing
//! policy, resolved per call in priority order:
//!
//! 1. an explicit [`with_thread_count`] override on the calling thread
//!    (used by the determinism tests and the sweep-throughput bench);
//! 2. the `COMBAR_THREADS` environment variable;
//! 3. `std::thread::available_parallelism()`.

use std::cell::Cell;

thread_local! {
    /// Per-thread explicit override (`with_thread_count`).
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set on pool workers so nested parallel calls degrade to serial
    /// execution instead of oversubscribing the machine.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads a parallel call on this thread would use.
///
/// Resolution order: [`with_thread_count`] override, then the
/// `COMBAR_THREADS` environment variable, then
/// `std::thread::available_parallelism()`. Always at least 1. A value
/// of 1 (or calling from inside a pool worker) makes every parallel
/// primitive run serially on the calling thread.
pub fn thread_count() -> usize {
    if let Some(n) = OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("COMBAR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` with the pool size pinned to `threads` on this thread,
/// restoring the previous setting afterwards (also on panic).
///
/// This is how the determinism suite compares a 1-worker run against a
/// 4-worker run in one process without racing on the process-global
/// environment.
pub fn with_thread_count<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(threads.max(1)))));
    f()
}

/// Whether the current thread is a pool worker (nested parallel calls
/// must run serially).
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Marks the current (freshly spawned) thread as a pool worker.
pub(crate) fn enter_worker() {
    IN_WORKER.with(|w| w.set(true));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_and_restores() {
        let outer = thread_count();
        let inner = with_thread_count(3, thread_count);
        assert_eq!(inner, 3);
        assert_eq!(thread_count(), outer);
    }

    #[test]
    fn override_clamps_to_one() {
        assert_eq!(with_thread_count(0, thread_count), 1);
    }

    #[test]
    fn override_restored_after_panic() {
        let before = thread_count();
        let caught = std::panic::catch_unwind(|| {
            with_thread_count(7, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(thread_count(), before);
    }

    #[test]
    fn nested_overrides_unwind_in_order() {
        with_thread_count(5, || {
            assert_eq!(thread_count(), 5);
            with_thread_count(2, || assert_eq!(thread_count(), 2));
            assert_eq!(thread_count(), 5);
        });
    }
}
