//! Parameter sweeps with per-cell deterministic RNG streams.
//!
//! A [`Sweep`] is a flat list of parameter points plus a seed. Running
//! it evaluates one closure per point — in parallel via
//! [`par_map_indexed`] — and hands each invocation a [`Cell`] that
//! knows its own index and can mint RNG streams derived from
//! `(sweep seed, cell index)`. Because the streams are keyed by the
//! cell's position in the grid and never by the worker that happens to
//! run it, the collected results are bit-identical for any thread
//! count.

use combar_rng::{split_seed, SeedableRng, Xoshiro256pp};

use crate::par::par_map_indexed;

/// A parameter grid paired with a seed for per-cell RNG streams.
///
/// Construct with [`Sweep::new`] (flat list) or [`Sweep::grid2`]
/// (row-major cartesian product), then evaluate with [`Sweep::run`].
#[derive(Debug, Clone)]
pub struct Sweep<P> {
    seed: u64,
    params: Vec<P>,
}

impl<P: Sync> Sweep<P> {
    /// Creates a sweep over an explicit list of parameter points.
    pub fn new(seed: u64, params: Vec<P>) -> Self {
        Sweep { seed, params }
    }

    /// The sweep's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The parameter points, in evaluation order.
    pub fn params(&self) -> &[P] {
        &self.params
    }

    /// Number of cells in the sweep.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the sweep has no cells.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Evaluates `f` once per cell on the worker pool, returning the
    /// results in grid order.
    ///
    /// `f` must derive all of its randomness from the [`Cell`] it is
    /// given (or from its parameter values); it is then a pure function
    /// of the cell, and the output is independent of thread count.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Cell<'_, P>) -> T + Sync,
    {
        par_map_indexed(self.params.len(), |index| {
            f(Cell {
                param: &self.params[index],
                index,
                sweep_seed: self.seed,
            })
        })
    }
}

impl<X: Clone + Sync, Y: Clone + Sync> Sweep<(X, Y)> {
    /// Creates a sweep over the row-major cartesian product of two
    /// axes: `(x0, y0), (x0, y1), …, (x1, y0), …` — the same order the
    /// experiment tables print their rows in.
    pub fn grid2(seed: u64, xs: &[X], ys: &[Y]) -> Self {
        let mut params = Vec::with_capacity(xs.len() * ys.len());
        for x in xs {
            for y in ys {
                params.push((x.clone(), y.clone()));
            }
        }
        Sweep { seed, params }
    }
}

/// One point of a running [`Sweep`]: the parameter value plus the
/// cell's deterministic RNG identity.
#[derive(Debug)]
pub struct Cell<'a, P> {
    /// The parameter value at this grid point.
    pub param: &'a P,
    index: usize,
    sweep_seed: u64,
}

impl<P> Cell<'_, P> {
    /// This cell's position in the sweep's grid order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The cell's derived seed: `split_seed(sweep seed, index)`.
    ///
    /// Use this when an episode function takes a seed rather than a
    /// generator; it equals the seed behind [`Cell::rng`].
    pub fn seed(&self) -> u64 {
        split_seed(self.sweep_seed, self.index as u64)
    }

    /// The cell's primary RNG stream, `Xoshiro256pp::split(sweep seed,
    /// index)`. Fresh on every call — callers that need continuity must
    /// keep the generator.
    pub fn rng(&self) -> Xoshiro256pp {
        Xoshiro256pp::split(self.sweep_seed, self.index as u64)
    }

    /// An auxiliary RNG stream `k` for this cell, decorrelated from
    /// [`Cell::rng`] and from every other `(cell, stream)` pair.
    pub fn rng_stream(&self, k: u64) -> Xoshiro256pp {
        Xoshiro256pp::split(self.seed(), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_thread_count;
    use combar_rng::Rng;

    #[test]
    fn grid2_is_row_major() {
        let sweep = Sweep::grid2(0, &[1u32, 2], &['a', 'b', 'c']);
        assert_eq!(
            sweep.params(),
            &[(1, 'a'), (1, 'b'), (1, 'c'), (2, 'a'), (2, 'b'), (2, 'c')]
        );
    }

    #[test]
    fn run_preserves_grid_order() {
        let sweep = Sweep::new(5, (0..100u64).collect());
        let got = with_thread_count(4, || sweep.run(|c| (*c.param, c.index())));
        let want: Vec<(u64, usize)> = (0..100u64).map(|v| (v, v as usize)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn cell_rng_is_thread_count_invariant() {
        let sweep = Sweep::new(42, (0..50u32).collect());
        let serial = with_thread_count(1, || sweep.run(|c| c.rng().next_u64()));
        let pooled = with_thread_count(4, || sweep.run(|c| c.rng().next_u64()));
        assert_eq!(serial, pooled);
    }

    #[test]
    fn cell_rng_matches_manual_split() {
        let sweep = Sweep::new(9, vec![(), (), ()]);
        let from_cells = with_thread_count(1, || sweep.run(|c| c.rng().next_u64()));
        let manual: Vec<u64> = (0..3u64)
            .map(|i| Xoshiro256pp::split(9, i).next_u64())
            .collect();
        assert_eq!(from_cells, manual);
    }

    #[test]
    fn cell_seed_backs_cell_rng() {
        let sweep = Sweep::new(123, vec![0u8; 4]);
        let ok = sweep.run(|c| {
            let mut via_seed = Xoshiro256pp::seed_from_u64(c.seed());
            c.rng().next_u64() == via_seed.next_u64()
        });
        assert!(ok.into_iter().all(|b| b));
    }

    #[test]
    fn aux_streams_are_decorrelated() {
        let sweep = Sweep::new(77, vec![(); 8]);
        let draws = sweep.run(|c| (c.rng().next_u64(), c.rng_stream(1).next_u64()));
        let mut all: Vec<u64> = draws.into_iter().flat_map(|(a, b)| [a, b]).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn empty_sweep_runs_to_empty() {
        let sweep: Sweep<u32> = Sweep::new(1, Vec::new());
        assert!(sweep.is_empty());
        let got: Vec<u64> = sweep.run(|c| c.rng().next_u64());
        assert!(got.is_empty());
    }
}
