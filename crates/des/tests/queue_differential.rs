//! Differential test: [`HeapQueue`] and [`WheelQueue`] are
//! observationally identical [`EventQueue`]s.
//!
//! The repo's hand-rolled property style: seeded splitmix64 streams
//! generate randomized schedule / cancel / pop interleavings, and the
//! two implementations must pop byte-identical `(time, seq, payload)`
//! sequences — the `(time, seq)` total order the engine's determinism
//! (and every golden snapshot) rests on. Cancelled events must never
//! surface from either.

use combar_des::{Cancellation, Duration, Event, EventQueue, HeapQueue, SimTime, WheelQueue};

/// splitmix64 — the repo's standard seed hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One randomized scenario: a stream of operations derived purely from
/// `seed`, applied identically to both queues.
fn run_scenario(seed: u64, ops: usize, resolution_us: f64) {
    let mut heap: HeapQueue<u64> = HeapQueue::with_capacity(ops);
    let mut wheel: WheelQueue<u64> = WheelQueue::with_resolution(resolution_us);
    // Tokens shared between the two queues: cancelling affects both
    // identically, like the engine hands one token to one queue.
    let mut tokens_h: Vec<Cancellation> = Vec::new();
    let mut tokens_w: Vec<Cancellation> = Vec::new();
    let mut cancelled: Vec<bool> = Vec::new();
    let mut seq = 0u64;
    let mut live = 0i64;
    // Schedules never go backwards in time relative to the last pop —
    // the engine's causality assert guarantees this in real use, and
    // the wheel clamps past ticks to its current tick while the heap
    // would not, so monotone schedules are part of the contract.
    let mut floor_us = 0.0f64;
    for step in 0..ops {
        let r = mix(seed ^ step as u64);
        match r % 10 {
            // 0..=5: schedule, sometimes cancellable, with coarse
            // times so equal-time FIFO ties actually happen.
            0..=5 => {
                let at = SimTime::from_us(floor_us + ((r >> 8) % 97) as f64 * 0.5);
                if r & (1 << 40) != 0 {
                    let th = Cancellation::default();
                    let tw = Cancellation::default();
                    heap.schedule(at, seq, Event::cancellable(seq, &th));
                    wheel.schedule(at, seq, Event::cancellable(seq, &tw));
                    tokens_h.push(th);
                    tokens_w.push(tw);
                    cancelled.push(false);
                } else {
                    heap.schedule(at, seq, Event::new(seq));
                    wheel.schedule(at, seq, Event::new(seq));
                }
                seq += 1;
                live += 1;
            }
            // 6..=7: cancel a random not-yet-cancelled token.
            6..=7 if !tokens_h.is_empty() => {
                let i = ((r >> 16) % tokens_h.len() as u64) as usize;
                if !cancelled[i] {
                    tokens_h[i].cancel();
                    tokens_w[i].cancel();
                    cancelled[i] = true;
                }
            }
            // 8..=9 (and the no-token cancel fallthrough): pop once.
            _ => {
                let h = heap.pop_next();
                let w = wheel.pop_next();
                assert_eq!(h, w, "seed {seed} step {step}: pop divergence");
                if let Some((t, s, payload)) = h {
                    assert_eq!(s, payload, "payload tracks seq in this harness");
                    assert!(t.as_us() >= floor_us, "pops must be time-ordered");
                    floor_us = t.as_us();
                    live -= 1;
                }
            }
        }
    }
    // Drain both to the end: the full tail must agree too, and every
    // live (non-cancelled) event must eventually surface.
    let mut drained = 0i64;
    loop {
        let h = heap.pop_next();
        let w = wheel.pop_next();
        assert_eq!(h, w, "seed {seed}: tail divergence");
        match h {
            Some((t, _, _)) => {
                assert!(t.as_us() >= floor_us);
                floor_us = t.as_us();
                drained += 1;
            }
            None => break,
        }
    }
    let dead = cancelled.iter().filter(|&&c| c).count() as i64;
    assert!(
        drained >= live - dead,
        "seed {seed}: drained {drained} of {live} live ({dead} cancelled)"
    );
    assert!(heap.is_empty() && wheel.is_empty(), "seed {seed}");
}

#[test]
fn random_churn_pops_identically() {
    for seed in 0..8 {
        run_scenario(mix(0xd1ff ^ seed), 4_000, 1.0);
    }
}

/// Coarse buckets force many events per tick (intra-bucket sorting);
/// fine buckets force deep cascades — both must stay identical.
#[test]
fn resolution_does_not_change_observable_order() {
    for &res in &[0.125, 1.0, 16.0, 1024.0] {
        run_scenario(0x000c_0a5e, 2_000, res);
    }
}

/// `next_time` agrees between implementations at every step and is
/// exactly the time of the following pop (peek must reap tombstones,
/// never report a cancelled event's time).
#[test]
fn peek_matches_pop_after_cancellations() {
    let mut heap: HeapQueue<u64> = HeapQueue::default();
    let mut wheel: WheelQueue<u64> = WheelQueue::new();
    let mut tokens = Vec::new();
    for i in 0..500u64 {
        let at = SimTime::from_us(((mix(i) % 200) as f64) * 0.25);
        if i % 3 == 0 {
            let th = Cancellation::default();
            let tw = Cancellation::default();
            heap.schedule(at, i, Event::cancellable(i, &th));
            wheel.schedule(at, i, Event::cancellable(i, &tw));
            tokens.push((th, tw));
        } else {
            heap.schedule(at, i, Event::new(i));
            wheel.schedule(at, i, Event::new(i));
        }
    }
    for (th, tw) in &tokens {
        th.cancel();
        tw.cancel();
    }
    loop {
        let peek_h = heap.next_time();
        let peek_w = wheel.next_time();
        assert_eq!(peek_h, peek_w);
        let pop_h = heap.pop_next();
        let pop_w = wheel.pop_next();
        assert_eq!(pop_h, pop_w);
        match pop_h {
            Some((t, s, _)) => {
                assert_eq!(peek_h, Some(t));
                assert!(s % 3 != 0, "cancelled events must never surface");
            }
            None => {
                assert_eq!(peek_h, None);
                break;
            }
        }
    }
}

/// Equal-time FIFO: a burst at one instant pops in schedule order from
/// both queues, interleaved with a second burst at a later instant.
#[test]
fn equal_time_bursts_pop_in_fifo_order() {
    let mut heap: HeapQueue<u64> = HeapQueue::default();
    let mut wheel: WheelQueue<u64> = WheelQueue::new();
    let t0 = SimTime::from_us(10.0);
    let t1 = t0 + Duration::from_us(0.25); // same wheel tick as t0
    for i in 0..64u64 {
        let at = if i % 2 == 0 { t0 } else { t1 };
        heap.schedule(at, i, Event::new(i));
        wheel.schedule(at, i, Event::new(i));
    }
    let mut last = (SimTime::ZERO, 0u64);
    for _ in 0..64 {
        let h = heap.pop_next().unwrap();
        let w = wheel.pop_next().unwrap();
        assert_eq!(h, w);
        assert!((h.0, h.1) > last || last == (SimTime::ZERO, 0));
        last = (h.0, h.1);
    }
}
