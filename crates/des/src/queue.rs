//! The engine's pending-event set, abstracted.
//!
//! [`EventQueue`] is the seam between the [`crate::Engine`]'s
//! scheduling semantics and the data structure holding pending events.
//! Two implementations ship:
//!
//! * [`HeapQueue`] — the original `BinaryHeap`, O(log n) per
//!   operation, the default so existing call sites and golden
//!   snapshots are untouched;
//! * [`WheelQueue`] — a hierarchical timing wheel
//!   ([`crate::wheel::TickWheel`]) with O(1) near-horizon scheduling,
//!   the engine for million-participant episodes.
//!
//! # Ordering contract
//!
//! Both implementations observe the same hard contract, stated here
//! once and tested differentially: events pop in ascending
//! `(time, seq)` order — **FIFO at equal time** — where `seq` is the
//! engine's monotone scheduling sequence number. Two events at the
//! same `SimTime` fire in the order they were scheduled, bit-for-bit
//! identically across queue implementations, which is what lets the
//! `scale` experiment swap the wheel in under every golden snapshot.
//!
//! # Cancellation
//!
//! Cancellation is lazy: a cancelled event stays in the queue as a
//! *tombstone* until the structure touches it, at which point it is
//! reaped (dropped and subtracted from the shared ledger). The
//! [`Cancellation`] token carries the accounting: it counts how many
//! queued events it guards, and `cancel()` moves that count onto a
//! ledger shared with the engine, so `Engine::events_pending()` can
//! report live events exactly even while tombstones are physically
//! present. Both implementations reap tombstones wherever they touch
//! them — the heap on pop/peek, the wheel additionally on every
//! cascade — and [`EventQueue::compact`] purges them eagerly when the
//! engine decides they outnumber live events.

use crate::time::SimTime;
use crate::wheel::TickWheel;
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Shared count of queued-but-cancelled events (tombstones). The
/// engine owns one ledger and threads it into every token it creates;
/// `queue.len() - ledger` is then the exact live pending count.
pub(crate) type Ledger = Rc<Cell<u64>>;

#[derive(Debug)]
struct CancelInner {
    cancelled: Cell<bool>,
    /// Events currently queued under this token.
    queued: Cell<u64>,
    ledger: Ledger,
}

/// Token disarming a cancellable or periodic event (see
/// [`crate::Engine::schedule_cancellable`]). Cloneable; any clone
/// cancels all events scheduled under the token.
#[derive(Debug, Clone)]
pub struct Cancellation {
    inner: Rc<CancelInner>,
}

impl Default for Cancellation {
    fn default() -> Self {
        Self::with_ledger(Rc::new(Cell::new(0)))
    }
}

impl Cancellation {
    /// A standalone token (not tied to an engine's pending count).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token whose tombstones are counted on `ledger`.
    pub(crate) fn with_ledger(ledger: Ledger) -> Self {
        Self {
            inner: Rc::new(CancelInner {
                cancelled: Cell::new(false),
                queued: Cell::new(0),
                ledger,
            }),
        }
    }

    /// Disarms the associated event(s). Queued events become
    /// tombstones: invisible to `pop`, excluded from the engine's
    /// pending count, physically reclaimed when the queue next
    /// touches (or compacts) them.
    pub fn cancel(&self) {
        if !self.inner.cancelled.get() {
            self.inner.cancelled.set(true);
            let l = &self.inner.ledger;
            l.set(l.get() + self.inner.queued.get());
        }
    }

    /// Whether the event has been disarmed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.get()
    }

    /// Records one more queued event under this token. Events queued
    /// after cancellation are born dead and charged immediately.
    fn attach(&self) {
        self.inner.queued.set(self.inner.queued.get() + 1);
        if self.inner.cancelled.get() {
            let l = &self.inner.ledger;
            l.set(l.get() + 1);
        }
    }

    /// A guarded event left the queue alive (popped for execution).
    fn note_popped_live(&self) {
        self.inner.queued.set(self.inner.queued.get() - 1);
    }

    /// A tombstone was physically reclaimed.
    fn note_reaped(&self) {
        self.inner.queued.set(self.inner.queued.get() - 1);
        let l = &self.inner.ledger;
        l.set(l.get() - 1);
    }
}

/// A queued event: payload plus optional cancellation token.
///
/// The engine wraps its type-erased actions in this; queues only ever
/// inspect the token (to reap tombstones) and move the payload.
pub struct Event<T> {
    payload: T,
    cancel: Option<Cancellation>,
}

impl<T> Event<T> {
    /// A plain, non-cancellable event.
    pub fn new(payload: T) -> Self {
        Self {
            payload,
            cancel: None,
        }
    }

    /// An event guarded by `token`; registers itself on the token's
    /// queued count so lazy-cancel accounting stays exact.
    pub fn cancellable(payload: T, token: &Cancellation) -> Self {
        token.attach();
        Self {
            payload,
            cancel: Some(token.clone()),
        }
    }

    /// Whether the guarding token (if any) has been cancelled.
    fn is_tombstone(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.is_cancelled())
    }

    /// Reclaims a tombstone in place (the caller drops the event).
    fn reap_in_place(&self) {
        if let Some(c) = &self.cancel {
            c.note_reaped();
        }
    }

    /// Consumes a live event, yielding the payload.
    fn consume(self) -> T {
        if let Some(c) = &self.cancel {
            c.note_popped_live();
        }
        self.payload
    }
}

/// The pending-event set behind [`crate::Engine`].
///
/// # Contract
///
/// * `pop_next` returns **live** events in strictly ascending
///   `(time, seq)` order — FIFO at equal time. Tombstones (events
///   whose [`Cancellation`] fired) are never returned; they are
///   reaped silently and identically by every implementation, so two
///   implementations fed the same schedule/cancel sequence pop the
///   same events at the same times in the same order.
/// * `seq` values are distinct per queue (the engine's monotone
///   counter); implementations may rely on `(time, seq)` being a
///   total order.
/// * `len` counts physical entries **including** unreaped tombstones;
///   the engine subtracts its tombstone ledger to report live counts.
/// * `next_time` may mutate (reap through) the structure; it returns
///   the time `pop_next` would pop next.
pub trait EventQueue<T> {
    /// Enqueues `ev` at absolute time `at` with tie-break `seq`.
    fn schedule(&mut self, at: SimTime, seq: u64, ev: Event<T>);

    /// Removes and returns the earliest live event, reaping any
    /// tombstones encountered on the way.
    fn pop_next(&mut self) -> Option<(SimTime, u64, T)>;

    /// The time of the earliest live event, reaping tombstones ahead
    /// of it.
    fn next_time(&mut self) -> Option<SimTime>;

    /// Physical entries held, including unreaped tombstones.
    fn len(&self) -> usize;

    /// Whether the queue holds no physical entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Eagerly reaps every tombstone, bounding memory at O(live).
    fn compact(&mut self);
}

struct HeapEntry<T> {
    at: SimTime,
    seq: u64,
    ev: Event<T>,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// The original binary-heap pending-event set: O(log n) per
/// operation, no setup cost, the engine's default.
pub struct HeapQueue<T> {
    heap: BinaryHeap<Reverse<HeapEntry<T>>>,
}

impl<T> Default for HeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HeapQueue<T> {
    /// An empty heap queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
        }
    }

    /// An empty heap queue sized for `events` pending entries.
    pub fn with_capacity(events: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(events),
        }
    }
}

impl<T> EventQueue<T> for HeapQueue<T> {
    fn schedule(&mut self, at: SimTime, seq: u64, ev: Event<T>) {
        self.heap.push(Reverse(HeapEntry { at, seq, ev }));
    }

    fn pop_next(&mut self) -> Option<(SimTime, u64, T)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if entry.ev.is_tombstone() {
                entry.ev.reap_in_place();
                continue;
            }
            return Some((entry.at, entry.seq, entry.ev.consume()));
        }
        None
    }

    fn next_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if !entry.ev.is_tombstone() {
                return Some(entry.at);
            }
            let Reverse(dead) = self.heap.pop().expect("peeked");
            dead.ev.reap_in_place();
        }
        None
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn compact(&mut self) {
        if self.heap.iter().any(|Reverse(e)| e.ev.is_tombstone()) {
            let kept: Vec<Reverse<HeapEntry<T>>> = self
                .heap
                .drain()
                .filter(|Reverse(e)| {
                    if e.ev.is_tombstone() {
                        e.ev.reap_in_place();
                        false
                    } else {
                        true
                    }
                })
                .collect();
            self.heap = BinaryHeap::from(kept);
        }
    }
}

struct WheelEntry<T> {
    at: SimTime,
    seq: u64,
    ev: Event<T>,
}

/// Timing-wheel pending-event set: O(1) scheduling and popping for
/// the near-horizon events that dominate barrier episodes, an
/// overflow heap for far-future ones (including the `+∞` "never"
/// sentinel), and tombstone reaping folded into every wheel cascade.
///
/// Time is quantized to ticks of `resolution_us`; events sharing a
/// tick live in one bucket and are ordered exactly by `(time, seq)`
/// when the bucket is drained, so quantization never perturbs the
/// pop order — only the constant factors.
pub struct WheelQueue<T> {
    wheel: TickWheel<WheelEntry<T>>,
    /// The currently drained bucket, sorted *descending* by
    /// `(at, seq)` so popping is `Vec::pop` from the back.
    bucket: Vec<WheelEntry<T>>,
    /// Tick the current bucket was drained at.
    bucket_tick: u64,
    resolution_us: f64,
    scratch: Vec<WheelEntry<T>>,
}

impl<T> Default for WheelQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WheelQueue<T> {
    /// Default tick resolution: 1 µs — comfortably finer than the
    /// paper's `t_c = 20 µs` service times, with a `2⁴²` µs ≈ 50-day
    /// wheel horizon before the overflow tier engages.
    pub const DEFAULT_RESOLUTION_US: f64 = 1.0;

    /// A wheel queue at the default resolution.
    pub fn new() -> Self {
        Self::with_resolution(Self::DEFAULT_RESOLUTION_US)
    }

    /// A wheel queue with ticks of `resolution_us` microseconds.
    ///
    /// # Panics
    ///
    /// Panics unless `resolution_us` is finite and positive.
    pub fn with_resolution(resolution_us: f64) -> Self {
        assert!(
            resolution_us.is_finite() && resolution_us > 0.0,
            "wheel resolution must be finite and positive, got {resolution_us}"
        );
        Self {
            wheel: TickWheel::new(),
            bucket: Vec::new(),
            bucket_tick: 0,
            resolution_us,
            scratch: Vec::new(),
        }
    }

    /// Monotone quantization of time to a wheel tick. The `as u64`
    /// cast saturates: negative → 0, `+∞` → `u64::MAX`, which routes
    /// "never" events to the overflow tier.
    fn tick_of(&self, at: SimTime) -> u64 {
        (at.as_us() / self.resolution_us) as u64
    }

    /// Refills `bucket` from the wheel's earliest tick, reaping
    /// tombstones the wheel touches. Returns `false` if nothing
    /// remains anywhere.
    fn load_bucket(&mut self) -> bool {
        debug_assert!(self.bucket.is_empty());
        let mut keep = |e: &WheelEntry<T>| {
            if e.ev.is_tombstone() {
                e.ev.reap_in_place();
                false
            } else {
                true
            }
        };
        let Some(tick) = self.wheel.drain_next(&mut keep, &mut self.scratch) else {
            return false;
        };
        // Exact order within the tick: descending (at, seq) so the
        // earliest pops from the back.
        self.scratch
            .sort_by(|a, b| b.at.cmp(&a.at).then(b.seq.cmp(&a.seq)));
        std::mem::swap(&mut self.bucket, &mut self.scratch);
        self.bucket_tick = tick;
        true
    }
}

impl<T> EventQueue<T> for WheelQueue<T> {
    fn schedule(&mut self, at: SimTime, seq: u64, ev: Event<T>) {
        let tick = self.tick_of(at);
        let entry = WheelEntry { at, seq, ev };
        // An event landing on the tick currently being drained must
        // join the live bucket — the wheel has already advanced past
        // that tick. (Causality caps it to the current tick; the
        // binary insert keeps the bucket's descending order.)
        if !self.bucket.is_empty() && tick <= self.bucket_tick {
            let pos = self
                .bucket
                .partition_point(|e| (e.at, e.seq) > (entry.at, entry.seq));
            self.bucket.insert(pos, entry);
        } else {
            self.wheel.insert(tick, entry);
        }
    }

    fn pop_next(&mut self) -> Option<(SimTime, u64, T)> {
        loop {
            match self.bucket.pop() {
                Some(entry) if entry.ev.is_tombstone() => entry.ev.reap_in_place(),
                Some(entry) => return Some((entry.at, entry.seq, entry.ev.consume())),
                None => {
                    if !self.load_bucket() {
                        return None;
                    }
                }
            }
        }
    }

    fn next_time(&mut self) -> Option<SimTime> {
        loop {
            match self.bucket.last() {
                Some(entry) if entry.ev.is_tombstone() => {
                    self.bucket.pop().expect("checked").ev.reap_in_place();
                }
                Some(entry) => return Some(entry.at),
                None => {
                    if !self.load_bucket() {
                        return None;
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.bucket.len() + self.wheel.len()
    }

    fn compact(&mut self) {
        self.bucket.retain(|e| {
            if e.ev.is_tombstone() {
                e.ev.reap_in_place();
                false
            } else {
                true
            }
        });
        self.wheel.compact(&mut |e: &WheelEntry<T>| {
            if e.ev.is_tombstone() {
                e.ev.reap_in_place();
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queues() -> Vec<(&'static str, Box<dyn EventQueue<u32>>)> {
        vec![
            ("heap", Box::new(HeapQueue::new())),
            ("wheel", Box::new(WheelQueue::new())),
        ]
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        for (name, mut q) in queues() {
            q.schedule(SimTime::from_us(5.0), 0, Event::new(50));
            q.schedule(SimTime::from_us(1.0), 1, Event::new(10));
            q.schedule(SimTime::from_us(5.0), 2, Event::new(52));
            q.schedule(SimTime::from_us(5.2), 3, Event::new(53));
            q.schedule(SimTime::from_us(1.0), 4, Event::new(11));
            let mut got = Vec::new();
            while let Some((_, _, v)) = q.pop_next() {
                got.push(v);
            }
            assert_eq!(got, vec![10, 11, 50, 52, 53], "{name}");
        }
    }

    #[test]
    fn sub_resolution_times_keep_exact_order() {
        // Times inside one wheel tick (resolution 1 µs) must still
        // pop by exact (time, seq).
        for (name, mut q) in queues() {
            q.schedule(SimTime::from_us(0.9), 0, Event::new(9));
            q.schedule(SimTime::from_us(0.1), 1, Event::new(1));
            q.schedule(SimTime::from_us(0.5), 2, Event::new(5));
            let mut got = Vec::new();
            while let Some((t, _, v)) = q.pop_next() {
                got.push((t.as_us() * 10.0) as u32);
                got.push(v);
            }
            assert_eq!(got, vec![1, 1, 5, 5, 9, 9], "{name}");
        }
    }

    #[test]
    fn tombstones_are_invisible_and_reaped() {
        for (name, mut q) in queues() {
            let ledger: Ledger = Rc::new(Cell::new(0));
            let token = Cancellation::with_ledger(ledger.clone());
            q.schedule(SimTime::from_us(1.0), 0, Event::cancellable(100, &token));
            q.schedule(SimTime::from_us(2.0), 1, Event::new(2));
            q.schedule(SimTime::from_us(3.0), 2, Event::cancellable(300, &token));
            token.cancel();
            assert_eq!(ledger.get(), 2, "{name}: both queued events charged");
            assert_eq!(q.len(), 3, "{name}: physically still present");
            assert_eq!(q.next_time(), Some(SimTime::from_us(2.0)), "{name}");
            let popped: Vec<u32> = std::iter::from_fn(|| q.pop_next().map(|(_, _, v)| v)).collect();
            assert_eq!(popped, vec![2], "{name}");
            assert_eq!(ledger.get(), 0, "{name}: reaping repays the ledger");
            assert_eq!(q.len(), 0, "{name}");
        }
    }

    #[test]
    fn events_attached_after_cancel_are_born_dead() {
        for (name, mut q) in queues() {
            let ledger: Ledger = Rc::new(Cell::new(0));
            let token = Cancellation::with_ledger(ledger.clone());
            token.cancel();
            q.schedule(SimTime::from_us(1.0), 0, Event::cancellable(1, &token));
            assert_eq!(ledger.get(), 1, "{name}");
            assert_eq!(q.pop_next(), None, "{name}");
            assert_eq!(ledger.get(), 0, "{name}");
        }
    }

    #[test]
    fn compact_reclaims_tombstones_eagerly() {
        for (name, mut q) in queues() {
            let ledger: Ledger = Rc::new(Cell::new(0));
            let token = Cancellation::with_ledger(ledger.clone());
            for i in 0..1000u64 {
                q.schedule(
                    SimTime::from_us(10_000.0 + i as f64),
                    i,
                    Event::cancellable(i as u32, &token),
                );
            }
            q.schedule(SimTime::from_us(50.0), 2000, Event::new(7));
            token.cancel();
            assert_eq!(q.len(), 1001, "{name}");
            q.compact();
            assert_eq!(q.len(), 1, "{name}: only the live event survives");
            assert_eq!(ledger.get(), 0, "{name}");
            assert_eq!(
                q.pop_next(),
                Some((SimTime::from_us(50.0), 2000, 7)),
                "{name}"
            );
        }
    }

    #[test]
    fn infinity_is_a_far_future_event_not_an_error() {
        for (name, mut q) in queues() {
            q.schedule(SimTime::from_us(f64::INFINITY), 0, Event::new(99));
            q.schedule(SimTime::from_us(1.0), 1, Event::new(1));
            assert_eq!(q.pop_next().map(|(_, _, v)| v), Some(1), "{name}");
            assert_eq!(q.pop_next().map(|(_, _, v)| v), Some(99), "{name}");
        }
    }

    #[test]
    fn schedule_onto_the_draining_tick_joins_the_bucket() {
        let mut q: WheelQueue<u32> = WheelQueue::new();
        q.schedule(SimTime::from_us(5.0), 0, Event::new(0));
        q.schedule(SimTime::from_us(5.5), 1, Event::new(1));
        // Pop the first event of tick 5; the bucket now holds (5.5, 1).
        assert_eq!(q.pop_next(), Some((SimTime::from_us(5.0), 0, 0)));
        // Schedule back onto the in-flight tick, between the popped and
        // the pending event — exact order must hold.
        q.schedule(SimTime::from_us(5.2), 2, Event::new(2));
        assert_eq!(q.pop_next(), Some((SimTime::from_us(5.2), 2, 2)));
        assert_eq!(q.pop_next(), Some((SimTime::from_us(5.5), 1, 1)));
    }

    #[test]
    fn wheel_resolution_is_validated() {
        assert!(std::panic::catch_unwind(|| WheelQueue::<u32>::with_resolution(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| WheelQueue::<u32>::with_resolution(f64::NAN)).is_err());
        let _ = WheelQueue::<u32>::with_resolution(0.25);
    }
}
