//! Discrete-event simulation engine for the `combar` barrier study.
//!
//! The paper obtains its optimal-degree tables with "a conventional
//! event driven simulator" in which "the contention for updating the
//! counters was accounted for". This crate is that simulator's core,
//! built from scratch:
//!
//! * [`SimTime`] / [`Duration`] — totally ordered `f64` microseconds
//!   (the study's natural unit; `t_c = 20 µs` on the KSR1);
//! * [`Engine`] — a deterministic pending-event set with
//!   `(time, sequence)` ordering and closure handlers over user state,
//!   behind the [`EventQueue`] seam: the default [`HeapQueue`] or the
//!   hierarchical timing-wheel [`WheelQueue`] for p ≥ 2¹⁴ episodes
//!   (pick with [`EngineConfig`]);
//! * [`FifoServer`] — the contention model for a lock-protected counter
//!   (serve one update of `t_c` at a time, FIFO), generalized to
//!   capacity `c` by [`Resource`];
//! * [`trace`] — bounded tracing for debugging barrier episodes;
//! * [`fault`] — episode-indexed fault timelines (stalls, deaths) so
//!   simulated degradation can mirror the runtime chaos harness.
//!
//! # Example: three processors hitting one counter
//!
//! ```
//! use combar_des::{Engine, FifoServer, SimTime, Duration};
//!
//! struct St { counter: FifoServer, releases: Vec<f64> }
//! let mut eng = Engine::new(St { counter: FifoServer::new(), releases: vec![] });
//! for arrival in [0.0, 0.0, 5.0] {
//!     eng.schedule_at(SimTime::from_us(arrival), move |e| {
//!         let now = e.now();
//!         let svc = e.state.counter.serve(now, Duration::from_us(20.0));
//!         e.state.releases.push(svc.finish.as_us());
//!     });
//! }
//! eng.run();
//! assert_eq!(eng.state.releases, vec![20.0, 40.0, 60.0]); // serialized
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod queue;
pub mod resource;
pub mod server;
pub mod time;
pub mod trace;
pub mod wheel;

pub use engine::{Cancellation, Engine, EngineConfig, QueueKind};
pub use fault::{FaultSpec, FaultTimeline, SimFault};
pub use queue::{Event, EventQueue, HeapQueue, WheelQueue};
pub use resource::Resource;
pub use server::{FifoServer, Service};
pub use time::{Duration, SimTime};
pub use trace::{Trace, TraceEvent, TraceKind};
pub use wheel::TickWheel;

#[cfg(test)]
mod integration {
    use super::*;

    /// A miniature flat barrier: p processors update one counter; the
    /// last completion is the release. Checks the closed-form answer
    /// release = max(arrival) bounded below by serialized service.
    #[test]
    fn flat_barrier_release_time_matches_closed_form() {
        let tc = Duration::from_us(20.0);
        let arrivals = [0.0f64, 3.0, 3.0, 10.0, 100.0];

        struct St {
            counter: FifoServer,
            release: SimTime,
        }
        let mut eng = Engine::new(St {
            counter: FifoServer::new(),
            release: SimTime::ZERO,
        });
        for &a in &arrivals {
            eng.schedule_at(SimTime::from_us(a), move |e| {
                let now = e.now();
                let svc = e.state.counter.serve(now, tc);
                e.state.release = e.state.release.max(svc.finish);
            });
        }
        eng.run();
        // Manual FIFO walk: 0→20, 3→40, 3→60, 10→80, 100→120.
        assert_eq!(eng.state.release.as_us(), 120.0);
        assert_eq!(eng.state.counter.served(), 5);
    }

    /// Chained service through two levels: completing the first counter
    /// triggers a request on the second. Exercises event-from-event
    /// scheduling with servers.
    #[test]
    fn two_level_chain_propagates_completion_times() {
        let tc = Duration::from_us(20.0);
        struct St {
            leaf: FifoServer,
            root: FifoServer,
            root_finishes: Vec<f64>,
        }
        let mut eng = Engine::new(St {
            leaf: FifoServer::new(),
            root: FifoServer::new(),
            root_finishes: vec![],
        });
        // Two processors hit the leaf simultaneously; each completion
        // propagates to the root.
        for _ in 0..2 {
            eng.schedule_at(SimTime::ZERO, move |e| {
                let now = e.now();
                let svc = e.state.leaf.serve(now, tc);
                e.schedule_at(svc.finish, move |e2| {
                    let n2 = e2.now();
                    let r = e2.state.root.serve(n2, tc);
                    e2.state.root_finishes.push(r.finish.as_us());
                });
            });
        }
        eng.run();
        // Leaf finishes at 20 and 40; root serves 20→40 and 40→60.
        assert_eq!(eng.state.root_finishes, vec![40.0, 60.0]);
    }
}
