//! Lightweight event tracing for debugging and tests.

use crate::time::SimTime;
use std::fmt;

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub time: SimTime,
    /// Entity the event concerns (processor id, counter id, …).
    pub subject: u32,
    /// What happened.
    pub kind: TraceKind,
}

/// Kinds of traced events in barrier simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Processor arrived at the barrier.
    Arrive,
    /// Processor began updating a counter (the payload is the counter).
    UpdateStart(u32),
    /// Processor finished updating a counter.
    UpdateEnd(u32),
    /// Barrier released all processors.
    Release,
    /// Dynamic placement swapped a processor to a new counter.
    Swap(u32),
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TraceKind::Arrive => write!(f, "{} p{} arrive", self.time, self.subject),
            TraceKind::UpdateStart(c) => {
                write!(f, "{} p{} update-start c{}", self.time, self.subject, c)
            }
            TraceKind::UpdateEnd(c) => {
                write!(f, "{} p{} update-end c{}", self.time, self.subject, c)
            }
            TraceKind::Release => write!(f, "{} release", self.time),
            TraceKind::Swap(c) => write!(f, "{} p{} swap->c{}", self.time, self.subject, c),
        }
    }
}

/// A bounded in-memory trace buffer.
///
/// When the capacity is reached further records are counted but
/// dropped, so enabling tracing on a 4096-processor run cannot exhaust
/// memory.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace buffer holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event.
    pub fn record(&mut self, time: SimTime, subject: u32, kind: TraceKind) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent {
                time,
                subject,
                kind,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of records dropped after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Converts the simulated trace into the unified `combar-trace`
    /// event schema, so simulated and measured (runtime) timelines are
    /// directly diffable and feed the same critical-path extraction.
    ///
    /// Mapping: `UpdateStart`/`UpdateEnd` become
    /// `CombineStart`/`CombineEnd`; `at` is virtual time in integer
    /// nanoseconds; episodes are numbered from 1 by counting `Release`
    /// records (a release closes its own episode).
    pub fn to_unified(&self) -> Vec<combar_trace::Event> {
        let mut episode = 1u32;
        let mut out = Vec::with_capacity(self.events.len());
        for ev in &self.events {
            let kind = match ev.kind {
                TraceKind::Arrive => combar_trace::Kind::Arrive,
                TraceKind::UpdateStart(c) => combar_trace::Kind::CombineStart(c),
                TraceKind::UpdateEnd(c) => combar_trace::Kind::CombineEnd(c),
                TraceKind::Release => combar_trace::Kind::Release,
                TraceKind::Swap(c) => combar_trace::Kind::Swap(c),
            };
            out.push(combar_trace::Event {
                episode,
                tid: ev.subject,
                at: (ev.time.as_us() * 1e3) as u64,
                kind,
            });
            if ev.kind == TraceKind::Release {
                episode += 1;
            }
        }
        out
    }

    /// Renders the trace, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&format!("{ev}\n"));
        }
        if self.dropped > 0 {
            out.push_str(&format!("... {} events dropped\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_unified_maps_schema_and_numbers_episodes() {
        let mut t = Trace::new(16);
        t.record(SimTime::from_us(1.0), 0, TraceKind::Arrive);
        t.record(SimTime::from_us(2.0), 0, TraceKind::UpdateStart(3));
        t.record(SimTime::from_us(22.0), 0, TraceKind::UpdateEnd(3));
        t.record(SimTime::from_us(22.0), 0, TraceKind::Release);
        t.record(SimTime::from_us(30.0), 1, TraceKind::Swap(7));
        let u = t.to_unified();
        assert_eq!(u.len(), 5);
        assert_eq!(u[0].kind, combar_trace::Kind::Arrive);
        assert_eq!(u[1].kind, combar_trace::Kind::CombineStart(3));
        assert_eq!(u[2].kind, combar_trace::Kind::CombineEnd(3));
        assert_eq!(u[2].at, 22_000);
        assert_eq!(u[3].kind, combar_trace::Kind::Release);
        assert_eq!(u[3].episode, 1, "the release closes its own episode");
        assert_eq!(u[4].kind, combar_trace::Kind::Swap(7));
        assert_eq!(u[4].episode, 2, "post-release events start the next");
    }

    #[test]
    fn records_until_capacity_then_counts_drops() {
        let mut t = Trace::new(2);
        t.record(SimTime::from_us(1.0), 0, TraceKind::Arrive);
        t.record(SimTime::from_us(2.0), 1, TraceKind::Arrive);
        t.record(SimTime::from_us(3.0), 2, TraceKind::Arrive);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        assert!(t.render().contains("1 events dropped"));
    }

    #[test]
    fn display_covers_all_kinds() {
        let cases = [
            (TraceKind::Arrive, "arrive"),
            (TraceKind::UpdateStart(3), "update-start c3"),
            (TraceKind::UpdateEnd(3), "update-end c3"),
            (TraceKind::Release, "release"),
            (TraceKind::Swap(7), "swap->c7"),
        ];
        for (kind, needle) in cases {
            let ev = TraceEvent {
                time: SimTime::from_us(0.0),
                subject: 1,
                kind,
            };
            assert!(format!("{ev}").contains(needle), "{ev}");
        }
    }
}
