//! Simulation time.
//!
//! Time is a totally ordered `f64` measured in **microseconds** — the
//! natural unit for this study, where the counter update cost on the
//! KSR1 is `t_c = 20 µs` and arrival spreads range from fractions of a
//! microsecond to tens of milliseconds. The wrapper provides a total
//! order (via `f64::total_cmp`), which the event queue requires, and
//! rejects NaN at construction so ordering anomalies cannot enter the
//! simulation.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulation time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// The "never" sentinel: later than every finite time. Event
    /// queues accept it (the wheel routes it to its overflow tier),
    /// so a never-firing watchdog is an ordinary scheduled event.
    pub const NEVER: SimTime = SimTime(f64::INFINITY);

    /// Creates a time point from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is NaN (infinities are allowed: `+∞` is a useful
    /// "never" sentinel).
    #[inline]
    pub fn from_us(us: f64) -> Self {
        assert!(!us.is_nan(), "SimTime cannot be NaN");
        SimTime(us)
    }

    /// Creates a time point from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        Self::from_us(ms * 1e3)
    }

    /// The value in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 / 1e3
    }

    /// The later of two time points.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two time points.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A span of simulation time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Duration(f64);

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0.0);

    /// Creates a span from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is NaN or negative.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        assert!(
            !us.is_nan() && us >= 0.0,
            "Duration must be non-negative, got {us}"
        );
        Duration(us)
    }

    /// Creates a span from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        Self::from_us(ms * 1e3)
    }

    /// The span in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0
    }

    /// The span in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 / 1e3
    }

    /// Multiplies the span by a non-negative scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Duration {
        Duration::from_us(self.0 * k)
    }
}

impl Eq for Duration {}

impl Ord for Duration {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Duration {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime::from_us(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// Elapsed time between two points.
    ///
    /// # Panics
    ///
    /// Panics (in the `Duration` constructor) if `rhs` is later than
    /// `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_us(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}µs", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}µs", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(SimTime::from_ms(1.5).as_us(), 1500.0);
        assert_eq!(SimTime::from_us(2000.0).as_ms(), 2.0);
        assert_eq!(Duration::from_ms(0.02).as_us(), 20.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let _ = SimTime::from_us(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        let _ = Duration::from_us(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_us(1.0);
        let b = SimTime::from_us(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::from_us(f64::INFINITY) > b);
        assert!(SimTime::NEVER > b);
        assert_eq!(SimTime::NEVER.max(b), SimTime::NEVER);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_us(10.0) + Duration::from_us(5.0);
        assert_eq!(t.as_us(), 15.0);
        let d = t - SimTime::from_us(4.0);
        assert_eq!(d.as_us(), 11.0);
        let mut acc = Duration::ZERO;
        acc += Duration::from_us(3.0);
        acc += Duration::from_us(4.0);
        assert_eq!(acc.as_us(), 7.0);
        assert_eq!(Duration::from_us(4.0).scale(2.5).as_us(), 10.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn backwards_subtraction_panics() {
        let _ = SimTime::from_us(1.0) - SimTime::from_us(2.0);
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimTime::from_us(1.5)), "1.500µs");
        assert_eq!(format!("{}", Duration::from_us(20.0)), "20.000µs");
    }
}
