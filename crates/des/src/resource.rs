//! Multi-server FIFO resource.
//!
//! Generalizes [`crate::FifoServer`] to capacity `c`: up to `c`
//! requests in service simultaneously, FIFO dispatch. In the barrier
//! study this models contention points that are not fully serialized —
//! e.g. a KSR1 ring segment that can carry a small number of
//! concurrent sub-line transfers — and it gives the DES substrate the
//! standard M/M/c-style building block any queueing study needs.

use crate::server::Service;
use crate::time::{Duration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A FIFO resource with `capacity` identical servers.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Completion times of in-service requests (min-heap).
    busy: BinaryHeap<Reverse<SimTime>>,
    capacity: usize,
    last_arrival: SimTime,
    /// Earliest time a *new* request could begin service if all servers
    /// are busy; tracked as the queue's virtual dispatch clock.
    queue_free_at: SimTime,
    served: u64,
    total_wait: Duration,
    total_service: Duration,
}

impl Resource {
    /// Creates an idle resource with the given number of servers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "resource needs at least one server");
        Self {
            busy: BinaryHeap::with_capacity(capacity),
            capacity,
            last_arrival: SimTime::ZERO,
            queue_free_at: SimTime::ZERO,
            served: 0,
            total_wait: Duration::ZERO,
            total_service: Duration::ZERO,
        }
    }

    /// Number of servers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Serves a request arriving at `arrival` needing `service` time.
    /// Requests must arrive in nondecreasing time order (as the DES
    /// engine guarantees).
    ///
    /// # Panics
    ///
    /// Panics in debug builds on out-of-order arrivals.
    pub fn serve(&mut self, arrival: SimTime, service: Duration) -> Service {
        debug_assert!(
            arrival >= self.last_arrival,
            "resource requires nondecreasing arrivals"
        );
        self.last_arrival = arrival;
        // Retire servers that finished by `arrival`.
        while let Some(&Reverse(t)) = self.busy.peek() {
            if t <= arrival {
                self.busy.pop();
            } else {
                break;
            }
        }
        let start = if self.busy.len() < self.capacity {
            arrival
        } else {
            // All servers busy: wait for the earliest completion, but
            // never before any earlier queued dispatch (FIFO).
            let earliest = self.busy.pop().map(|Reverse(t)| t).expect("nonempty");
            earliest.max(self.queue_free_at)
        };
        let finish = start + service;
        self.busy.push(Reverse(finish));
        self.queue_free_at = start;
        self.served += 1;
        self.total_wait += start - arrival;
        self.total_service += service;
        Service {
            arrival,
            start,
            finish,
        }
    }

    /// Number of requests currently in service at time `t` (after
    /// retiring completions).
    pub fn in_service_at(&self, t: SimTime) -> usize {
        self.busy.iter().filter(|&&Reverse(f)| f > t).count()
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Sum of queueing delays.
    pub fn total_wait(&self) -> Duration {
        self.total_wait
    }

    /// Sum of service times.
    pub fn total_service(&self) -> Duration {
        self.total_service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_one_matches_fifo_server() {
        use crate::server::FifoServer;
        let mut r = Resource::new(1);
        let mut s = FifoServer::new();
        let arrivals = [0.0f64, 0.0, 5.0, 100.0, 100.0, 101.0];
        for &a in &arrivals {
            let sa = s.serve(SimTime::from_us(a), Duration::from_us(20.0));
            let ra = r.serve(SimTime::from_us(a), Duration::from_us(20.0));
            assert_eq!(sa.start, ra.start, "arrival {a}");
            assert_eq!(sa.finish, ra.finish, "arrival {a}");
        }
        assert_eq!(r.total_wait().as_us(), s.total_wait().as_us());
    }

    #[test]
    fn two_servers_run_two_concurrently() {
        let mut r = Resource::new(2);
        let d = Duration::from_us(20.0);
        let a = r.serve(SimTime::ZERO, d);
        let b = r.serve(SimTime::ZERO, d);
        let c = r.serve(SimTime::ZERO, d);
        assert_eq!(a.start.as_us(), 0.0);
        assert_eq!(b.start.as_us(), 0.0); // second server
        assert_eq!(c.start.as_us(), 20.0); // queued behind the first completion
        assert_eq!(c.finish.as_us(), 40.0);
        assert_eq!(r.served(), 3);
    }

    #[test]
    fn servers_are_reused_after_completion() {
        let mut r = Resource::new(2);
        let d = Duration::from_us(10.0);
        r.serve(SimTime::from_us(0.0), d); // 0–10
        r.serve(SimTime::from_us(0.0), d); // 0–10
        let late = r.serve(SimTime::from_us(50.0), d);
        assert_eq!(late.start.as_us(), 50.0, "both servers idle again");
        assert_eq!(r.in_service_at(SimTime::from_us(55.0)), 1);
        assert_eq!(r.in_service_at(SimTime::from_us(65.0)), 0);
    }

    #[test]
    fn fifo_order_is_preserved_under_mixed_service_times() {
        // Two long jobs occupy both servers; three short jobs queue and
        // must start in arrival order even though completions free
        // servers out of order.
        let mut r = Resource::new(2);
        r.serve(SimTime::from_us(0.0), Duration::from_us(100.0)); // 0–100
        r.serve(SimTime::from_us(1.0), Duration::from_us(10.0)); // 1–11
        let q1 = r.serve(SimTime::from_us(2.0), Duration::from_us(5.0));
        let q2 = r.serve(SimTime::from_us(3.0), Duration::from_us(5.0));
        assert_eq!(q1.start.as_us(), 11.0);
        assert!(q2.start >= q1.start, "FIFO dispatch order");
    }

    #[test]
    fn large_capacity_never_queues() {
        let mut r = Resource::new(64);
        for i in 0..50 {
            let svc = r.serve(SimTime::from_us(i as f64 * 0.1), Duration::from_us(500.0));
            assert_eq!(svc.queueing_delay().as_us(), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_capacity_rejected() {
        let _ = Resource::new(0);
    }
}
