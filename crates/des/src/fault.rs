//! Fault timelines for simulated barrier studies.
//!
//! The runtime side of the repository injects faults with
//! `combar-chaos`; this module is its DES mirror: a passive,
//! deterministic description of *when* simulated processors stall or
//! die, consumable by any episode-structured model (the `combar-sim`
//! episode runner, the bench experiments' degradation tables) plus a
//! small helper to schedule the timeline as engine events.
//!
//! The types are deliberately independent of `combar-chaos` — the DES
//! crates stay dependency-light — and a bridge (chaos plan → fault
//! timeline) lives with the experiments that need both sides.

use crate::engine::Engine;
use crate::time::{Duration, SimTime};

/// What happens to a simulated processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimFault {
    /// Extra service delay before the processor's barrier arrival.
    Stall(Duration),
    /// The processor stops participating from this episode on.
    Death,
    /// The processor resumes participating from this episode on; pairs
    /// with an earlier [`SimFault::Death`] on the same processor to
    /// model churn (dead only on `[death, rejoin)`).
    Rejoin,
}

/// One fault on one processor's episode timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Target processor.
    pub proc: u32,
    /// Episode index at which the fault applies.
    pub episode: u32,
    /// The fault.
    pub fault: SimFault,
}

/// A deterministic set of [`FaultSpec`]s, queryable per (processor,
/// episode) — the shape an episode-driven simulation consumes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultTimeline {
    specs: Vec<FaultSpec>,
}

impl FaultTimeline {
    /// Builds a timeline from arbitrary specs (order irrelevant).
    pub fn new(mut specs: Vec<FaultSpec>) -> Self {
        specs.sort_by_key(|s| (s.proc, s.episode));
        Self { specs }
    }

    /// The specs, sorted by `(proc, episode)`.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Total extra stall delay injected into `proc` at `episode`.
    pub fn stall(&self, proc: u32, episode: u32) -> Duration {
        let mut total = Duration::ZERO;
        for s in &self.specs {
            if s.proc == proc && s.episode == episode {
                if let SimFault::Stall(d) = s.fault {
                    total += d;
                }
            }
        }
        total
    }

    /// The episode at which `proc` dies, if the timeline kills it.
    pub fn death_episode(&self, proc: u32) -> Option<u32> {
        self.specs
            .iter()
            .filter(|s| s.proc == proc && s.fault == SimFault::Death)
            .map(|s| s.episode)
            .min()
    }

    /// The episode at which `proc` comes back after its death, if the
    /// timeline kills it and schedules a rejoin. A rejoin spec at or
    /// before the death episode is ignored — a processor cannot rejoin
    /// before it died.
    pub fn rejoin_episode(&self, proc: u32) -> Option<u32> {
        let died = self.death_episode(proc)?;
        self.specs
            .iter()
            .filter(|s| s.proc == proc && s.fault == SimFault::Rejoin && s.episode > died)
            .map(|s| s.episode)
            .min()
    }

    /// Whether `proc` still participates in `episode`: dead exactly on
    /// `[death, rejoin)`, alive everywhere else.
    pub fn alive(&self, proc: u32, episode: u32) -> bool {
        let Some(died) = self.death_episode(proc) else {
            return true;
        };
        if episode < died {
            return true;
        }
        self.rejoin_episode(proc).is_some_and(|r| episode >= r)
    }

    /// Processors alive in `episode`, out of `p` total.
    pub fn survivors(&self, p: u32, episode: u32) -> u32 {
        (0..p).filter(|&q| self.alive(q, episode)).count() as u32
    }

    /// Derives a stall timeline from a shared-seam work source: for
    /// each of the first `episodes` episodes, every processor whose
    /// sampled work exceeds the source's nominal mean gets a
    /// [`SimFault::Stall`] of the excess. This is the DES-side port of
    /// the repository-wide `combar_work::WorkSource` refactor — the
    /// same seeded model that drives the simulator's episode loop and
    /// the runtime torture harness expresses itself here as
    /// deterministic fault injection, so engine-driven timelines and
    /// episode-driven runs see one consistent notion of "who is slow".
    pub fn from_work_model(
        source: &mut dyn combar_work::WorkSource,
        p: u32,
        episodes: u32,
    ) -> Self {
        let mean = source.mean_us();
        let mut works = vec![0.0f64; p as usize];
        let mut specs = Vec::new();
        for e in 0..episodes {
            source.sample_episode(e, &mut works);
            for (proc, &w) in works.iter().enumerate() {
                if w > mean {
                    specs.push(FaultSpec {
                        proc: proc as u32,
                        episode: e,
                        fault: SimFault::Stall(Duration::from_us(w - mean)),
                    });
                }
            }
        }
        Self::new(specs)
    }
}

/// Schedules every fault of a wall-clock-mapped timeline as an engine
/// event: at `origin + episode · period`, `handler` runs with the
/// engine, the processor and the fault. Use this when the simulation
/// is event-driven rather than episode-looped.
pub fn inject<S, F>(
    eng: &mut Engine<S>,
    timeline: &FaultTimeline,
    origin: SimTime,
    period: Duration,
    handler: F,
) where
    F: Fn(&mut Engine<S>, u32, SimFault) + Clone + 'static,
{
    for spec in timeline.specs() {
        let at = origin + period.scale(spec.episode as f64);
        let h = handler.clone();
        let (proc, fault) = (spec.proc, spec.fault);
        eng.schedule_at(at, move |e| h(e, proc, fault));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline() -> FaultTimeline {
        FaultTimeline::new(vec![
            FaultSpec {
                proc: 2,
                episode: 3,
                fault: SimFault::Death,
            },
            FaultSpec {
                proc: 0,
                episode: 1,
                fault: SimFault::Stall(Duration::from_us(5.0)),
            },
            FaultSpec {
                proc: 0,
                episode: 1,
                fault: SimFault::Stall(Duration::from_us(2.0)),
            },
        ])
    }

    #[test]
    fn stalls_accumulate_per_episode() {
        let t = timeline();
        assert_eq!(t.stall(0, 1), Duration::from_us(7.0));
        assert_eq!(t.stall(0, 2), Duration::ZERO);
        assert_eq!(t.stall(1, 1), Duration::ZERO);
    }

    #[test]
    fn death_bounds_aliveness() {
        let t = timeline();
        assert_eq!(t.death_episode(2), Some(3));
        assert!(t.alive(2, 2));
        assert!(!t.alive(2, 3));
        assert_eq!(t.survivors(4, 2), 4);
        assert_eq!(t.survivors(4, 3), 3);
    }

    #[test]
    fn rejoin_closes_the_dead_window() {
        let t = FaultTimeline::new(vec![
            FaultSpec {
                proc: 1,
                episode: 2,
                fault: SimFault::Death,
            },
            FaultSpec {
                proc: 1,
                episode: 6,
                fault: SimFault::Rejoin,
            },
        ]);
        assert_eq!(t.rejoin_episode(1), Some(6));
        assert!(t.alive(1, 1));
        assert!(!t.alive(1, 2));
        assert!(!t.alive(1, 5));
        assert!(t.alive(1, 6));
        assert_eq!(t.survivors(3, 4), 2);
        assert_eq!(t.survivors(3, 7), 3);
    }

    #[test]
    fn rejoin_without_death_is_inert() {
        let t = FaultTimeline::new(vec![FaultSpec {
            proc: 0,
            episode: 4,
            fault: SimFault::Rejoin,
        }]);
        assert_eq!(t.rejoin_episode(0), None);
        assert!(t.alive(0, 4));
        // A rejoin at or before the death episode is equally inert.
        let t = FaultTimeline::new(vec![
            FaultSpec {
                proc: 0,
                episode: 4,
                fault: SimFault::Death,
            },
            FaultSpec {
                proc: 0,
                episode: 4,
                fault: SimFault::Rejoin,
            },
        ]);
        assert_eq!(t.rejoin_episode(0), None);
        assert!(!t.alive(0, 9));
    }

    /// The bridge from the shared work seam: systemic slow processors
    /// become recurring stalls, and the stall magnitudes are exactly
    /// the work excess over the mean.
    #[test]
    fn from_work_model_stalls_the_slow_processors() {
        use combar_work::WorkSource as _;
        let p = 16u32;
        let mut model = combar_work::WorkModel::systemic(p, 0xde5f, 1000.0, 200.0, 0.0);
        let t = FaultTimeline::from_work_model(&mut model, p, 4);
        assert!(!t.specs().is_empty());
        assert!(t
            .specs()
            .iter()
            .all(|s| matches!(s.fault, SimFault::Stall(_))));
        // With zero noise the systemic bias is constant: a processor
        // stalled in episode 0 is stalled in every episode, by the
        // same amount.
        let mut works = vec![0.0f64; p as usize];
        model.sample_episode(0, &mut works);
        for (proc, &w) in works.iter().enumerate() {
            let expect = Duration::from_us((w - 1000.0).max(0.0));
            for e in 0..4 {
                assert_eq!(t.stall(proc as u32, e), expect, "proc {proc} ep {e}");
            }
        }
        // Everyone stays alive: this bridge only slows, never kills.
        assert_eq!(t.survivors(p, 3), p);
    }

    #[test]
    fn inject_schedules_at_episode_times() {
        let t = timeline();
        let mut eng = Engine::new(Vec::<(f64, u32)>::new());
        inject(
            &mut eng,
            &t,
            SimTime::from_us(10.0),
            Duration::from_us(100.0),
            |e, proc, _| {
                let now = e.now().as_us();
                e.state.push((now, proc));
            },
        );
        eng.run();
        // proc 0 stalls at episode 1 (two specs), proc 2 dies at 3.
        assert_eq!(eng.state, vec![(110.0, 0), (110.0, 0), (310.0, 2)]);
    }
}
