//! A hierarchical timing wheel over integer ticks.
//!
//! This is the shared data structure behind both the DES engine's
//! [`crate::WheelQueue`] and the async runtime's deadline `Timer`: a
//! tiered calendar queue in the classic Varghese–Lauck shape. Seven
//! levels of 64 slots each cover a horizon of `64⁷ = 2⁴²` ticks; an
//! event lands on the level where its tick first differs from the
//! wheel's current position (so near-horizon events — the ones that
//! dominate barrier simulation — get level 0 and O(1) handling), and a
//! binary-heap overflow tier holds everything beyond the horizon,
//! including the `+∞` "never" sentinel.
//!
//! The wheel deliberately does **not** order items *within* one tick:
//! [`TickWheel::drain_next`] hands the caller a whole tick's bucket and
//! the caller imposes its own exact order (the DES sorts by
//! `(SimTime, seq)`, the timer partitions by deadline). Because the
//! tick function is a monotone quantization of time, bucket order is
//! always consistent with time order, so exact total order is
//! recovered by sorting inside each bucket.
//!
//! Lazy cancellation is supported through the `keep` predicate every
//! draining entry point takes: items failing `keep` are dropped — and
//! accounted — wherever the wheel touches them, which includes every
//! cascade of a coarse bucket into finer levels. Tombstones therefore
//! never survive a cascade, and [`TickWheel::compact`] sweeps the
//! whole structure on demand (the queue layer triggers it when
//! tombstones outnumber live items).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bits per level: 64 slots each.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Slot-index mask within a level.
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Number of wheel levels; beyond them lies the overflow heap.
const LEVELS: usize = 7;
/// Ticks covered by the wheels before the overflow tier takes over.
const HORIZON_BITS: u32 = LEVEL_BITS * LEVELS as u32;

/// One wheel level: 64 buckets plus a one-word occupancy bitmap, so
/// finding the next occupied bucket is a rotate plus trailing-zeros.
struct Level<T> {
    occupied: u64,
    slots: [Vec<(u64, T)>; SLOTS],
}

impl<T> Level<T> {
    fn new() -> Self {
        Self {
            occupied: 0,
            slots: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// An overflow-tier entry, ordered by `(tick, insertion order)` so the
/// tier migrates back into the wheels deterministically.
struct Overflow<T> {
    tick: u64,
    ins: u64,
    item: T,
}

impl<T> PartialEq for Overflow<T> {
    fn eq(&self, other: &Self) -> bool {
        self.tick == other.tick && self.ins == other.ins
    }
}
impl<T> Eq for Overflow<T> {}
impl<T> PartialOrd for Overflow<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Overflow<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.tick.cmp(&other.tick).then(self.ins.cmp(&other.ins))
    }
}

/// A hierarchical timing wheel holding items of type `T` keyed by an
/// absolute `u64` tick.
///
/// Ticks are opaque to the wheel; callers quantize their own notion of
/// time. Ticks earlier than the wheel's current position are clamped
/// to it (the caller enforces causality; the clamp keeps a benign
/// race — "schedule at the tick being drained" — well-defined).
pub struct TickWheel<T> {
    levels: Vec<Level<T>>,
    overflow: BinaryHeap<Reverse<Overflow<T>>>,
    /// Monotone insertion counter for deterministic overflow order.
    ins: u64,
    /// The wheel's current position: no stored item is earlier.
    current: u64,
    /// Total items stored (all levels plus overflow).
    len: usize,
}

impl<T> Default for TickWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TickWheel<T> {
    /// An empty wheel positioned at tick 0.
    pub fn new() -> Self {
        Self {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BinaryHeap::new(),
            ins: 0,
            current: 0,
            len: 0,
        }
    }

    /// Total items stored, including any that a `keep` predicate would
    /// reject (tombstones are only discovered when touched).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no items at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's current position. Items are never stored earlier.
    pub fn current_tick(&self) -> u64 {
        self.current
    }

    /// Inserts `item` at `tick` (clamped to the current position).
    pub fn insert(&mut self, tick: u64, item: T) {
        let tick = tick.max(self.current);
        self.len += 1;
        self.place(tick, item);
    }

    /// Files an item into the level where its tick first differs from
    /// `current` — the invariant that makes `slot = (tick >> shift) &
    /// 63` collision-free within a rotation — or into the overflow
    /// heap beyond the horizon.
    fn place(&mut self, tick: u64, item: T) {
        let diff = tick ^ self.current;
        if diff >> HORIZON_BITS != 0 {
            self.ins += 1;
            self.overflow.push(Reverse(Overflow {
                tick,
                ins: self.ins,
                item,
            }));
            return;
        }
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize
        };
        let shift = LEVEL_BITS * level as u32;
        let slot = ((tick >> shift) & SLOT_MASK) as usize;
        let lv = &mut self.levels[level];
        lv.slots[slot].push((tick, item));
        lv.occupied |= 1 << slot;
    }

    /// The lowest occupied level, its earliest slot (in rotation order
    /// from `current`), and that bucket's starting tick.
    fn earliest_bucket(&self) -> Option<(usize, usize, u64)> {
        for (level, lv) in self.levels.iter().enumerate() {
            if lv.occupied == 0 {
                continue;
            }
            let shift = LEVEL_BITS * level as u32;
            let cur_bucket = self.current >> shift;
            let base = (cur_bucket & SLOT_MASK) as u32;
            // Rotate the bitmap so `base` is bit 0; the first set bit
            // is then the earliest slot at or after the cursor.
            let dist = lv.occupied.rotate_right(base).trailing_zeros() as u64;
            let slot = ((base as u64 + dist) & SLOT_MASK) as usize;
            let bucket_start = (cur_bucket + dist) << shift;
            return Some((level, slot, bucket_start));
        }
        None
    }

    /// Advances to — and returns — the exact tick of the earliest
    /// stored item passing `keep`, cascading coarse buckets down and
    /// dropping (and counting out) items that fail `keep` along the
    /// way. Returns `None` when nothing survives.
    ///
    /// After `Some(t)`, the earliest level-0 bucket holds every item
    /// at tick `t` and [`TickWheel::drain_next`] will drain it.
    pub fn next_event_tick(&mut self, keep: &mut dyn FnMut(&T) -> bool) -> Option<u64> {
        loop {
            let Some((level, slot, bucket_start)) = self.earliest_bucket() else {
                // Wheels empty: migrate the overflow tier's horizon in.
                let Reverse(head) = self.overflow.peek()?;
                self.current = self.current.max(head.tick);
                while let Some(Reverse(head)) = self.overflow.peek() {
                    if (head.tick ^ self.current) >> HORIZON_BITS != 0 {
                        break;
                    }
                    let Reverse(of) = self.overflow.pop().expect("peeked");
                    if keep(&of.item) {
                        self.place(of.tick, of.item);
                    } else {
                        self.len -= 1;
                    }
                }
                continue;
            };
            debug_assert!(bucket_start >= self.current);
            self.current = bucket_start;
            if level == 0 {
                // Purge tombstones before reporting: the bucket may
                // hold only dead items, in which case keep looking.
                let lv = &mut self.levels[0];
                let before = lv.slots[slot].len();
                lv.slots[slot].retain(|(_, item)| keep(item));
                self.len -= before - lv.slots[slot].len();
                if lv.slots[slot].is_empty() {
                    lv.occupied &= !(1 << slot);
                    continue;
                }
                return Some(bucket_start);
            }
            // Cascade: redistribute the coarse bucket relative to the
            // advanced cursor; survivors land on strictly finer levels.
            let lv = &mut self.levels[level];
            lv.occupied &= !(1 << slot);
            let items = std::mem::take(&mut lv.slots[slot]);
            for (tick, item) in items {
                debug_assert!(tick >= bucket_start);
                if keep(&item) {
                    self.place(tick, item);
                } else {
                    self.len -= 1;
                }
            }
        }
    }

    /// Drains the earliest non-empty tick's whole bucket (items
    /// passing `keep`, in insertion order) into `out`, returning that
    /// tick. The caller imposes any finer ordering.
    pub fn drain_next(
        &mut self,
        keep: &mut dyn FnMut(&T) -> bool,
        out: &mut Vec<T>,
    ) -> Option<u64> {
        let tick = self.next_event_tick(keep)?;
        let slot = (tick & SLOT_MASK) as usize;
        let lv = &mut self.levels[0];
        lv.occupied &= !(1 << slot);
        let items = std::mem::take(&mut lv.slots[slot]);
        for (t, item) in items {
            debug_assert_eq!(t, tick);
            self.len -= 1;
            if keep(&item) {
                out.push(item);
            }
        }
        Some(tick)
    }

    /// Sweeps every bucket and the overflow tier, dropping items that
    /// fail `keep`. O(len); the queue layer calls this when tombstones
    /// pile up far from the cursor, bounding memory at O(live).
    pub fn compact(&mut self, keep: &mut dyn FnMut(&T) -> bool) {
        let mut dropped = 0usize;
        for lv in &mut self.levels {
            if lv.occupied == 0 {
                continue;
            }
            for slot in 0..SLOTS {
                if lv.occupied & (1 << slot) == 0 {
                    continue;
                }
                let before = lv.slots[slot].len();
                lv.slots[slot].retain(|(_, item)| keep(item));
                dropped += before - lv.slots[slot].len();
                if lv.slots[slot].is_empty() {
                    lv.occupied &= !(1 << slot);
                }
            }
        }
        if !self.overflow.is_empty() {
            let before = self.overflow.len();
            let kept: Vec<Reverse<Overflow<T>>> = self
                .overflow
                .drain()
                .filter(|Reverse(of)| keep(&of.item))
                .collect();
            dropped += before - kept.len();
            self.overflow = BinaryHeap::from(kept);
        }
        self.len -= dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keep_all<T>() -> impl FnMut(&T) -> bool {
        |_| true
    }

    fn drain_all(w: &mut TickWheel<u64>) -> Vec<(u64, Vec<u64>)> {
        let mut out = Vec::new();
        let mut bucket = Vec::new();
        while let Some(t) = w.drain_next(&mut keep_all(), &mut bucket) {
            let mut items = std::mem::take(&mut bucket);
            items.sort_unstable();
            out.push((t, items));
        }
        out
    }

    #[test]
    fn drains_in_tick_order_across_levels() {
        let mut w = TickWheel::new();
        // Span all levels: near, mid, far, and beyond-horizon ticks.
        let ticks = [
            0u64,
            1,
            63,
            64,
            65,
            4095,
            4096,
            1 << 20,
            (1 << 36) + 17,
            (1 << 42) + 5, // overflow tier
            u64::MAX,      // "never" sentinel
        ];
        for (i, &t) in ticks.iter().enumerate() {
            w.insert(t, i as u64);
        }
        assert_eq!(w.len(), ticks.len());
        let drained = drain_all(&mut w);
        let got: Vec<u64> = drained.iter().map(|(t, _)| *t).collect();
        let mut want = ticks.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(w.is_empty());
    }

    #[test]
    fn same_tick_items_share_one_bucket() {
        let mut w = TickWheel::new();
        for i in 0..10u64 {
            w.insert(100, i);
        }
        w.insert(99, 99);
        let drained = drain_all(&mut w);
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0], (99, vec![99]));
        assert_eq!(drained[1], (100, (0..10).collect::<Vec<_>>()));
    }

    #[test]
    fn past_ticks_clamp_to_current() {
        let mut w = TickWheel::new();
        w.insert(50, 1);
        let mut bucket = Vec::new();
        assert_eq!(w.drain_next(&mut keep_all(), &mut bucket), Some(50));
        // 10 < current position 50: clamped, drains immediately next.
        w.insert(10, 2);
        bucket.clear();
        assert_eq!(w.drain_next(&mut keep_all(), &mut bucket), Some(50));
        assert_eq!(bucket, vec![2]);
    }

    #[test]
    fn keep_predicate_compacts_on_cascade() {
        let mut w = TickWheel::new();
        // A far tick forces at least one cascade before level 0.
        for i in 0..100u64 {
            w.insert(5000 + i, i);
        }
        assert_eq!(w.len(), 100);
        // Drop odd items wherever the wheel touches them.
        let mut keep = |v: &u64| v % 2 == 0;
        let mut bucket = Vec::new();
        let mut seen = Vec::new();
        while w.drain_next(&mut keep, &mut bucket).is_some() {
            seen.append(&mut bucket);
        }
        assert_eq!(seen.len(), 50);
        assert!(seen.iter().all(|v| v % 2 == 0));
        assert!(w.is_empty(), "dropped items must leave the count");
    }

    #[test]
    fn compact_drops_everywhere_including_overflow() {
        let mut w = TickWheel::new();
        for i in 0..64u64 {
            w.insert(i * 1000, i);
        }
        w.insert(1 << 50, 1000);
        w.insert(1 << 51, 1001);
        assert_eq!(w.len(), 66);
        w.compact(&mut |v| v % 2 == 0);
        assert_eq!(w.len(), 33); // 32 even wheel items + the even overflow one
        let drained: Vec<u64> = {
            let mut all = Vec::new();
            let mut b = Vec::new();
            while w.drain_next(&mut keep_all(), &mut b).is_some() {
                all.append(&mut b);
            }
            all
        };
        assert_eq!(drained.len(), 33);
        assert!(drained.contains(&1000));
        assert!(!drained.contains(&1001));
    }

    #[test]
    fn overflow_tier_reseeds_the_wheels() {
        let mut w = TickWheel::new();
        // Everything beyond the 2^42 horizon.
        let base = 1u64 << 43;
        for i in (0..200u64).rev() {
            w.insert(base + i * 7, i);
        }
        let drained = drain_all(&mut w);
        let ticks: Vec<u64> = drained.iter().map(|(t, _)| *t).collect();
        let want: Vec<u64> = (0..200u64).map(|i| base + i * 7).collect();
        assert_eq!(ticks, want);
    }

    #[test]
    fn next_event_tick_is_exact_not_bucket_start() {
        let mut w = TickWheel::new();
        // Lands on level 2 initially; its exact tick is 4100, while the
        // containing level-2 bucket starts at 4096.
        w.insert(4100, 7);
        assert_eq!(w.next_event_tick(&mut keep_all()), Some(4100));
        let mut bucket = Vec::new();
        assert_eq!(w.drain_next(&mut keep_all(), &mut bucket), Some(4100));
        assert_eq!(bucket, vec![7]);
    }

    #[test]
    fn interleaved_insert_and_drain_stays_ordered() {
        let mut w = TickWheel::new();
        let mut expect = Vec::new();
        let mut got = Vec::new();
        let mut bucket = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..50 {
            for _ in 0..20 {
                let t = w.current_tick() + step() % 10_000;
                expect.push(t);
                w.insert(t, t);
            }
            if round % 2 == 0 {
                while let Some(t) = w.drain_next(&mut keep_all(), &mut bucket) {
                    for &v in &bucket {
                        assert_eq!(v, t);
                        got.push(v);
                    }
                    bucket.clear();
                    if got.len() % 7 == 0 {
                        break; // leave some pending for the next round
                    }
                }
            }
        }
        while w.drain_next(&mut keep_all(), &mut bucket).is_some() {
            got.append(&mut bucket);
        }
        // Every inserted tick came back out, each bucket at its exact
        // tick, and the drain sequence is sorted (ticks clamped to the
        // cursor drain at the cursor, so compare multisets + order).
        let mut sorted = got.clone();
        sorted.sort_unstable();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        assert!(got.windows(2).all(|p| {
            // non-decreasing except for clamped re-inserts, which can
            // only appear at the current cursor — still non-decreasing
            p[0] <= p[1] || p[1] >= w.current_tick()
        }));
    }
}
