//! FIFO server: the contention model for a lock-protected counter.
//!
//! The paper's simulator "accounted for the contention for updating the
//! counters": a counter guarded by a simple hardware lock serializes its
//! updaters. A [`FifoServer`] models exactly that — requests are served
//! one at a time, in arrival order, each occupying the server for its
//! service time. Because the DES engine delivers requests in
//! nondecreasing time order, the server only needs to remember when it
//! becomes free.

use crate::time::{Duration, SimTime};

/// Outcome of one service request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Service {
    /// When the request arrived (joined the queue).
    pub arrival: SimTime,
    /// When service began (arrival + queueing delay).
    pub start: SimTime,
    /// When service completed.
    pub finish: SimTime,
}

impl Service {
    /// Time spent waiting behind earlier requests.
    pub fn queueing_delay(&self) -> Duration {
        self.start - self.arrival
    }

    /// Total time from arrival to completion.
    pub fn sojourn(&self) -> Duration {
        self.finish - self.arrival
    }
}

/// A work-conserving FIFO single server.
#[derive(Debug, Clone)]
pub struct FifoServer {
    free_at: SimTime,
    last_arrival: SimTime,
    served: u64,
    total_wait: Duration,
    total_service: Duration,
}

impl Default for FifoServer {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoServer {
    /// Creates an idle server at time zero.
    pub fn new() -> Self {
        Self {
            free_at: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
            served: 0,
            total_wait: Duration::ZERO,
            total_service: Duration::ZERO,
        }
    }

    /// Serves a request arriving at `arrival` needing `service` time.
    ///
    /// Requests must be submitted in nondecreasing arrival order (the
    /// DES engine guarantees this when requests are issued at the
    /// current simulation time).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `arrival` precedes an earlier request.
    pub fn serve(&mut self, arrival: SimTime, service: Duration) -> Service {
        debug_assert!(
            arrival >= self.last_arrival,
            "FIFO server requires nondecreasing arrivals: {} after {}",
            arrival,
            self.last_arrival
        );
        self.last_arrival = arrival;
        let start = arrival.max(self.free_at);
        let finish = start + service;
        self.free_at = finish;
        self.served += 1;
        self.total_wait += start - arrival;
        self.total_service += service;
        Service {
            arrival,
            start,
            finish,
        }
    }

    /// The time at which the server next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Whether the server is idle at time `t`.
    pub fn is_idle_at(&self, t: SimTime) -> bool {
        t >= self.free_at
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Sum of queueing delays across all requests.
    pub fn total_wait(&self) -> Duration {
        self.total_wait
    }

    /// Sum of service times across all requests (busy time).
    pub fn total_service(&self) -> Duration {
        self.total_service
    }

    /// Resets the server to idle at time zero, clearing statistics.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TC: f64 = 20.0; // the KSR1 counter update cost, µs

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = FifoServer::new();
        let svc = s.serve(SimTime::from_us(5.0), Duration::from_us(TC));
        assert_eq!(svc.start.as_us(), 5.0);
        assert_eq!(svc.finish.as_us(), 25.0);
        assert_eq!(svc.queueing_delay().as_us(), 0.0);
        assert_eq!(svc.sojourn().as_us(), TC);
    }

    #[test]
    fn simultaneous_arrivals_serialize() {
        let mut s = FifoServer::new();
        let t = SimTime::from_us(0.0);
        let d = Duration::from_us(TC);
        let a = s.serve(t, d);
        let b = s.serve(t, d);
        let c = s.serve(t, d);
        assert_eq!(a.finish.as_us(), 20.0);
        assert_eq!(b.start.as_us(), 20.0);
        assert_eq!(b.finish.as_us(), 40.0);
        assert_eq!(c.finish.as_us(), 60.0);
        assert_eq!(s.total_wait().as_us(), 0.0 + 20.0 + 40.0);
        assert_eq!(s.served(), 3);
    }

    #[test]
    fn spaced_arrivals_do_not_queue() {
        let mut s = FifoServer::new();
        let d = Duration::from_us(TC);
        for i in 0..5 {
            let svc = s.serve(SimTime::from_us(i as f64 * 100.0), d);
            assert_eq!(svc.queueing_delay().as_us(), 0.0);
        }
        assert_eq!(s.total_service().as_us(), 5.0 * TC);
    }

    #[test]
    fn partially_overlapping_arrivals_queue_partially() {
        let mut s = FifoServer::new();
        let d = Duration::from_us(TC);
        let _ = s.serve(SimTime::from_us(0.0), d); // busy 0–20
        let b = s.serve(SimTime::from_us(10.0), d); // waits 10
        assert_eq!(b.start.as_us(), 20.0);
        assert_eq!(b.queueing_delay().as_us(), 10.0);
    }

    #[test]
    fn idle_query_matches_free_at() {
        let mut s = FifoServer::new();
        assert!(s.is_idle_at(SimTime::ZERO));
        s.serve(SimTime::ZERO, Duration::from_us(TC));
        assert!(!s.is_idle_at(SimTime::from_us(19.9)));
        assert!(s.is_idle_at(SimTime::from_us(20.0)));
        assert_eq!(s.free_at().as_us(), 20.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut s = FifoServer::new();
        s.serve(SimTime::from_us(1.0), Duration::from_us(TC));
        s.reset();
        assert_eq!(s.served(), 0);
        assert_eq!(s.free_at(), SimTime::ZERO);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "nondecreasing")]
    fn out_of_order_arrivals_panic_in_debug() {
        let mut s = FifoServer::new();
        s.serve(SimTime::from_us(10.0), Duration::from_us(1.0));
        s.serve(SimTime::from_us(5.0), Duration::from_us(1.0));
    }
}
