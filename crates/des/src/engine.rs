//! The event-driven simulation engine.
//!
//! A minimal but complete discrete-event core: a pending-event set
//! ordered by `(time, sequence)` — the sequence number makes simultaneous
//! events fire in scheduling order, so runs are fully deterministic — and
//! a user state threaded through every handler.
//!
//! Handlers are `FnOnce(&mut Engine<S>)` closures; they read the clock
//! with [`Engine::now`], mutate `engine.state`, and schedule further
//! events. This "closures over shared state" style is the conventional
//! Rust shape for sequential DES (no processes/coroutines needed for the
//! barrier models in this workspace, which are naturally event-oriented:
//! *processor requests counter*, *counter update completes*).

use crate::time::{Duration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Type-erased event action.
type Action<S> = Box<dyn FnOnce(&mut Engine<S>)>;

/// Token disarming a cancellable or periodic event (see
/// [`Engine::schedule_cancellable`]). Cloneable; any clone cancels all.
#[derive(Debug, Clone, Default)]
pub struct Cancellation {
    cancelled: std::rc::Rc<std::cell::Cell<bool>>,
}

impl Cancellation {
    fn new() -> Self {
        Self::default()
    }

    /// Disarms the associated event(s).
    pub fn cancel(&self) {
        self.cancelled.set(true);
    }

    /// Whether the event has been disarmed.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.get()
    }
}

struct Scheduled<S> {
    time: SimTime,
    seq: u64,
    action: Action<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A discrete-event simulation engine over user state `S`.
pub struct Engine<S> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Scheduled<S>>>,
    events_executed: u64,
    /// The user state, freely accessible to event handlers.
    pub state: S,
}

impl<S> Engine<S> {
    /// Creates an engine at time zero with the given state.
    pub fn new(state: S) -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            events_executed: 0,
            state,
        }
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `action` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time (causality).
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut Engine<S>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now = {}, at = {}",
            self.now,
            at
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled {
            time: at,
            seq,
            action: Box::new(action),
        }));
    }

    /// Schedules `action` after a delay from the current time.
    pub fn schedule_in<F>(&mut self, delay: Duration, action: F)
    where
        F: FnOnce(&mut Engine<S>) + 'static,
    {
        self.schedule_at(self.now + delay, action);
    }

    /// Schedules a cancellable event; the returned [`Cancellation`]
    /// token suppresses the action if triggered before the event fires
    /// (the event still occupies its queue slot but becomes a no-op).
    ///
    /// Typical use: timeouts that are usually disarmed — e.g. a watchdog
    /// on barrier completion in soak tests.
    pub fn schedule_cancellable<F>(&mut self, at: SimTime, action: F) -> Cancellation
    where
        F: FnOnce(&mut Engine<S>) + 'static,
    {
        let token = Cancellation::new();
        let guard = token.clone();
        self.schedule_at(at, move |eng| {
            if !guard.is_cancelled() {
                action(eng);
            }
        });
        token
    }

    /// Schedules `action` to run every `period`, starting at
    /// `first`, until the returned token is cancelled. The action runs
    /// at most `max_firings` times as a runaway guard.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (the simulation would never advance).
    pub fn schedule_periodic<F>(
        &mut self,
        first: SimTime,
        period: Duration,
        max_firings: u64,
        action: F,
    ) -> Cancellation
    where
        F: FnMut(&mut Engine<S>) + 'static,
    {
        assert!(
            period.as_us() > 0.0,
            "periodic events need a positive period"
        );
        let token = Cancellation::new();
        let guard = token.clone();
        fn tick<S, F: FnMut(&mut Engine<S>) + 'static>(
            eng: &mut Engine<S>,
            mut action: F,
            guard: Cancellation,
            period: Duration,
            remaining: u64,
        ) {
            if guard.is_cancelled() || remaining == 0 {
                return;
            }
            action(eng);
            let next_remaining = remaining - 1;
            if next_remaining > 0 && !guard.is_cancelled() {
                eng.schedule_in(period, move |e| {
                    tick(e, action, guard, period, next_remaining)
                });
            }
        }
        self.schedule_at(first, move |e| tick(e, action, guard, period, max_firings));
        token
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Executes the single next event. Returns `false` when the pending
    /// set is empty.
    pub fn step(&mut self) -> bool {
        match self.heap.pop() {
            None => false,
            Some(Reverse(ev)) => {
                debug_assert!(ev.time >= self.now);
                self.now = ev.time;
                self.events_executed += 1;
                (ev.action)(self);
                true
            }
        }
    }

    /// Runs until the pending set is empty; returns the final time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Runs until the next event would be strictly later than `until`
    /// (events exactly at `until` are executed); returns the time of the
    /// last executed event.
    pub fn run_until(&mut self, until: SimTime) -> SimTime {
        while let Some(t) = self.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
        self.now
    }

    /// Consumes the engine and returns the user state.
    pub fn into_state(self) -> S {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut eng = Engine::new(Vec::<u32>::new());
        eng.schedule_at(SimTime::from_us(3.0), |e| e.state.push(3));
        eng.schedule_at(SimTime::from_us(1.0), |e| e.state.push(1));
        eng.schedule_at(SimTime::from_us(2.0), |e| e.state.push(2));
        eng.run();
        assert_eq!(eng.state, vec![1, 2, 3]);
        assert_eq!(eng.events_executed(), 3);
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut eng = Engine::new(Vec::<u32>::new());
        for i in 0..10 {
            eng.schedule_at(SimTime::from_us(5.0), move |e| e.state.push(i));
        }
        eng.run();
        assert_eq!(eng.state, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut eng = Engine::new(0u32);
        fn tick(e: &mut Engine<u32>) {
            e.state += 1;
            if e.state < 5 {
                e.schedule_in(Duration::from_us(1.0), tick);
            }
        }
        eng.schedule_at(SimTime::ZERO, tick);
        let end = eng.run();
        assert_eq!(eng.state, 5);
        assert_eq!(end.as_us(), 4.0);
    }

    #[test]
    fn run_until_stops_at_horizon_inclusive() {
        let mut eng = Engine::new(Vec::<f64>::new());
        for i in 1..=10 {
            eng.schedule_at(SimTime::from_us(i as f64), move |e| {
                let t = e.now().as_us();
                e.state.push(t);
            });
        }
        eng.run_until(SimTime::from_us(5.0));
        assert_eq!(eng.state, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(eng.events_pending(), 5);
        eng.run();
        assert_eq!(eng.state.len(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut eng = Engine::new(());
        eng.schedule_at(SimTime::from_us(10.0), |e| {
            e.schedule_at(SimTime::from_us(5.0), |_| {});
        });
        eng.run();
    }

    #[test]
    fn clock_is_monotone_across_run() {
        let mut eng = Engine::new((SimTime::ZERO, true));
        for i in (0..100).rev() {
            eng.schedule_at(SimTime::from_us(i as f64 * 0.5), |e| {
                let now = e.now();
                let (last, ok) = &mut e.state;
                if now < *last {
                    *ok = false;
                }
                *last = now;
            });
        }
        eng.run();
        assert!(eng.state.1, "clock went backwards");
    }

    #[test]
    fn into_state_returns_final_state() {
        let mut eng = Engine::new(41);
        eng.schedule_at(SimTime::from_us(1.0), |e| e.state += 1);
        eng.run();
        assert_eq!(eng.into_state(), 42);
    }

    #[test]
    fn empty_engine_runs_to_zero() {
        let mut eng = Engine::new(());
        assert_eq!(eng.run(), SimTime::ZERO);
        assert!(!eng.step());
        assert_eq!(eng.peek_time(), None);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut eng = Engine::new(0u32);
        let keep = eng.schedule_cancellable(SimTime::from_us(1.0), |e| e.state += 1);
        let kill = eng.schedule_cancellable(SimTime::from_us(2.0), |e| e.state += 10);
        kill.cancel();
        assert!(kill.is_cancelled());
        assert!(!keep.is_cancelled());
        eng.run();
        assert_eq!(eng.state, 1);
    }

    #[test]
    fn cancellation_mid_run_works() {
        // the first event cancels the second
        let mut eng = Engine::new((0u32, None::<Cancellation>));
        let token = eng.schedule_cancellable(SimTime::from_us(5.0), |e| e.state.0 += 100);
        eng.state.1 = Some(token);
        eng.schedule_at(SimTime::from_us(1.0), |e| {
            e.state.1.take().expect("token stored").cancel();
        });
        eng.run();
        assert_eq!(eng.state.0, 0);
    }

    #[test]
    fn periodic_events_fire_until_cancelled() {
        let mut eng = Engine::new((0u32, None::<Cancellation>));
        let token =
            eng.schedule_periodic(SimTime::from_us(10.0), Duration::from_us(5.0), 1000, |e| {
                e.state.0 += 1
            });
        eng.state.1 = Some(token);
        // cancel after the event at t = 30 has fired (events at 10, 15,
        // 20, 25, 30 → 5 firings)
        eng.schedule_at(SimTime::from_us(31.0), |e| {
            e.state.1.take().expect("token stored").cancel();
        });
        eng.run();
        assert_eq!(eng.state.0, 5);
    }

    #[test]
    fn periodic_events_respect_max_firings() {
        let mut eng = Engine::new(0u32);
        let _token =
            eng.schedule_periodic(SimTime::ZERO, Duration::from_us(1.0), 3, |e| e.state += 1);
        eng.run();
        assert_eq!(eng.state, 3);
    }

    #[test]
    #[should_panic(expected = "positive period")]
    fn zero_period_rejected() {
        let mut eng = Engine::new(());
        let _ = eng.schedule_periodic(SimTime::ZERO, Duration::ZERO, 10, |_| {});
    }
}
