//! The event-driven simulation engine.
//!
//! A minimal but complete discrete-event core: a pending-event set
//! ordered by `(time, sequence)` — the sequence number makes simultaneous
//! events fire in scheduling order, so runs are fully deterministic — and
//! a user state threaded through every handler.
//!
//! Handlers are `FnOnce(&mut Engine<S>)` closures; they read the clock
//! with [`Engine::now`], mutate `engine.state`, and schedule further
//! events. This "closures over shared state" style is the conventional
//! Rust shape for sequential DES (no processes/coroutines needed for the
//! barrier models in this workspace, which are naturally event-oriented:
//! *processor requests counter*, *counter update completes*).
//!
//! The pending-event set itself sits behind the [`EventQueue`] trait:
//! [`Engine::new`] keeps the original binary heap, while
//! [`EngineConfig`] selects the hierarchical timing wheel for
//! million-participant episodes — same `(time, seq)` total order,
//! different constant factors.

pub use crate::queue::Cancellation;
use crate::queue::{Event, EventQueue, HeapQueue, Ledger, WheelQueue};
use crate::time::{Duration, SimTime};
use std::cell::Cell;
use std::rc::Rc;

/// Type-erased event action.
pub type Action<S> = Box<dyn FnOnce(&mut Engine<S>)>;

/// Which pending-event structure an [`EngineConfig`] builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Binary heap: O(log n), zero setup, the [`Engine::new`] default.
    Heap,
    /// Hierarchical timing wheel: O(1) near-horizon scheduling, built
    /// for p ≥ 2¹⁴ episodes.
    Wheel,
}

/// Builder for an [`Engine`] with an explicit queue choice and
/// capacity hints.
///
/// ```
/// use combar_des::{EngineConfig, QueueKind, SimTime};
///
/// let mut eng = EngineConfig::new()
///     .queue(QueueKind::Wheel)
///     .events_hint(1 << 20)
///     .build(0u64);
/// eng.schedule_at(SimTime::from_us(1.0), |e| e.state += 1);
/// eng.run();
/// assert_eq!(eng.state, 1);
/// ```
#[derive(Debug, Clone)]
pub struct EngineConfig {
    queue: QueueKind,
    wheel_resolution_us: f64,
    events_hint: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineConfig {
    /// The default configuration: heap queue, 1 µs wheel resolution
    /// (if later switched), no capacity hint.
    pub fn new() -> Self {
        Self {
            queue: QueueKind::Heap,
            wheel_resolution_us: WheelQueue::<()>::DEFAULT_RESOLUTION_US,
            events_hint: 0,
        }
    }

    /// Selects the pending-event structure.
    pub fn queue(mut self, kind: QueueKind) -> Self {
        self.queue = kind;
        self
    }

    /// Tick size for [`QueueKind::Wheel`], in microseconds (events in
    /// one tick still fire in exact `(time, seq)` order).
    pub fn wheel_resolution_us(mut self, us: f64) -> Self {
        self.wheel_resolution_us = us;
        self
    }

    /// Expected pending-event count, used to pre-size the structure.
    pub fn events_hint(mut self, events: usize) -> Self {
        self.events_hint = events;
        self
    }

    /// Builds an engine at time zero over `state`.
    pub fn build<S: 'static>(&self, state: S) -> Engine<S> {
        match self.queue {
            QueueKind::Heap => {
                Engine::with_queue(state, HeapQueue::with_capacity(self.events_hint))
            }
            QueueKind::Wheel => {
                Engine::with_queue(state, WheelQueue::with_resolution(self.wheel_resolution_us))
            }
        }
    }
}

/// A discrete-event simulation engine over user state `S`.
pub struct Engine<S> {
    now: SimTime,
    seq: u64,
    queue: Box<dyn EventQueue<Action<S>>>,
    /// Count of queued-but-cancelled events still physically present;
    /// shared with every [`Cancellation`] this engine hands out.
    ledger: Ledger,
    events_executed: u64,
    /// The user state, freely accessible to event handlers.
    pub state: S,
}

impl<S> Engine<S> {
    /// Creates an engine at time zero with the given state, using the
    /// default binary-heap queue.
    pub fn new(state: S) -> Self
    where
        S: 'static,
    {
        Self::with_queue(state, HeapQueue::new())
    }

    /// Creates an engine at time zero over a caller-supplied
    /// pending-event structure (see [`EventQueue`] for the ordering
    /// contract an implementation must honor).
    pub fn with_queue<Q>(state: S, queue: Q) -> Self
    where
        S: 'static,
        Q: EventQueue<Action<S>> + 'static,
    {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            queue: Box::new(queue),
            ledger: Rc::new(Cell::new(0)),
            events_executed: 0,
            state,
        }
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// Number of **live** events still pending. Cancelled events leave
    /// this count the moment their token fires, even while their
    /// tombstones await physical reclamation in the queue.
    pub fn events_pending(&self) -> usize {
        self.queue.len() - self.ledger.get() as usize
    }

    /// Enqueues a prepared event, assigning its sequence number and
    /// opportunistically compacting when tombstones dominate.
    fn schedule_event(&mut self, at: SimTime, ev: Event<Action<S>>) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now = {}, at = {}",
            self.now,
            at
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.schedule(at, seq, ev);
        // Compact once tombstones are both numerous and the majority:
        // keeps memory O(live) under 100k-cancellation churn without
        // ever paying O(n) on a mostly-live queue.
        let dead = self.ledger.get() as usize;
        if dead >= 64 && dead * 2 >= self.queue.len() {
            self.queue.compact();
            debug_assert_eq!(self.ledger.get(), 0, "compact reaps every tombstone");
        }
    }

    /// Schedules `action` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time (causality).
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut Engine<S>) + 'static,
    {
        self.schedule_event(at, Event::new(Box::new(action)));
    }

    /// Schedules `action` after a delay from the current time.
    pub fn schedule_in<F>(&mut self, delay: Duration, action: F)
    where
        F: FnOnce(&mut Engine<S>) + 'static,
    {
        self.schedule_at(self.now + delay, action);
    }

    /// Schedules a cancellable event; the returned [`Cancellation`]
    /// token suppresses the action if triggered before the event fires.
    /// The cancelled event immediately leaves [`Engine::events_pending`]
    /// and its queue slot is lazily reclaimed (eagerly if tombstones
    /// pile up).
    ///
    /// Typical use: timeouts that are usually disarmed — e.g. a watchdog
    /// on barrier completion in soak tests.
    pub fn schedule_cancellable<F>(&mut self, at: SimTime, action: F) -> Cancellation
    where
        F: FnOnce(&mut Engine<S>) + 'static,
    {
        let token = Cancellation::with_ledger(self.ledger.clone());
        let guard = token.clone();
        // The queue already skips tombstones; the guard is defense in
        // depth for queues that might not.
        let ev = Event::cancellable(
            Box::new(move |eng: &mut Engine<S>| {
                if !guard.is_cancelled() {
                    action(eng);
                }
            }) as Action<S>,
            &token,
        );
        self.schedule_event(at, ev);
        token
    }

    /// Schedules `action` to run every `period`, starting at
    /// `first`, until the returned token is cancelled. The action runs
    /// at most `max_firings` times as a runaway guard.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (the simulation would never advance).
    pub fn schedule_periodic<F>(
        &mut self,
        first: SimTime,
        period: Duration,
        max_firings: u64,
        action: F,
    ) -> Cancellation
    where
        F: FnMut(&mut Engine<S>) + 'static,
    {
        assert!(
            period.as_us() > 0.0,
            "periodic events need a positive period"
        );
        let token = Cancellation::with_ledger(self.ledger.clone());
        let guard = token.clone();
        fn tick<S, F: FnMut(&mut Engine<S>) + 'static>(
            eng: &mut Engine<S>,
            mut action: F,
            guard: Cancellation,
            period: Duration,
            remaining: u64,
        ) {
            if guard.is_cancelled() || remaining == 0 {
                return;
            }
            action(eng);
            let next_remaining = remaining - 1;
            if next_remaining > 0 && !guard.is_cancelled() {
                let at = eng.now + period;
                let token = guard.clone();
                let ev = Event::cancellable(
                    Box::new(move |e: &mut Engine<S>| {
                        tick(e, action, guard, period, next_remaining)
                    }) as Action<S>,
                    &token,
                );
                eng.schedule_event(at, ev);
            }
        }
        let ev = Event::cancellable(
            Box::new(move |e: &mut Engine<S>| tick(e, action, guard, period, max_firings))
                as Action<S>,
            &token,
        );
        self.schedule_event(first, ev);
        token
    }

    /// Time of the next live pending event, if any. Takes `&mut self`
    /// because answering may reap cancelled events off the queue's
    /// front.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.next_time()
    }

    /// Executes the single next event. Returns `false` when the pending
    /// set is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop_next() {
            None => false,
            Some((time, _seq, action)) => {
                debug_assert!(time >= self.now);
                self.now = time;
                self.events_executed += 1;
                action(self);
                true
            }
        }
    }

    /// Runs until the pending set is empty; returns the final time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Runs until the next event would be strictly later than `until`
    /// (events exactly at `until` are executed); returns the time of the
    /// last executed event.
    pub fn run_until(&mut self, until: SimTime) -> SimTime {
        while let Some(t) = self.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
        self.now
    }

    /// Consumes the engine and returns the user state.
    pub fn into_state(self) -> S {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every engine test runs against both queue implementations —
    /// the `(time, seq)` contract must make them indistinguishable.
    fn engines<S: Clone + 'static>(state: S) -> Vec<(&'static str, Engine<S>)> {
        vec![
            ("heap", Engine::new(state.clone())),
            (
                "wheel",
                EngineConfig::new().queue(QueueKind::Wheel).build(state),
            ),
        ]
    }

    #[test]
    fn events_fire_in_time_order() {
        for (name, mut eng) in engines(Vec::<u32>::new()) {
            eng.schedule_at(SimTime::from_us(3.0), |e| e.state.push(3));
            eng.schedule_at(SimTime::from_us(1.0), |e| e.state.push(1));
            eng.schedule_at(SimTime::from_us(2.0), |e| e.state.push(2));
            eng.run();
            assert_eq!(eng.state, vec![1, 2, 3], "{name}");
            assert_eq!(eng.events_executed(), 3, "{name}");
        }
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        for (name, mut eng) in engines(Vec::<u32>::new()) {
            for i in 0..10 {
                eng.schedule_at(SimTime::from_us(5.0), move |e| e.state.push(i));
            }
            eng.run();
            assert_eq!(eng.state, (0..10).collect::<Vec<_>>(), "{name}");
        }
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        for (name, mut eng) in engines(0u32) {
            fn tick(e: &mut Engine<u32>) {
                e.state += 1;
                if e.state < 5 {
                    e.schedule_in(Duration::from_us(1.0), tick);
                }
            }
            eng.schedule_at(SimTime::ZERO, tick);
            let end = eng.run();
            assert_eq!(eng.state, 5, "{name}");
            assert_eq!(end.as_us(), 4.0, "{name}");
        }
    }

    #[test]
    fn run_until_stops_at_horizon_inclusive() {
        for (name, mut eng) in engines(Vec::<f64>::new()) {
            for i in 1..=10 {
                eng.schedule_at(SimTime::from_us(i as f64), move |e| {
                    let t = e.now().as_us();
                    e.state.push(t);
                });
            }
            eng.run_until(SimTime::from_us(5.0));
            assert_eq!(eng.state, vec![1.0, 2.0, 3.0, 4.0, 5.0], "{name}");
            assert_eq!(eng.events_pending(), 5, "{name}");
            eng.run();
            assert_eq!(eng.state.len(), 10, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut eng = Engine::new(());
        eng.schedule_at(SimTime::from_us(10.0), |e| {
            e.schedule_at(SimTime::from_us(5.0), |_| {});
        });
        eng.run();
    }

    #[test]
    fn clock_is_monotone_across_run() {
        for (name, mut eng) in engines((SimTime::ZERO, true)) {
            for i in (0..100).rev() {
                eng.schedule_at(SimTime::from_us(i as f64 * 0.5), |e| {
                    let now = e.now();
                    let (last, ok) = &mut e.state;
                    if now < *last {
                        *ok = false;
                    }
                    *last = now;
                });
            }
            eng.run();
            assert!(eng.state.1, "{name}: clock went backwards");
        }
    }

    #[test]
    fn into_state_returns_final_state() {
        let mut eng = Engine::new(41);
        eng.schedule_at(SimTime::from_us(1.0), |e| e.state += 1);
        eng.run();
        assert_eq!(eng.into_state(), 42);
    }

    #[test]
    fn empty_engine_runs_to_zero() {
        for (name, mut eng) in engines(()) {
            assert_eq!(eng.run(), SimTime::ZERO, "{name}");
            assert!(!eng.step(), "{name}");
            assert_eq!(eng.peek_time(), None, "{name}");
        }
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        for (name, mut eng) in engines(0u32) {
            let keep = eng.schedule_cancellable(SimTime::from_us(1.0), |e| e.state += 1);
            let kill = eng.schedule_cancellable(SimTime::from_us(2.0), |e| e.state += 10);
            kill.cancel();
            assert!(kill.is_cancelled(), "{name}");
            assert!(!keep.is_cancelled(), "{name}");
            eng.run();
            assert_eq!(eng.state, 1, "{name}");
        }
    }

    #[test]
    fn cancellation_mid_run_works() {
        // the first event cancels the second
        for (name, mut eng) in engines((0u32, None::<Cancellation>)) {
            let token = eng.schedule_cancellable(SimTime::from_us(5.0), |e| e.state.0 += 100);
            eng.state.1 = Some(token);
            eng.schedule_at(SimTime::from_us(1.0), |e| {
                e.state.1.take().expect("token stored").cancel();
            });
            eng.run();
            assert_eq!(eng.state.0, 0, "{name}");
        }
    }

    #[test]
    fn periodic_events_fire_until_cancelled() {
        for (name, mut eng) in engines((0u32, None::<Cancellation>)) {
            let token =
                eng.schedule_periodic(SimTime::from_us(10.0), Duration::from_us(5.0), 1000, |e| {
                    e.state.0 += 1
                });
            eng.state.1 = Some(token);
            // cancel after the event at t = 30 has fired (events at 10, 15,
            // 20, 25, 30 → 5 firings)
            eng.schedule_at(SimTime::from_us(31.0), |e| {
                e.state.1.take().expect("token stored").cancel();
            });
            eng.run();
            assert_eq!(eng.state.0, 5, "{name}");
        }
    }

    #[test]
    fn periodic_events_respect_max_firings() {
        for (name, mut eng) in engines(0u32) {
            let _token =
                eng.schedule_periodic(SimTime::ZERO, Duration::from_us(1.0), 3, |e| e.state += 1);
            eng.run();
            assert_eq!(eng.state, 3, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "positive period")]
    fn zero_period_rejected() {
        let mut eng = Engine::new(());
        let _ = eng.schedule_periodic(SimTime::ZERO, Duration::ZERO, 10, |_| {});
    }

    #[test]
    fn cancelled_events_leave_the_pending_count_immediately() {
        for (name, mut eng) in engines(()) {
            let mut tokens = Vec::new();
            for i in 0..100 {
                tokens.push(eng.schedule_cancellable(SimTime::from_us(1.0 + i as f64), |_| {}));
            }
            eng.schedule_at(SimTime::from_us(500.0), |_| {});
            assert_eq!(eng.events_pending(), 101, "{name}");
            for t in &tokens {
                t.cancel();
            }
            // Pending reflects the cancellations before any reaping.
            assert_eq!(eng.events_pending(), 1, "{name}");
            eng.run();
            assert_eq!(eng.events_executed(), 1, "{name}: only the live event ran");
            assert_eq!(eng.events_pending(), 0, "{name}");
        }
    }

    #[test]
    fn cancellation_churn_keeps_memory_bounded() {
        // The regression test from the lazy-cancel accounting fix:
        // schedule/cancel 100k periodic events; neither queue may
        // accumulate tombstones (compaction triggers on majority-dead)
        // nor miscount events_pending.
        for (name, mut eng) in engines(()) {
            for i in 0..100_000u64 {
                let t = eng.schedule_periodic(
                    SimTime::from_us(1e6 + i as f64),
                    Duration::from_us(5.0),
                    10,
                    |_| {},
                );
                t.cancel();
                // Physical size stays O(live): tombstones never
                // exceed the compaction threshold by more than one
                // scheduling step.
                assert!(
                    eng.queue.len() <= 130,
                    "{name}: {} tombstones accumulated at i = {i}",
                    eng.queue.len()
                );
            }
            assert_eq!(eng.events_pending(), 0, "{name}");
            eng.run();
            assert_eq!(eng.events_executed(), 0, "{name}");
        }
    }

    #[test]
    fn wheel_engine_matches_heap_engine_event_for_event() {
        // A miniature end-to-end differential: a self-rescheduling
        // cascade with cancellations must produce identical histories.
        fn drive(mut eng: Engine<Vec<(u64, f64)>>) -> (Vec<(u64, f64)>, u64) {
            for i in 0..50u64 {
                let at = SimTime::from_us((i * 7 % 13) as f64 + 0.1 * i as f64);
                eng.schedule_at(at, move |e| {
                    let now = e.now();
                    e.state.push((i, now.as_us()));
                    if i % 3 == 0 {
                        e.schedule_in(Duration::from_us(2.5), move |e2| {
                            let n2 = e2.now().as_us();
                            e2.state.push((1000 + i, n2));
                        });
                    }
                });
                if i % 5 == 0 {
                    let tok = eng.schedule_cancellable(at + Duration::from_us(1.0), move |e| {
                        e.state.push((2000 + i, e.now().as_us()));
                    });
                    if i % 10 == 0 {
                        tok.cancel();
                    }
                }
            }
            eng.run();
            (eng.state.clone(), eng.events_executed())
        }
        let heap = drive(Engine::new(Vec::new()));
        let wheel = drive(
            EngineConfig::new()
                .queue(QueueKind::Wheel)
                .build(Vec::new()),
        );
        assert_eq!(heap, wheel);
    }
}
