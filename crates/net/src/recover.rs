//! Crash recovery for the epoch server: journal replay, warm standby,
//! and a failover-cluster harness.
//!
//! The write-ahead invariant ([`crate::journal`]) is that every epoch a
//! client could possibly have observed was appended before its release
//! was broadcast. Replay therefore reconstructs a state that is *at or
//! ahead of* anything any client saw:
//!
//! * a client whose last acked epoch equals the replayed epoch resumes
//!   seamlessly (`Resume` → `Resumed`);
//! * a client *behind* the replayed epoch (the crash ate its `Release`
//!   frame, but the append survived) is healed by an idempotent
//!   `Release` re-ack;
//! * a client *ahead* of the replayed epoch proves the journal lost a
//!   durable suffix (truncation, disk rollback) — the server answers
//!   `Diverged` and the client surfaces
//!   [`BarrierError::Diverged`](combar_rt::BarrierError::Diverged)
//!   rather than silently rewinding the epoch stream.
//!
//! Replay cross-checks itself: every `Episode` record carries an
//! order-independent hash of the roster at release time, and [`apply`]
//! recomputes that hash from the membership deltas it replayed. A
//! mismatch means the journal is internally inconsistent and recovery
//! refuses to serve from it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::journal::{next_entry, roster_hash, Journal, JournalError, JournalRecord};
use crate::proto::SessionId;
use crate::server::{EpochServer, ServerConfig, SessionStats};
use crate::transport::{loopback_pair, ReconnectTransport, Transport};

/// Why journal replay refused to produce a servable state.
#[derive(Debug, PartialEq, Eq)]
pub enum RecoverError {
    /// An `Episode` record's roster hash does not match the roster
    /// reconstructed from the membership deltas before it: the journal
    /// is internally inconsistent (lost or reordered deltas) and must
    /// not be served from.
    RosterMismatch {
        /// The episode whose hash failed.
        epoch: u64,
        /// The hash the record carries.
        expected: u64,
        /// The hash replay derived.
        derived: u64,
    },
    /// Reading the journal's backing store failed.
    Journal(JournalError),
}

impl core::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecoverError::RosterMismatch {
                epoch,
                expected,
                derived,
            } => write!(
                f,
                "journal replay roster mismatch at epoch {epoch}: \
                 record says {expected:#x}, deltas derive {derived:#x}"
            ),
            RecoverError::Journal(e) => write!(f, "journal replay failed: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<JournalError> for RecoverError {
    fn from(e: JournalError) -> Self {
        RecoverError::Journal(e)
    }
}

/// One session's replayed state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveredSession {
    /// Cumulative service counters as of the last journaled epoch.
    pub stats: SessionStats,
    /// Whether the session was in the live roster when the journal
    /// ended. Live sessions are expected back via `Resume`.
    pub live: bool,
}

/// The state a restarted (or promoted) server resumes from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveredState {
    /// The next epoch to serve: one past the last journaled episode.
    pub epoch: u64,
    /// The highest incarnation the journal has recorded.
    pub incarnation: u64,
    /// Every session the journal knows about.
    pub sessions: BTreeMap<SessionId, RecoveredSession>,
    /// Whether the journal ended in a torn (partially written) entry —
    /// the expected shape after a crash mid-append; the torn suffix is
    /// ignored, which is safe because a torn append was never followed
    /// by a broadcast.
    pub torn_tail: bool,
}

impl RecoveredState {
    /// The live roster implied by the replayed membership deltas.
    pub fn roster(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.sessions
            .iter()
            .filter(|(_, s)| s.live)
            .map(|(&sid, _)| sid)
    }
}

/// Folds one journal record into the replayed state. Standby tails call
/// this incrementally; [`recover`] calls it over the whole journal.
pub fn apply(state: &mut RecoveredState, record: &JournalRecord) -> Result<(), RecoverError> {
    match record {
        JournalRecord::Incarnation { inc } | JournalRecord::Heartbeat { inc } => {
            state.incarnation = state.incarnation.max(*inc);
        }
        JournalRecord::Join {
            session, rejoin, ..
        } => {
            let s = state.sessions.entry(*session).or_default();
            s.live = true;
            if *rejoin {
                s.stats.rejoins += 1;
            }
        }
        JournalRecord::Evict { session, .. } => {
            let s = state.sessions.entry(*session).or_default();
            s.live = false;
            s.stats.evictions += 1;
        }
        JournalRecord::Leave { session, .. } => {
            state.sessions.entry(*session).or_default().live = false;
        }
        JournalRecord::Episode {
            epoch,
            inc,
            roster_hash: expected,
            completers,
        } => {
            // A standby that replays the full journal after already
            // tailing a prefix sees old episodes again; cumulative
            // counters make reapplication harmless, but skipping keeps
            // the hash check honest (the roster has moved on).
            if *epoch < state.epoch {
                return Ok(());
            }
            let derived = roster_hash(state.roster());
            if derived != *expected {
                return Err(RecoverError::RosterMismatch {
                    epoch: *epoch,
                    expected: *expected,
                    derived,
                });
            }
            for &(sid, done) in completers {
                let s = state.sessions.entry(sid).or_default();
                s.stats.completed = s.stats.completed.max(done);
            }
            state.epoch = epoch + 1;
            state.incarnation = state.incarnation.max(*inc);
        }
        JournalRecord::Snapshot {
            epoch,
            inc,
            sessions,
        } => {
            if *epoch < state.epoch {
                return Ok(());
            }
            state.epoch = *epoch;
            state.incarnation = state.incarnation.max(*inc);
            state.sessions = sessions
                .iter()
                .map(|e| {
                    (
                        e.session,
                        RecoveredSession {
                            stats: e.stats,
                            live: e.live,
                        },
                    )
                })
                .collect();
        }
    }
    Ok(())
}

/// Decodes a raw journal byte stream into records plus a torn-tail
/// flag. A torn tail (length prefix or checksum cut short by a crash
/// mid-append) is a clean stop, not an error.
pub fn decode_stream(bytes: &[u8]) -> (Vec<JournalRecord>, bool) {
    let mut records = Vec::new();
    let mut at = 0;
    while let Some((rec, next)) = next_entry(bytes, at) {
        records.push(rec);
        at = next;
    }
    (records, at != bytes.len())
}

/// Replays the whole journal into a [`RecoveredState`].
pub fn recover(journal: &Journal) -> Result<RecoveredState, RecoverError> {
    let bytes = journal.read_all()?;
    let (records, torn) = decode_stream(&bytes);
    let mut state = RecoveredState {
        torn_tail: torn,
        ..RecoveredState::default()
    };
    for rec in &records {
        apply(&mut state, rec)?;
    }
    Ok(state)
}

/// A warm standby: tails the primary's replication stream (framed
/// journal entries teed by the release winner, plus heartbeats from the
/// lowest live shard) and tracks how far behind the primary it is and
/// when the primary was last heard from. Promotion itself goes through
/// [`FailoverCluster::promote`], which re-derives state from the
/// durable journal — the standby's tailed copy is a lag/liveness
/// monitor, never the source of truth, so a lossy replication stream
/// can delay a takeover but never corrupt one.
pub struct Standby {
    inner: Arc<StandbyInner>,
    handle: Option<JoinHandle<()>>,
}

struct StandbyInner {
    state: Mutex<RecoveredState>,
    /// Nanos since `base` when the primary was last heard from.
    last_heard: AtomicU64,
    base: Instant,
    stop: AtomicBool,
}

impl Standby {
    /// Starts tailing `transport`, seeded with `initial` (typically
    /// [`recover`] over the journal so the standby starts warm).
    pub fn spawn(mut transport: Box<dyn Transport>, initial: RecoveredState) -> Standby {
        let inner = Arc::new(StandbyInner {
            state: Mutex::new(initial),
            last_heard: AtomicU64::new(0),
            base: Instant::now(),
            stop: AtomicBool::new(false),
        });
        let tail = inner.clone();
        let handle = std::thread::Builder::new()
            .name("combar-net-standby".into())
            .spawn(move || {
                let mut buf: Vec<u8> = Vec::new();
                while !tail.stop.load(Ordering::Acquire) {
                    match transport.recv_timeout(Duration::from_millis(2)) {
                        Ok(frame) => {
                            // Any frame — even a heartbeat, even one we
                            // cannot yet parse because its tail is in
                            // the next frame — proves the primary is
                            // alive.
                            tail.beat();
                            buf.extend_from_slice(&frame);
                            let mut at = 0;
                            while let Some((rec, next)) = next_entry(&buf, at) {
                                at = next;
                                let mut st = tail.state.lock().unwrap_or_else(|e| e.into_inner());
                                // A tailed stream can carry records the
                                // journal-replayed seed already covers;
                                // apply() skips those. A hash mismatch
                                // here only stalls the monitor — the
                                // promotion path re-derives from the
                                // journal regardless.
                                let _ = apply(&mut st, &rec);
                            }
                            buf.drain(..at);
                        }
                        Err(crate::transport::NetError::Timeout) => {}
                        Err(crate::transport::NetError::Closed) => return,
                    }
                }
            })
            .expect("spawn standby thread");
        Standby {
            inner,
            handle: Some(handle),
        }
    }

    /// Whether the primary has been silent for longer than `grace`.
    /// Heartbeats arrive every server tick, so a well-chosen grace is
    /// several ticks — long enough to ride out scheduling noise, short
    /// enough to take over before clients exhaust their retry budgets.
    pub fn lapsed(&self, grace: Duration) -> bool {
        let heard = Duration::from_nanos(self.inner.last_heard.load(Ordering::Acquire));
        self.inner.base.elapsed().saturating_sub(heard) > grace
    }

    /// The epoch the standby's tailed state has reached (its lag behind
    /// the primary is the primary's epoch minus this).
    pub fn epoch(&self) -> u64 {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .epoch
    }

    /// Stops the tail thread.
    pub fn stop(mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl StandbyInner {
    fn beat(&self) {
        self.last_heard
            .store(self.base.elapsed().as_nanos() as u64, Ordering::Release);
    }
}

impl Drop for Standby {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// A one-journal failover cluster: at most one installed primary at a
/// time, a generation counter that tells [`ReconnectTransport`] clients
/// when to redial, and kill/restart/promote chaos hooks. This is the
/// harness the restart soaks drive; real deployments would replace the
/// in-process dial with a network address flip, and nothing else.
pub struct FailoverCluster {
    core: Arc<ClusterCore>,
}

struct ClusterCore {
    journal: Arc<Journal>,
    primary: Mutex<Option<EpochServer>>,
    generation: Arc<AtomicU64>,
    cfg: Mutex<ServerConfig>,
}

impl FailoverCluster {
    /// Starts a journaled primary and wraps it in a cluster handle.
    pub fn start(cfg: ServerConfig, journal: Arc<Journal>) -> FailoverCluster {
        let primary = EpochServer::start_journaled(cfg.clone(), journal.clone());
        FailoverCluster {
            core: Arc::new(ClusterCore {
                journal,
                primary: Mutex::new(Some(primary)),
                generation: Arc::new(AtomicU64::new(1)),
                cfg: Mutex::new(cfg),
            }),
        }
    }

    /// The shared journal.
    pub fn journal(&self) -> Arc<Journal> {
        self.core.journal.clone()
    }

    /// A self-healing client endpoint: dials the current primary and
    /// redials whenever the cluster generation moves (kill, restart,
    /// promotion). During an outage it behaves like a lossy wire.
    pub fn client_transport(&self) -> ReconnectTransport {
        let core = self.core.clone();
        let generation = core.generation.clone();
        ReconnectTransport::new(
            generation.clone(),
            Box::new(move || {
                let primary = core.primary.lock().unwrap_or_else(|e| e.into_inner());
                match primary.as_ref() {
                    Some(srv) if !srv.halted() => Some((
                        Box::new(srv.connect()) as Box<dyn Transport>,
                        core.generation.load(Ordering::Acquire),
                    )),
                    _ => None,
                }
            }),
        )
    }

    /// Kills the primary outright: halts it (ingress drops, shards
    /// exit, clients hear silence) and discards the handle. The journal
    /// survives; nothing else does.
    pub fn kill_primary(&self) {
        let server = {
            let mut primary = self.core.primary.lock().unwrap_or_else(|e| e.into_inner());
            primary.take()
        };
        if let Some(server) = server {
            server.halt();
            drop(server);
        }
        self.core.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// Removes the primary from the cluster *without* halting it — the
    /// split-brain chaos hook. The returned server keeps running (a
    /// zombie that believes it is still the authority) while the
    /// cluster installs a successor; the fencing test drives both and
    /// proves the zombie cannot extend the ledger.
    pub fn detach_primary(&self) -> Option<EpochServer> {
        let server = {
            let mut primary = self.core.primary.lock().unwrap_or_else(|e| e.into_inner());
            primary.take()
        };
        self.core.generation.fetch_add(1, Ordering::AcqRel);
        server
    }

    /// Restarts from the journal: replays it, resumes a fresh server at
    /// the recovered epoch (with a new fencing incarnation), installs
    /// it, and bumps the generation so clients redial. Returns the
    /// recovered state the new primary was seeded with.
    pub fn restart_primary(&self) -> Result<RecoveredState, RecoverError> {
        let cfg = self
            .core
            .cfg
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        self.restart_primary_with(cfg)
    }

    /// [`restart_primary`](Self::restart_primary) with a config
    /// override (e.g. a different shard count after "replacing the
    /// host" — recovery does not require the old topology).
    pub fn restart_primary_with(&self, cfg: ServerConfig) -> Result<RecoveredState, RecoverError> {
        // Fence *before* reading: claiming a higher incarnation first
        // locks any zombie predecessor out of the journal, so the
        // replay below cannot race a concurrent append — without this,
        // a deposed-but-running primary could journal (and ack!) an
        // epoch after the successor read the journal, and every client
        // that observed it would be told `Diverged` by a successor
        // that is honestly behind. (`resume` bumps again to claim the
        // new server's own incarnation; incarnations need only be
        // monotonic, not dense.)
        self.core
            .journal
            .bump_incarnation()
            .map_err(RecoverError::Journal)?;
        let state = recover(&self.core.journal)?;
        let server = EpochServer::resume(cfg.clone(), self.core.journal.clone(), state.clone());
        {
            let mut primary = self.core.primary.lock().unwrap_or_else(|e| e.into_inner());
            *primary = Some(server);
        }
        *self.core.cfg.lock().unwrap_or_else(|e| e.into_inner()) = cfg;
        self.core.generation.fetch_add(1, Ordering::AcqRel);
        Ok(state)
    }

    /// Attaches a warm standby to the current primary over an
    /// in-process pair: the primary tees journaled batches and
    /// heartbeats to it, and the standby seeds itself from a journal
    /// replay so it starts warm.
    pub fn attach_standby(&self) -> Result<Standby, RecoverError> {
        let seed = recover(&self.core.journal)?;
        let (tee, tail) = loopback_pair();
        {
            let primary = self.core.primary.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(srv) = primary.as_ref() {
                srv.attach_replica(Box::new(tee));
            }
        }
        Ok(Standby::spawn(Box::new(tail), seed))
    }

    /// Promotes a standby: re-derives state from the durable journal
    /// (NOT the standby's possibly-lagging tail), resumes a server with
    /// a fresh incarnation — which fences any zombie predecessor — and
    /// installs it. The standby handle should be stopped by the caller.
    pub fn promote(&self) -> Result<RecoveredState, RecoverError> {
        self.restart_primary()
    }

    /// Runs `f` against the installed primary, if any.
    pub fn with_primary<R>(&self, f: impl FnOnce(&EpochServer) -> R) -> Option<R> {
        let primary = self.core.primary.lock().unwrap_or_else(|e| e.into_inner());
        primary.as_ref().map(f)
    }

    /// Orderly shutdown of whatever primary is installed.
    pub fn shutdown(&self) {
        let server = {
            let mut primary = self.core.primary.lock().unwrap_or_else(|e| e.into_inner());
            primary.take()
        };
        if let Some(server) = server {
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::snapshot_record;

    fn ep(epoch: u64, roster: &[SessionId], completers: &[(SessionId, u64)]) -> JournalRecord {
        JournalRecord::Episode {
            epoch,
            inc: 1,
            roster_hash: roster_hash(roster.iter().copied()),
            completers: completers.to_vec(),
        }
    }

    #[test]
    fn replay_reconstructs_epoch_roster_and_counters() {
        let journal = Journal::memory();
        journal
            .append_batch(
                1,
                &[
                    JournalRecord::Incarnation { inc: 1 },
                    JournalRecord::Join {
                        session: 7,
                        epoch: 0,
                        rejoin: false,
                    },
                    JournalRecord::Join {
                        session: 9,
                        epoch: 0,
                        rejoin: false,
                    },
                    ep(0, &[7, 9], &[(7, 1), (9, 1)]),
                    JournalRecord::Evict {
                        session: 9,
                        epoch: 1,
                    },
                    ep(1, &[7], &[(7, 2)]),
                ],
            )
            .unwrap();
        let state = recover(&journal).unwrap();
        assert_eq!(state.epoch, 2);
        assert!(!state.torn_tail);
        assert_eq!(state.roster().collect::<Vec<_>>(), vec![7]);
        assert_eq!(state.sessions[&7].stats.completed, 2);
        assert_eq!(state.sessions[&9].stats.completed, 1);
        assert_eq!(state.sessions[&9].stats.evictions, 1);
        assert!(!state.sessions[&9].live);
    }

    #[test]
    fn replay_rejects_a_roster_hash_mismatch() {
        let journal = Journal::memory();
        journal
            .append_batch(
                1,
                &[
                    JournalRecord::Join {
                        session: 7,
                        epoch: 0,
                        rejoin: false,
                    },
                    // Hash claims sessions {7, 8} but only 7 joined.
                    ep(0, &[7, 8], &[(7, 1)]),
                ],
            )
            .unwrap();
        match recover(&journal) {
            Err(RecoverError::RosterMismatch { epoch: 0, .. }) => {}
            other => panic!("expected roster mismatch, got {other:?}"),
        }
    }

    #[test]
    fn torn_tail_is_a_clean_stop_not_an_error() {
        let journal = Journal::memory();
        journal
            .append_batch(
                1,
                &[
                    JournalRecord::Join {
                        session: 3,
                        epoch: 0,
                        rejoin: false,
                    },
                    ep(0, &[3], &[(3, 1)]),
                ],
            )
            .unwrap();
        journal.truncate_tail(3).unwrap(); // crash mid-append
        let state = recover(&journal).unwrap();
        assert!(state.torn_tail);
        // The Join survived; the torn Episode did not.
        assert_eq!(state.epoch, 0);
        assert!(state.sessions[&3].live);
    }

    #[test]
    fn snapshot_replay_matches_full_history_replay() {
        let journal = Journal::memory();
        journal
            .append_batch(
                1,
                &[
                    JournalRecord::Incarnation { inc: 1 },
                    JournalRecord::Join {
                        session: 1,
                        epoch: 0,
                        rejoin: false,
                    },
                    JournalRecord::Join {
                        session: 2,
                        epoch: 0,
                        rejoin: false,
                    },
                    ep(0, &[1, 2], &[(1, 1), (2, 1)]),
                    ep(1, &[1, 2], &[(1, 2), (2, 2)]),
                ],
            )
            .unwrap();
        let full = recover(&journal).unwrap();
        let sessions: BTreeMap<SessionId, (bool, SessionStats)> = full
            .sessions
            .iter()
            .map(|(&sid, s)| (sid, (s.live, s.stats)))
            .collect();
        let snap = snapshot_record(full.epoch, 1, &sessions);
        journal.compact(1, &snap).unwrap();
        let compacted = recover(&journal).unwrap();
        assert_eq!(compacted.epoch, full.epoch);
        assert_eq!(compacted.sessions, full.sessions);
        // New history appended after the snapshot keeps replaying.
        journal
            .append_batch(1, &[ep(full.epoch, &[1, 2], &[(1, 3), (2, 3)])])
            .unwrap();
        let extended = recover(&journal).unwrap();
        assert_eq!(extended.epoch, full.epoch + 1);
        assert_eq!(extended.sessions[&1].stats.completed, 3);
    }

    #[test]
    fn clients_ride_through_a_kill_and_restart() {
        use crate::client::{BarrierClient, ClientConfig};
        let journal = Journal::memory();
        let cluster = FailoverCluster::start(
            ServerConfig {
                shards: 2,
                tick: Duration::from_micros(200),
                recovery_grace: Duration::from_millis(200),
                ..ServerConfig::default()
            },
            journal,
        );
        let mk = |sid| {
            BarrierClient::new(
                cluster.client_transport(),
                sid,
                ClientConfig {
                    request_timeout: Duration::from_millis(5),
                    max_attempts: 400,
                    ..ClientConfig::default()
                },
            )
        };
        let (a, b) = (mk(1), mk(2));
        // Clients complete 3 epochs, pause until the restart has
        // happened, then complete 3 more — so the second half provably
        // crosses the crash boundary.
        let restarted = AtomicBool::new(false);
        let run = |mut c: BarrierClient<ReconnectTransport>| {
            c.join().unwrap();
            for _ in 0..3 {
                c.arrive().unwrap();
            }
            while !restarted.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_micros(500));
            }
            for _ in 0..3 {
                if let Err(e) = c.arrive() {
                    panic!("post-restart arrive failed: {e:?}");
                }
            }
            c
        };
        std::thread::scope(|s| {
            let ha = s.spawn(|| run(a));
            let hb = s.spawn(|| run(b));
            // Wait for the first half's epochs to land, then pull the
            // plug and restart.
            let t0 = Instant::now();
            while cluster.with_primary(|p| p.episodes_released()).unwrap_or(0) < 3 {
                assert!(t0.elapsed() < Duration::from_secs(10), "no progress");
                std::thread::sleep(Duration::from_millis(1));
            }
            cluster.kill_primary();
            std::thread::sleep(Duration::from_millis(5));
            let state = cluster.restart_primary().unwrap();
            restarted.store(true, Ordering::Release);
            assert!(state.epoch >= 3);
            assert_eq!(state.roster().count(), 2, "both sessions journaled live");
            let (a, b) = (ha.join().unwrap(), hb.join().unwrap());
            // Both sessions completed all 6 epochs with zero double
            // counting despite the crash.
            let stats = cluster
                .with_primary(|p| p.session_stats())
                .expect("primary installed");
            assert_eq!(a.stats().episodes, 6);
            assert_eq!(b.stats().episodes, 6);
            assert!(
                a.stats().resumes + a.stats().rejoins >= 1,
                "session 1 never re-proved itself: {:?}",
                a.stats()
            );
            for sid in [1u64, 2] {
                assert!(
                    stats[&sid].completed >= 5,
                    "server ledger lost session {sid}: {stats:?}"
                );
            }
        });
        cluster.shutdown();
    }

    #[test]
    fn fenced_zombie_primary_cannot_release() {
        use crate::client::{BarrierClient, ClientConfig};
        let journal = Journal::memory();
        let cluster = FailoverCluster::start(
            ServerConfig {
                shards: 1,
                tick: Duration::from_micros(200),
                recovery_grace: Duration::from_millis(50),
                ..ServerConfig::default()
            },
            journal.clone(),
        );
        // A client bound directly to the original primary (NOT via the
        // cluster dial): it will keep talking to the zombie.
        let zombie_conn = cluster
            .with_primary(|p| p.connect())
            .expect("primary installed");
        let mut stale = BarrierClient::new(
            zombie_conn,
            9,
            ClientConfig {
                request_timeout: Duration::from_millis(5),
                max_attempts: 40,
                ..ClientConfig::default()
            },
        );
        stale.join().unwrap();
        stale.arrive().unwrap(); // epoch 0 releases and is journaled
        let zombie = cluster.detach_primary().expect("primary was installed");
        let zombie_inc = zombie.incarnation();
        // Promotion claims a newer incarnation from the shared journal.
        cluster.promote().unwrap();
        let new_inc = cluster.with_primary(|p| p.incarnation()).unwrap();
        assert!(new_inc > zombie_inc);
        let released_before = zombie.episodes_released();
        // The zombie still thinks it is the authority; drive it. Its
        // next release attempt must hit the journal fence and freeze it
        // forever — the client sees only silence (timeout), never a
        // zombie Release.
        let r = stale.arrive();
        assert!(
            r.is_err(),
            "zombie must not be able to release an epoch: {r:?}"
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while !zombie.fenced() && Instant::now() < deadline {
            let _ = stale.send_arrive();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(zombie.fenced(), "zombie never hit the journal fence");
        assert_eq!(
            zombie.episodes_released(),
            released_before,
            "a fenced zombie extended the episode ledger"
        );
        // And the fenced epoch bump never reached the journal.
        let state = recover(&journal).unwrap();
        assert_eq!(state.epoch, released_before);
        zombie.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn lost_journal_suffix_surfaces_as_diverged() {
        use crate::client::{BarrierClient, ClientConfig};
        use combar_rt::BarrierError;
        let journal = Journal::memory();
        let cluster = FailoverCluster::start(
            ServerConfig {
                shards: 1,
                tick: Duration::from_micros(200),
                recovery_grace: Duration::from_millis(500),
                ..ServerConfig::default()
            },
            journal.clone(),
        );
        let mut c = BarrierClient::new(
            cluster.client_transport(),
            4,
            ClientConfig {
                request_timeout: Duration::from_millis(5),
                max_attempts: 400,
                ..ClientConfig::default()
            },
        );
        c.join().unwrap();
        for _ in 0..4 {
            c.arrive().unwrap();
        }
        cluster.kill_primary();
        // "Disk rollback": lose the whole journal suffix back past
        // epochs the client already observed.
        let len = journal.len().unwrap();
        journal.truncate_tail(len / 2).unwrap();
        cluster.restart_primary().unwrap();
        // The client claims an epoch the recovered authority never
        // reached: the only honest answer is Diverged.
        let r = c.arrive();
        assert_eq!(r, Err(BarrierError::Diverged));
        assert!(!c.is_joined());
        cluster.shutdown();
    }

    #[test]
    fn standby_tails_frames_and_tracks_liveness() {
        let (mut tee, tail) = loopback_pair();
        let standby = Standby::spawn(Box::new(tail), RecoveredState::default());
        assert!(standby.lapsed(Duration::from_millis(0)));
        let mut bytes = Vec::new();
        for rec in [
            JournalRecord::Join {
                session: 4,
                epoch: 0,
                rejoin: false,
            },
            ep(0, &[4], &[(4, 1)]),
        ] {
            bytes.extend_from_slice(&crate::journal::frame_entry(&rec));
        }
        tee.send(&bytes).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while standby.epoch() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(standby.epoch(), 1);
        assert!(!standby.lapsed(Duration::from_millis(500)));
        // A bare heartbeat refreshes liveness without changing state.
        tee.send(&crate::journal::frame_entry(&JournalRecord::Heartbeat {
            inc: 1,
        }))
        .unwrap();
        standby.stop();
    }
}
