//! Async session multiplexer: [`crate::traffic`]'s driver loop restated
//! as a task on the `combar-rt` executor.
//!
//! The threaded traffic generator dedicates one OS thread per driver
//! and spins its round loop; this module packages the same two-phase
//! loop — (re)send every owed arrival, then one short bounded poll per
//! in-flight session — as a single future, so *one process* can stack
//! many [`SessionMux`] tasks onto a handful of
//! [`combar_rt::Executor`] drivers next to hundreds of thousands of
//! in-process [`combar_rt::AsyncBarrier`] participants. That is the
//! bridge between the async epoch runtime and the networked epoch
//! server: logical participants and networked sessions are the same
//! commodity, multiplexed by the same drivers.
//!
//! Two rules keep the cooperative loop honest:
//!
//! * **Never park on one session.** [`BarrierClient::poll_release`]
//!   is called with a small *non-zero* budget (a zero budget never
//!   reads the wire) so each session costs microseconds per round, and
//!   the task [`yield_now`]s between rounds — a mux that blocked on
//!   session B's release while its session A still owed an arrival
//!   would wedge every driver transitively (the distributed
//!   self-deadlock [`crate::traffic`] documents).
//! * **Pace, don't sleep.** Arrival re-sends are scheduled with
//!   [`JitterBackoff::next_deadline`] — the non-blocking form — against
//!   a clock sampled once per round; only an entirely idle round parks
//!   the task, on the shared [`Timer`], never on the OS clock.
//!
//! Churn is scripted the same way the threaded generator scripts kills:
//! sessions in [`MuxConfig::churn`] *cancel mid-epoch* — they leave at
//! an episode boundary with an arrival possibly still in flight — and
//! rejoin on the next round, exercising the server's exactly-once
//! ledger under client-initiated membership churn.

use std::time::{Duration, Instant};

use combar_chaos::{NetChaosConfig, NetFaultPlan};
use combar_rt::{yield_now, BarrierError, JitterBackoff, Timer};

use crate::client::{BarrierClient, ClientConfig};
use crate::faulty::FaultyTransport;
use crate::proto::SessionId;
use crate::server::EpochServer;
use crate::transport::Transport;

/// Shape of one multiplexed session group.
#[derive(Debug, Clone)]
pub struct MuxConfig {
    /// Session ids `first_session .. first_session + sessions`.
    pub sessions: u64,
    /// First session id (ids double as chaos stream seeds).
    pub first_session: u64,
    /// Episodes every session must complete.
    pub episodes: u64,
    /// Per-client retry tuning. Keep `request_timeout` and
    /// `max_attempts` small: `rejoin` blocks the driver for at most
    /// roughly their product, so milliseconds-scale settings keep the
    /// executor cooperative.
    pub client: ClientConfig,
    /// Wire chaos applied to every connection (client side), or `None`
    /// for a clean wire.
    pub chaos: Option<NetChaosConfig>,
    /// Per-session budget of one release poll. Must be non-zero — a
    /// zero-duration [`BarrierClient::poll_release`] returns without
    /// reading the wire at all.
    pub poll: Duration,
    /// How long an entirely idle round parks the task on the timer.
    pub nap: Duration,
    /// Sessions that cancel mid-run: leave (with an arrival possibly
    /// in flight) after completing [`MuxConfig::churn_after`] episodes,
    /// then rejoin and finish their quota.
    pub churn: Vec<SessionId>,
    /// Episodes a churning session completes before it cancels.
    pub churn_after: u64,
}

impl Default for MuxConfig {
    fn default() -> Self {
        Self {
            sessions: 8,
            first_session: 0,
            episodes: 25,
            client: ClientConfig {
                request_timeout: Duration::from_millis(2),
                backoff_base: Duration::from_micros(500),
                backoff_max: Duration::from_millis(2),
                max_attempts: 10,
            },
            chaos: None,
            poll: Duration::from_micros(10),
            nap: Duration::from_micros(200),
            churn: Vec::new(),
            churn_after: 0,
        }
    }
}

/// One session's view of its run — the client half of the ledger a
/// test reconciles against [`EpochServer::session_stats`]. The server
/// misses *voluntary* churn (an orderly `Leave` removes the session
/// outright, so the rejoin `Hello` finds no tombstone to count), so
/// exactly-once accounting needs the client-side rejoin count carried
/// here.
#[derive(Debug, Clone, Copy)]
pub struct SessionOutcome {
    /// The session id.
    pub session: SessionId,
    /// Episodes the client observed released.
    pub done: u64,
    /// The client's retry / eviction / rejoin counters.
    pub stats: crate::client::ClientStats,
}

/// Outcome of one [`SessionMux::run`].
#[derive(Debug, Clone, Default)]
pub struct MuxReport {
    /// Per-session completion counts and client-side ledger counters.
    pub completed: Vec<SessionOutcome>,
    /// Arrive→release latencies in microseconds, sorted ascending.
    pub latencies_us: Vec<u64>,
    /// Total client-side request re-sends.
    pub retries: u64,
    /// Total evictions observed by clients.
    pub evictions: u64,
    /// Total successful rejoins (evictions healed plus churn
    /// re-admissions).
    pub rejoins: u64,
    /// Scripted cancels actually performed.
    pub cancels: u64,
}

impl MuxReport {
    /// Completed episodes summed over all sessions.
    pub fn total_episodes(&self) -> u64 {
        self.completed.iter().map(|o| o.done).sum()
    }

    /// The `p`-th percentile latency (0 ≤ p ≤ 100), or 0 if empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * (self.latencies_us.len() - 1) as f64).round() as usize;
        self.latencies_us[rank.min(self.latencies_us.len() - 1)]
    }

    /// Folds another report (e.g. a peer mux task's) into this one.
    pub fn merge(&mut self, other: &MuxReport) {
        self.completed.extend(other.completed.iter().copied());
        self.latencies_us.extend(other.latencies_us.iter().copied());
        self.latencies_us.sort_unstable();
        self.retries += other.retries;
        self.evictions += other.evictions;
        self.rejoins += other.rejoins;
        self.cancels += other.cancels;
    }
}

struct MuxSession {
    client: BarrierClient<Box<dyn Transport>>,
    done: u64,
    in_flight: Option<Instant>,
    /// When the in-flight arrival is next re-sent (idempotently) —
    /// jitter-paced so a thundering herd of re-sends decorrelates.
    resend_at: Instant,
    backoff: JitterBackoff,
    /// Scripted cancel still owed (None once performed or never due).
    cancel_at: Option<u64>,
}

impl MuxSession {
    fn fresh_backoff(sid: SessionId, cfg: &MuxConfig) -> JitterBackoff {
        JitterBackoff::new(
            sid ^ 0x6d75_785f,
            cfg.client.request_timeout,
            cfg.client.request_timeout * 8,
        )
    }
}

/// A group of client sessions driven by one async task.
pub struct SessionMux {
    cfg: MuxConfig,
    sessions: Vec<MuxSession>,
    cancels: u64,
}

impl SessionMux {
    /// Connects the `part`-th of `parts` equal slices of
    /// [`MuxConfig::sessions`] (session id modulo `parts`), each on its
    /// own loopback connection, decorated with a [`FaultyTransport`]
    /// when chaos is configured. The chaos stream seeds (`2·sid`,
    /// `2·sid + 1`) match [`crate::traffic`], so a mux run replays the
    /// same wire schedule as a threaded run of the same config.
    pub fn connect(server: &EpochServer, cfg: &MuxConfig, part: usize, parts: usize) -> Self {
        assert!(parts >= 1 && part < parts);
        assert!(cfg.poll > Duration::ZERO, "poll budget must be non-zero");
        let sessions = (cfg.first_session..cfg.first_session + cfg.sessions)
            .filter(|sid| (sid - cfg.first_session) as usize % parts == part)
            .map(|sid| {
                let base = server.connect();
                let transport: Box<dyn Transport> = match &cfg.chaos {
                    Some(chaos) => Box::new(FaultyTransport::new(
                        base,
                        NetFaultPlan::new(*chaos),
                        2 * sid,
                        2 * sid + 1,
                    )),
                    None => Box::new(base),
                };
                MuxSession {
                    client: BarrierClient::new(transport, sid, cfg.client),
                    done: 0,
                    in_flight: None,
                    resend_at: Instant::now(),
                    backoff: MuxSession::fresh_backoff(sid, cfg),
                    cancel_at: cfg
                        .churn
                        .contains(&sid)
                        .then_some(cfg.churn_after.min(cfg.episodes.saturating_sub(1))),
                }
            })
            .collect();
        Self {
            cfg: cfg.clone(),
            sessions,
            cancels: 0,
        }
    }

    /// Joins every session (blocking; call before spawning the future
    /// onto an executor so admission retries never stall a driver).
    ///
    /// # Panics
    ///
    /// Panics if a session exhausts its attempt budget.
    pub fn join_all(&mut self) {
        for s in &mut self.sessions {
            s.client
                .join()
                .unwrap_or_else(|e| panic!("session {} failed to join: {e:?}", s.client.session()));
        }
    }

    /// Drives every session to its episode quota and reports.
    ///
    /// # Panics
    ///
    /// Panics on a non-recoverable error (`Poisoned`, or a rejoin
    /// rejected outright) — a wedged epoch is a test failure, not a
    /// hang.
    pub async fn run(mut self, timer: Timer) -> MuxReport {
        let mut latencies = Vec::new();
        while self.sessions.iter().any(|s| s.done < self.cfg.episodes) {
            let mut progress = false;
            // Phase 1: cancel the scripted, rejoin the evicted, (re)send
            // every owed arrival. One clock sample paces the round.
            let now = Instant::now();
            let episodes = self.cfg.episodes;
            for s in self.sessions.iter_mut().filter(|s| s.done < episodes) {
                if s.cancel_at == Some(s.done) {
                    // Cancel mid-epoch: the arrival (if any) stays on
                    // the server's books; Leave folds it out at the
                    // boundary. Rejoin next round.
                    s.cancel_at = None;
                    s.in_flight = None;
                    self.cancels += 1;
                    let _ = s.client.leave();
                    progress = true;
                    continue;
                }
                if !s.client.is_joined() {
                    match s.client.rejoin() {
                        Ok(_) => {
                            s.in_flight = None;
                            progress = true;
                        }
                        Err(BarrierError::Timeout) => {} // next round
                        Err(e) => panic!("session {} rejoin: {e:?}", s.client.session()),
                    }
                    continue;
                }
                if s.in_flight.is_none() || now >= s.resend_at {
                    match s.client.send_arrive() {
                        Ok(()) => {
                            s.resend_at = s.backoff.next_deadline(now);
                            if s.in_flight.is_none() {
                                s.in_flight = Some(now);
                                progress = true;
                            }
                        }
                        Err(BarrierError::Evicted) => {} // rejoin next round
                        Err(e) => panic!("session {}: {e:?}", s.client.session()),
                    }
                }
            }
            // Phase 2: one bounded poll per in-flight session.
            for s in self.sessions.iter_mut().filter(|s| s.done < episodes) {
                let Some(t0) = s.in_flight else { continue };
                match s.client.poll_release(self.cfg.poll) {
                    Ok(_) => {
                        latencies.push(t0.elapsed().as_micros() as u64);
                        s.done += 1;
                        s.in_flight = None;
                        s.backoff = MuxSession::fresh_backoff(s.client.session(), &self.cfg);
                        progress = true;
                        if s.done >= episodes {
                            // Orderly departure so peers never wait on a
                            // finished session.
                            let _ = s.client.leave();
                        }
                    }
                    Err(BarrierError::Evicted) => {
                        s.in_flight = None; // rejoin next round
                        progress = true;
                    }
                    Err(BarrierError::Timeout) => {} // not yet
                    Err(e) => panic!("session {}: {e:?}", s.client.session()),
                }
            }
            if progress {
                // Stay hot but let peer tasks on this driver run.
                yield_now().await;
            } else {
                // Nothing moved: park on the timer, not the OS clock.
                timer.sleep(self.cfg.nap).await;
            }
        }
        latencies.sort_unstable();
        let mut report = MuxReport {
            latencies_us: latencies,
            cancels: self.cancels,
            ..MuxReport::default()
        };
        for s in &self.sessions {
            let st = s.client.stats();
            report.completed.push(SessionOutcome {
                session: s.client.session(),
                done: s.done,
                stats: st,
            });
            report.retries += st.retries;
            report.evictions += st.evictions;
            report.rejoins += st.rejoins;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use combar_rt::{Deadline, Executor};
    use std::sync::{Arc, Mutex};

    /// Spawns `parts` mux tasks over `exec` and merges their reports.
    fn run_mux(server: &EpochServer, cfg: &MuxConfig, exec: &Executor, parts: usize) -> MuxReport {
        let timer = Timer::new();
        let reports = Arc::new(Mutex::new(MuxReport::default()));
        for part in 0..parts {
            let mut mux = SessionMux::connect(server, cfg, part, parts);
            mux.join_all();
            let timer = timer.clone();
            let reports = Arc::clone(&reports);
            exec.spawn(async move {
                let r = mux.run(timer).await;
                reports.lock().unwrap().merge(&r);
            });
        }
        assert!(
            exec.wait_idle(Deadline::after(Duration::from_secs(240))),
            "mux tasks failed to drain"
        );
        assert_eq!(exec.panics(), 0, "mux task panicked");
        let r = reports.lock().unwrap().clone();
        r
    }

    /// Every session's server-side ledger is exactly-once, reconciled
    /// against the client's view:
    ///
    /// * the server never credits more episodes than the client saw
    ///   released, except the one a scripted cancel abandoned in flight
    ///   (arrival released, client gone before the ack);
    /// * the server is never behind by more than one proxy-credited
    ///   episode per service interruption — the initial join plus each
    ///   rejoin (client-counted: the server cannot see voluntary churn).
    fn assert_ledger(server: &EpochServer, cfg: &MuxConfig, report: &MuxReport) {
        let stats = server.session_stats();
        for o in &report.completed {
            let st = stats.get(&o.session).copied().unwrap_or_default();
            let abandoned = u64::from(cfg.churn.contains(&o.session));
            assert!(
                st.completed <= o.done + abandoned,
                "session {}: server credited {} > client {} (+{abandoned})",
                o.session,
                st.completed,
                o.done
            );
            assert!(
                st.completed + 1 + st.evictions + o.stats.rejoins >= o.done,
                "session {}: ledger {st:?} + client {:?} cannot explain {} completions",
                o.session,
                o.stats,
                o.done
            );
        }
    }

    /// Pins the first `assert_ledger` slack term — the `+ 1` in the
    /// lower bound — at exact equality: a session's *joining* epoch is
    /// completed by its join-side proxy arrival, which deliberately
    /// does not tick the server's `completed` counter, while the client
    /// counts the (re-acked) release as done. One solo session whose
    /// join epoch provably releases before its first explicit arrival
    /// lands exhibits exactly `completed + 1 == done` — no more, no
    /// less — with zero evictions and rejoins, so nothing else can be
    /// hiding in the term.
    #[test]
    fn join_proxy_slack_is_exactly_one_episode() {
        let server = EpochServer::start(ServerConfig {
            shards: 1,
            tick: Duration::from_micros(200),
            lease: combar_rt::SupervisorConfig {
                min_grace: Duration::from_millis(200),
                sigma_mult: 4.0,
                max_misses: 3,
            },
            ..ServerConfig::default()
        });
        let cfg = MuxConfig {
            sessions: 1,
            episodes: 10,
            ..MuxConfig::default()
        };
        let timer = Timer::new();
        let exec = Executor::new(1);
        let mut mux = SessionMux::connect(&server, &cfg, 0, 1);
        mux.join_all();
        // A solo session's admission completes its joining epoch by
        // proxy at once; waiting here guarantees that release happened
        // before the mux sends the first explicit arrival, so the
        // explicit arrive is answered by a `Release` re-ack instead of
        // upgrading the proxy.
        std::thread::sleep(Duration::from_millis(10));
        let reports = Arc::new(Mutex::new(MuxReport::default()));
        {
            let timer = timer.clone();
            let reports = Arc::clone(&reports);
            exec.spawn(async move {
                let r = mux.run(timer).await;
                reports.lock().unwrap().merge(&r);
            });
        }
        assert!(exec.wait_idle(Deadline::after(Duration::from_secs(60))));
        assert_eq!(exec.panics(), 0);
        let report = reports.lock().unwrap().clone();
        let o = report.completed[0];
        assert_eq!(o.done, 10);
        let st = server.session_stats()[&o.session];
        assert_eq!(st.evictions, 0, "no lease noise may pollute the term");
        assert_eq!(o.stats.rejoins, 0);
        assert_eq!(
            st.completed + 1,
            o.done,
            "the join-proxy epoch must be exactly the one uncredited episode"
        );
        assert_ledger(&server, &cfg, &report);
        server.shutdown();
    }

    /// Pins the second `assert_ledger` slack term — `abandoned` in the
    /// upper bound — at exact equality: a scripted cancel whose
    /// in-flight arrival *releases* the epoch before the `Leave` frame
    /// is processed leaves the server crediting exactly one episode the
    /// client never saw acked (`completed == done + 1`).
    ///
    /// The interleaving is driven by hand on one shard (the shard's
    /// inbox is FIFO across connections, so send order from this thread
    /// is processing order), because the term is inherently a race in
    /// the mux loop: canceling *before* the releasing arrival would
    /// fold the arrival out with the session and no slack would arise.
    /// The canceller is also made to tick its joining epoch explicitly
    /// (its upgrade lands while a pacer still owes an arrival), so the
    /// join-proxy term from the test above provably contributes zero
    /// here and the `+1` measured is the abandoned episode alone.
    #[test]
    fn cancel_abandoned_arrival_is_credited_exactly_once_beyond_client() {
        use crate::transport::Transport;
        let server = EpochServer::start(ServerConfig {
            shards: 1,
            tick: Duration::from_micros(200),
            lease: combar_rt::SupervisorConfig {
                min_grace: Duration::from_millis(200),
                sigma_mult: 4.0,
                max_misses: 3,
            },
            ..ServerConfig::default()
        });
        let client_cfg = ClientConfig::default();
        let mk = |sid| {
            BarrierClient::new(
                Box::new(server.connect()) as Box<dyn Transport>,
                sid,
                client_cfg,
            )
        };
        let (mut a, mut c, mut d) = (mk(1), mk(2), mk(3));
        // Pacer c joins alone: epoch 0 releases instantly by its join
        // proxy. Wait for the shard to drain that release from its own
        // inbox before admitting d, so d provably lands at epoch 1 — an
        // epoch held open by exactly one owed arrival (c's).
        c.join().unwrap();
        std::thread::sleep(Duration::from_millis(10));
        d.join().unwrap();
        c.arrive().unwrap(); // re-acked epoch 0; c now owes epoch 1
        d.send_arrive().unwrap(); // d upgrades its join proxy: explicit
        a.join().unwrap(); // admitted mid-epoch-1 (proxy), epoch waits on c
        a.send_arrive().unwrap(); // a upgrades too: join epoch ticks explicitly
        c.send_arrive().unwrap(); // last owed arrival: epoch 1 releases
        assert_eq!(a.await_release().unwrap(), 1);
        assert_eq!(c.await_release().unwrap(), 1);
        assert_eq!(d.await_release().unwrap(), 1);
        // Three clean epochs, canceller never last so every tick is
        // explicit and fully acked.
        for epoch in 2..=4 {
            a.send_arrive().unwrap();
            d.send_arrive().unwrap();
            c.send_arrive().unwrap();
            assert_eq!(a.await_release().unwrap(), epoch);
            assert_eq!(c.await_release().unwrap(), epoch);
            assert_eq!(d.await_release().unwrap(), epoch);
        }
        // The cancel: a's arrival is the releasing one, then a leaves
        // without ever polling the ack.
        d.send_arrive().unwrap();
        c.send_arrive().unwrap();
        a.send_arrive().unwrap(); // releases epoch 5, credits a
                                  // The slack term needs the shard to process its own queued
                                  // `Release` (which ticks a's `completed`) before the `Leave`
                                  // folds a out; wait for the inbox to drain so the ordering is
                                  // not a race between this thread and the shard thread.
        std::thread::sleep(Duration::from_millis(10));
        a.leave().unwrap(); // processed after the release: gone before the ack
        assert_eq!(c.await_release().unwrap(), 5);
        assert_eq!(d.await_release().unwrap(), 5);
        let done_a = a.stats().episodes;
        assert_eq!(done_a, 4, "a acked epochs 1..=4 only");
        let st = server.session_stats()[&1];
        assert_eq!(st.evictions, 0, "orderly leave, not a lease lapse");
        assert_eq!(a.stats().rejoins, 0);
        assert_eq!(
            st.completed,
            done_a + 1,
            "exactly the abandoned in-flight episode is credited beyond the client"
        );
        server.shutdown();
    }

    #[test]
    fn clean_wire_mux_completes() {
        let server = EpochServer::start(ServerConfig {
            shards: 2,
            tick: Duration::from_micros(200),
            ..ServerConfig::default()
        });
        let cfg = MuxConfig {
            sessions: 16,
            episodes: 25,
            ..MuxConfig::default()
        };
        let exec = Executor::new(2);
        let report = run_mux(&server, &cfg, &exec, 4);
        assert_eq!(report.total_episodes(), 16 * 25);
        assert_eq!(report.completed.len(), 16);
        assert!(report.latencies_us.len() as u64 >= 16 * 25);
        assert!(report.percentile_us(99.0) >= report.percentile_us(50.0));
        assert_ledger(&server, &cfg, &report);
        server.shutdown();
    }

    #[test]
    fn churned_sessions_cancel_rejoin_and_finish() {
        let server = EpochServer::start(ServerConfig {
            shards: 2,
            tick: Duration::from_micros(200),
            ..ServerConfig::default()
        });
        let cfg = MuxConfig {
            sessions: 8,
            episodes: 20,
            churn: vec![1, 4, 6],
            churn_after: 7,
            ..MuxConfig::default()
        };
        let exec = Executor::new(2);
        let report = run_mux(&server, &cfg, &exec, 2);
        assert_eq!(report.cancels, 3, "every scripted cancel performed");
        assert!(report.rejoins >= 3, "every cancel rejoined");
        assert_eq!(report.total_episodes(), 8 * 20, "cancellers finish too");
        assert_ledger(&server, &cfg, &report);
        server.shutdown();
    }

    #[test]
    fn lossy_wire_mux_recovers() {
        let server = EpochServer::start(ServerConfig {
            shards: 2,
            tick: Duration::from_micros(200),
            ..ServerConfig::default()
        });
        let cfg = MuxConfig {
            sessions: 8,
            episodes: 15,
            chaos: Some(NetChaosConfig::lossy(0x6d75785f, 0.05)),
            ..MuxConfig::default()
        };
        let exec = Executor::new(2);
        let report = run_mux(&server, &cfg, &exec, 2);
        assert_eq!(report.total_episodes(), 8 * 15);
        assert_ledger(&server, &cfg, &report);
        server.shutdown();
    }
}
