//! The sharded epoch server: barrier-as-a-service.
//!
//! # Topology
//!
//! The server is a two-level combining tree in service clothing.
//! Sessions are partitioned across *shards* (leaf counters); each shard
//! is one thread that owns its sessions' membership and arrival state
//! outright, so every per-session transition happens at a quiescent
//! point by construction — the shard's message loop serializes arrivals,
//! evictions, and rejoins the same way PR 4's releaser window serializes
//! shape changes. A shard that observes all of its live sessions arrived
//! reports *one* batched completeness bit to the root (its
//! `shard_reported` flag — per-shard, so a report keeps its identity
//! and a dead shard's stale report is simply ignored); the shard whose
//! report completes the root view performs the release — bump the
//! global episode, clear the reported flags, broadcast a `Release`
//! control message — and every shard
//! fans the release out to its own clients. Arrival traffic therefore
//! aggregates up the tree (sessions → shard → root) and the release
//! broadcasts back down, exactly the paper's arrival/release split.
//!
//! # Liveness and degradation
//!
//! Two lease layers, both PR 4's [`Supervisor`]:
//!
//! * **Session leases** — each shard supervises its sessions; every
//!   request beats the session's slot. A live session that neither
//!   arrives nor heartbeats past its (exponentially widened) lease is
//!   evicted: its in-flight arrival is delivered by proxy and the
//!   membership folds without it, so an episode can never wedge on a
//!   dead client. The client observes [`Response::Evicted`] and may
//!   rejoin with a fresh `Hello`.
//! * **Shard leases** — every shard beats a root supervisor each loop
//!   tick; each shard is polled by exactly one peer (the lowest-indexed
//!   live shard polls everyone else, the second-lowest polls the
//!   lowest, so even the poller's own death is detected). A shard
//!   declared dead is folded out of the root view (episodes complete
//!   without it — its reported flag stops counting, never the other
//!   way), it observes the declaration and exits rather than serving on
//!   as a zombie, its sessions are notified `Evicted` best-effort, and
//!   their routing assignments are cleared so rejoins land on surviving
//!   shards — graceful shard degradation rather than a wedged epoch.
//!
//! # Idempotency
//!
//! All request handling is coordinate-based (see `proto`): an `Arrive`
//! for the shard's current frame counts at most once; one for an
//! already-released frame is answered by re-sending `Release`; a
//! duplicate `Hello` re-sends `Welcome`. Retries are therefore always
//! safe, and per-session episode counters advance exactly once per
//! episode no matter what the wire does.
//!
//! # Crash recovery
//!
//! A server started with [`EpochServer::start_journaled`] write-ahead
//! journals every completed episode **before** broadcasting its
//! release (group commit: one append per epoch carries the episode
//! record plus every membership delta since the last one). The
//! invariant that buys everything else: *any epoch a client could have
//! observed is journaled.* After a crash, [`EpochServer::resume`]
//! replays the journal ([`crate::recover`]), seeds epoch / roster /
//! counters from it, claims a fresh **incarnation** (stamped on every
//! response frame and every append — the fencing token; the journal
//! rejects appends from superseded incarnations, and clients drop
//! frames from them), and *challenges* journaled-live sessions: their
//! next request is answered `ResumeRequired`, they prove their position
//! with `Resume{next_episode}`, and depending on how their epoch
//! compares to the recovered one they continue seamlessly (`Resumed`),
//! catch up from an idempotent `Release` re-ack, or — if they are
//! *ahead*, meaning the journal lost a durable suffix — get `Diverged`
//! rather than a silent epoch rewind. Until every recovered session
//! resumes (or `recovery_grace` lapses and the laggards are purged as
//! evicted) releases are paused, so the first resumer cannot race the
//! epoch forward alone.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use combar_rt::{SelfHealing, Supervisor, SupervisorConfig};
use combar_trace::Kind;

use crate::journal::{frame_entry, roster_hash, Journal, JournalRecord};
use crate::proto::{Request, Response, SessionId};
use crate::recover::RecoveredState;
use crate::transport::{LoopbackTransport, Transport};

/// Tuning for [`EpochServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shards (leaf aggregation points). Sessions hash across
    /// them; each shard is one thread.
    pub shards: usize,
    /// Shard loop tick: the bound on how long a shard sleeps between
    /// lease polls when no traffic arrives.
    pub tick: Duration,
    /// Per-shard session slot capacity (supervisor size). A `Hello`
    /// beyond capacity is dropped.
    pub session_capacity: u32,
    /// Session-lease failure detector tuning.
    pub lease: SupervisorConfig,
    /// Shard-lease failure detector tuning (root supervisor).
    pub shard_lease: SupervisorConfig,
    /// How long a *recovered* server waits for journaled-live sessions
    /// to prove themselves with `Resume` before purging the laggards as
    /// evicted. While any recovered session is still outstanding (and
    /// the grace has not lapsed) releases are paused — the recovered
    /// roster *is* the membership, and a barrier must not cross without
    /// its members.
    pub recovery_grace: Duration,
    /// If set, the release winner compacts the journal to
    /// `[Incarnation, Snapshot]` every N released epochs, bounding
    /// replay time on the next restart.
    pub snapshot_every: Option<u64>,
    /// Chaos hook: self-inflicted crash at a scripted epoch (see
    /// [`ServerCrash`]). `None` in production configurations.
    pub crash: Option<ServerCrash>,
}

/// A scripted whole-server crash, driven by the release winner: the
/// journal append for `at_epoch` completes (the WAL is honest — a
/// crash can lose *unjournaled* state only), then the process "dies"
/// mid-release. With `mid_broadcast` the `Release` fan-out reaches
/// exactly one shard first, modelling a crash halfway through the
/// broadcast loop — the nastiest spot, because some clients observe
/// the epoch and some do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerCrash {
    /// The epoch whose release triggers the crash.
    pub at_epoch: u64,
    /// Crash after delivering the release to only the first live shard
    /// (true) or after the full broadcast (false).
    pub mid_broadcast: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            tick: Duration::from_millis(1),
            session_capacity: 4096,
            // Wider than the runtime default: a spuriously evicted
            // session costs a rejoin plus an episode of churn, while a
            // genuinely dead one merely takes a few extra milliseconds
            // to fold out. Clients renew the lease with every
            // (idempotent) arrive re-send, so only true silence expires.
            lease: SupervisorConfig {
                min_grace: Duration::from_millis(25),
                sigma_mult: 4.0,
                max_misses: 3,
            },
            shard_lease: SupervisorConfig {
                min_grace: Duration::from_millis(10),
                sigma_mult: 4.0,
                max_misses: 3,
            },
            recovery_grace: Duration::from_millis(100),
            snapshot_every: None,
            crash: None,
        }
    }
}

/// Per-session service counters, exposed via
/// [`EpochServer::session_stats`]. `completed` advances exactly once
/// per episode the session participated in — the idempotency oracle
/// the acceptance test asserts against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Episodes this session completed (released while arrived).
    pub completed: u64,
    /// Times the session was evicted (lease expiry or shard death).
    pub evictions: u64,
    /// Times the session rejoined after an eviction.
    pub rejoins: u64,
}

type ConnId = u64;

/// Diagnostic logging to stderr, enabled by setting `COMBAR_NET_DEBUG`:
/// evictions, frames stalled > 250 ms (with the sessions the shard is
/// waiting on), and protocol-impossible ahead-of-frame arrivals.
fn net_debug() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("COMBAR_NET_DEBUG").is_some())
}

enum OutSink {
    Chan(mpsc::Sender<Vec<u8>>),
    #[cfg(unix)]
    Uds(std::os::unix::net::UnixDatagram),
}

impl OutSink {
    fn send(&self, frame: &[u8]) {
        match self {
            OutSink::Chan(tx) => {
                let _ = tx.send(frame.to_vec());
            }
            #[cfg(unix)]
            OutSink::Uds(sock) => {
                // The socket is nonblocking: a client that stopped
                // draining its buffer gets wire loss (WouldBlock,
                // swallowed here), never a blocked shard thread.
                let _ = sock.send(frame);
            }
        }
    }
}

enum ShardMsg {
    /// A decoded client request, tagged with its connection.
    Net(ConnId, Request),
    /// The named episode completed; fan the release out and open the
    /// next frame.
    Release(u64),
    /// Test/chaos hook: the shard thread exits immediately without
    /// cleanup, simulating a crash. The shard lease detects it.
    Stall,
    /// Orderly shutdown.
    Shutdown,
}

#[derive(Clone, Copy)]
struct Assignment {
    shard: usize,
    conn: ConnId,
}

/// The journal-facing half of the ledger, mutated under one lock so
/// the release winner's drain sees an atomic snapshot: the pending
/// membership deltas *and* the roster they produced. The roster here —
/// not any per-shard view — is what the winner hashes into the episode
/// record, so recovery's delta-reconstructed roster matches it exactly
/// by construction.
#[derive(Default)]
struct LedgerBuf {
    /// Membership deltas since the last episode append, in event order.
    pending: Vec<JournalRecord>,
    /// The authoritative live roster.
    roster: BTreeSet<SessionId>,
}

/// Shared coordination state: the root of the aggregation tree.
struct Shared {
    /// The global current episode. Bumped (CAS) by the releasing shard.
    episode: AtomicU64,
    /// Per-shard "all my live sessions arrived for the current episode"
    /// flags — the root state of the combining tree, cleared by the
    /// release winner. Keyed by shard (not a bare counter) so a report
    /// keeps its identity: `try_release` only counts a flag paired with
    /// a *live* shard, which retracts a dead shard's stale report
    /// implicitly. A counter could not do that — a shard that reported
    /// and then died would keep satisfying `done >= live` against the
    /// post-death live count while a surviving shard still owed its own
    /// report, releasing the episode early.
    shard_reported: Vec<AtomicBool>,
    /// Live (not declared dead) shard count.
    live_shards: AtomicU64,
    shard_alive: Vec<AtomicBool>,
    /// Live session count per shard (owner-written, root-read).
    live_sessions: Vec<AtomicU64>,
    /// Root failure detector over shard heartbeats.
    shard_super: Supervisor,
    /// Total episodes released since start.
    released: AtomicU64,
    stats: Mutex<HashMap<SessionId, SessionStats>>,
    shutdown: AtomicBool,
    /// This server's incarnation: 0 for an unjournaled server, else
    /// claimed from the journal at start. Stamped on every response
    /// frame and every episode append — the fencing token.
    incarnation: u64,
    /// The write-ahead epoch journal, if crash recovery is enabled.
    journal: Option<Arc<Journal>>,
    /// Pending journal deltas + authoritative roster (see [`LedgerBuf`]).
    ledger: Mutex<LedgerBuf>,
    /// Per-shard completer slots: `(session, cumulative completed)` for
    /// the sessions a shard reported explicitly arrived, drained by the
    /// release winner into the episode record.
    slots: Vec<Mutex<Vec<(SessionId, u64)>>>,
    /// Sessions the journal says were live but that have not yet proven
    /// themselves to this incarnation with `Resume` (or a fresh
    /// `Hello`). While non-empty (inside the recovery grace) releases
    /// are paused.
    recovered: Mutex<BTreeSet<SessionId>>,
    /// When the recovery grace lapses and outstanding recovered
    /// sessions are purged as evicted.
    recovery_deadline: Option<Instant>,
    /// Replication stream to a warm standby: the winner tees every
    /// journaled batch here, best effort, and the lowest live shard
    /// beacons heartbeats so the standby can tell idle from dead.
    repl: Mutex<Option<Box<dyn Transport>>>,
    /// Compact the journal to a snapshot every this many released
    /// episodes (mirrored from [`ServerConfig::snapshot_every`]).
    snapshot_every: Option<u64>,
    /// Set when a journal append came back [`JournalError::Fenced`]:
    /// this server is a zombie — a newer incarnation owns the ledger —
    /// and must never release again.
    fenced: AtomicBool,
    /// Set by [`EpochServer::halt`] (and the scripted [`ServerCrash`]):
    /// the process is "dead". Ingress is dropped, shard loops exit,
    /// and — deliberately — client outboxes are *not* torn down, so a
    /// halted server looks like unbroken silence (timeouts), exactly
    /// like a crashed host, never like an orderly close.
    halted: AtomicBool,
    crash: Option<ServerCrash>,
}

impl Shared {
    fn total_sessions(&self) -> u64 {
        self.shard_alive
            .iter()
            .zip(&self.live_sessions)
            .filter(|(alive, _)| alive.load(Ordering::Acquire))
            .map(|(_, n)| n.load(Ordering::Acquire))
            .sum()
    }

    /// Records a session joining the roster. The delta is emitted only
    /// when the roster actually changes, which makes the call idempotent
    /// and silently correct for resumed sessions (already in the
    /// journaled roster).
    fn ledger_join(&self, session: SessionId, epoch: u64, rejoin: bool) {
        if self.journal.is_none() {
            return;
        }
        let mut lb = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        if lb.roster.insert(session) {
            lb.pending.push(JournalRecord::Join {
                session,
                epoch,
                rejoin,
            });
        }
    }

    /// Records a session leaving the roster (eviction or orderly
    /// leave). Emits only on an actual roster change.
    fn ledger_remove(&self, session: SessionId, epoch: u64, orderly: bool) {
        if self.journal.is_none() {
            return;
        }
        let mut lb = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        if lb.roster.remove(&session) {
            lb.pending.push(if orderly {
                JournalRecord::Leave { session, epoch }
            } else {
                JournalRecord::Evict { session, epoch }
            });
        }
    }

    /// Whether a recovered-but-unresumed session set is still pausing
    /// releases (inside the recovery grace).
    fn recovery_pending(&self) -> bool {
        match self.recovery_deadline {
            None => false,
            Some(deadline) => {
                if self
                    .recovered
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .is_empty()
                {
                    false
                } else {
                    Instant::now() < deadline
                }
            }
        }
    }
}

/// Routes decoded requests to shard inboxes and responses back to
/// connections. Shared by every connection and shard.
struct Router {
    shard_tx: Vec<mpsc::Sender<ShardMsg>>,
    assign: Mutex<HashMap<SessionId, Assignment>>,
    outbox: Mutex<HashMap<ConnId, OutSink>>,
    next_conn: AtomicU64,
    /// Per-shard session slot capacity, mirrored from `ServerConfig` so
    /// `pick_shard` can steer admissions toward headroom.
    session_capacity: u64,
    shared: Arc<Shared>,
}

impl Router {
    /// First live shard *with admission headroom* at or after the
    /// session's home slot, probing forward so a dead or full home
    /// shard degrades to a neighbor. Fullness matters because
    /// assignments are sticky while the shard lives: a `Hello` routed
    /// to a shard with no free slot would otherwise pin every retry to
    /// that same shard until the client's attempts burn out. The
    /// published live-session counts are a racy approximation of slot
    /// occupancy; a losing race just drops the `Hello` at the shard
    /// (which clears the assignment) and the retry probes again.
    fn pick_shard(&self, session: SessionId) -> Option<usize> {
        let n = self.shard_tx.len();
        let home = (session % n as u64) as usize;
        (0..n).map(|k| (home + k) % n).find(|&s| {
            self.shared.shard_alive[s].load(Ordering::Acquire)
                && self.shared.live_sessions[s].load(Ordering::Acquire) < self.session_capacity
        })
    }

    /// Ingress: decode, resolve the session's shard (reassigning away
    /// from dead shards), enqueue. Malformed frames and frames for a
    /// fully-degraded server are dropped — the wire already taught
    /// clients to retry.
    fn route(&self, conn: ConnId, frame: &[u8]) {
        // A halted (crashed) server is a dead host: traffic to it
        // disappears without acknowledgement or error.
        if self.shared.halted.load(Ordering::Acquire) {
            return;
        }
        let Ok(req) = Request::decode(frame) else {
            return;
        };
        let session = req.session();
        let shard = {
            let mut assign = self.assign.lock().unwrap_or_else(|e| e.into_inner());
            match assign.get_mut(&session) {
                Some(a) => {
                    a.conn = conn;
                    if !self.shared.shard_alive[a.shard].load(Ordering::Acquire) {
                        match self.pick_shard(session) {
                            Some(s) => a.shard = s,
                            None => return,
                        }
                    }
                    a.shard
                }
                None => {
                    let Some(s) = self.pick_shard(session) else {
                        return;
                    };
                    assign.insert(session, Assignment { shard: s, conn });
                    s
                }
            }
        };
        // A send failure means the shard thread is gone but not yet
        // declared dead: the frame is dropped, like traffic to a dead
        // host. The shard lease converts this to eviction + rerouting.
        let _ = self.shard_tx[shard].send(ShardMsg::Net(conn, req));
    }

    fn respond(&self, conn: ConnId, resp: Response) {
        let outbox = self.outbox.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sink) = outbox.get(&conn) {
            sink.send(&resp.encode());
        }
    }
}

/// Adapter exposing a shard's lease view to [`Supervisor::poll`]:
/// stragglers are the live, not-yet-arrived session slots, and `fail`
/// collects declarations for the shard thread to apply (the supervisor
/// API is `&self`, the shard state is `&mut`).
struct LeaseView {
    capacity: u32,
    stragglers: Vec<u32>,
    declared: RefCell<Vec<u32>>,
}

impl SelfHealing for LeaseView {
    fn threads(&self) -> u32 {
        self.capacity
    }
    fn stragglers(&self) -> Vec<u32> {
        self.stragglers.clone()
    }
    fn fail(&self, tid: u32) -> bool {
        self.declared.borrow_mut().push(tid);
        true
    }
    fn is_poisoned(&self) -> bool {
        false
    }
}

struct Sess {
    conn: ConnId,
    slot: u32,
    /// Counted in the shard's live membership. A tombstone
    /// (`live == false`) answers late requests with `Evicted`.
    live: bool,
    /// The last frame this session arrived for (possibly by proxy).
    arrived_for: Option<u64>,
    /// Whether `arrived_for` was a real `Arrive` (true) or a join-side
    /// proxy (false). Only explicit arrivals tick `completed`, so the
    /// counter is an exactly-once oracle for retried arrivals.
    explicit: bool,
}

struct ShardState {
    idx: usize,
    shared: Arc<Shared>,
    router: Arc<Router>,
    cfg: ServerConfig,
    sessions: HashMap<SessionId, Sess>,
    slot_owner: HashMap<u32, SessionId>,
    free_slots: Vec<u32>,
    next_slot: u32,
    /// The episode this shard's bookkeeping is for. Trails the global
    /// episode until the `Release` control message is processed, so all
    /// local accounting stays frame-consistent.
    frame: u64,
    live: u64,
    arrived: u64,
    reported: bool,
    sup: Supervisor,
    last_lease_poll: Instant,
    frame_since: Instant,
    stall_logged: bool,
    /// Last standby-heartbeat send (lowest live shard only).
    last_repl_beat: Instant,
}

impl ShardState {
    fn new(idx: usize, shared: Arc<Shared>, router: Arc<Router>, cfg: ServerConfig) -> Self {
        let sup = Supervisor::with_config(cfg.session_capacity, cfg.lease);
        // A resumed server starts past epoch 0: every shard's frame
        // must open at the recovered global episode, or resuming
        // clients would look "ahead" of the shard and be told Diverged.
        let frame = shared.episode.load(Ordering::Acquire);
        Self {
            idx,
            shared,
            router,
            cfg,
            sessions: HashMap::new(),
            slot_owner: HashMap::new(),
            free_slots: Vec::new(),
            next_slot: 0,
            frame,
            live: 0,
            arrived: 0,
            reported: false,
            sup,
            last_lease_poll: Instant::now(),
            frame_since: Instant::now(),
            stall_logged: false,
            last_repl_beat: Instant::now(),
        }
    }

    fn publish_live(&self) {
        self.shared.live_sessions[self.idx].store(self.live, Ordering::Release);
    }

    fn alloc_slot(&mut self) -> Option<u32> {
        if let Some(s) = self.free_slots.pop() {
            return Some(s);
        }
        if self.next_slot < self.cfg.session_capacity {
            let s = self.next_slot;
            self.next_slot += 1;
            return Some(s);
        }
        None
    }

    /// Answers an unknown-session request: a journaled session the
    /// recovery replay knows about must prove its coordinate with
    /// `Resume` before anything else is honoured; everyone else gets
    /// the usual `Evicted` (rejoin via `Hello`).
    fn challenge_unknown(&self, session: SessionId, conn: ConnId) {
        let frame = self.frame;
        let awaiting_resume = self
            .shared
            .recovered
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(&session);
        let resp = if awaiting_resume {
            Response::ResumeRequired {
                session,
                episode: frame,
                inc: self.shared.incarnation,
            }
        } else {
            Response::Evicted {
                session,
                episode: frame,
                inc: self.shared.incarnation,
            }
        };
        self.router.respond(conn, resp);
    }

    fn handle(&mut self, conn: ConnId, req: Request) {
        match req {
            Request::Hello { session, .. } => self.on_hello(session, conn),
            Request::Arrive {
                session, episode, ..
            } => self.on_arrive(session, conn, episode),
            Request::Heartbeat { session, .. } => match self.sessions.get_mut(&session) {
                Some(s) if s.live => {
                    s.conn = conn;
                    self.sup.beat(s.slot);
                }
                _ => self.challenge_unknown(session, conn),
            },
            Request::Leave { session, .. } => self.on_leave(session),
            Request::Resume {
                session,
                next_episode,
                ..
            } => self.on_resume(session, conn, next_episode),
        }
    }

    /// Admission, re-admission after eviction, and `Hello`-retry re-ack
    /// all land here. A *new* session joins *arrived* for the in-flight
    /// frame (the join-side proxy arrival), so admission can never
    /// wedge the episode it lands in; its first real `Arrive` for this
    /// frame deduplicates. A `Hello` for an already-live session (a
    /// retry whose first copy landed, or a wire duplicate delivered
    /// frames later) only re-routes and re-acks: registering a proxy
    /// arrival here would let a stray duplicate complete an episode on
    /// the session's behalf and silently skip its `completed` tick.
    fn on_hello(&mut self, session: SessionId, conn: ConnId) {
        let frame = self.frame;
        match self.sessions.get_mut(&session) {
            Some(s) if s.live => {
                s.conn = conn;
                self.sup.beat(s.slot);
            }
            other => {
                let rejoining = other.is_some();
                let Some(slot) = self.alloc_slot() else {
                    // At capacity. Assignments are sticky while a shard
                    // lives, so leaving one pointing here would pin
                    // every retry to this full shard until join()
                    // burned its attempts; clear it so the retry's
                    // route() re-probes and lands on a shard with
                    // headroom (pick_shard skips full shards via the
                    // published live-session counts).
                    let mut assign = self.router.assign.lock().unwrap_or_else(|e| e.into_inner());
                    if assign.get(&session).is_some_and(|a| a.shard == self.idx) {
                        assign.remove(&session);
                    }
                    return;
                };
                self.sessions.insert(
                    session,
                    Sess {
                        conn,
                        slot,
                        live: true,
                        arrived_for: Some(frame),
                        explicit: false,
                    },
                );
                self.slot_owner.insert(slot, session);
                self.sup.beat(slot);
                self.live += 1;
                self.arrived += 1;
                self.publish_live();
                // A recovered session greeting us with a fresh `Hello`
                // (rather than `Resume`) chose the rejoin path; either
                // way it has now proven itself to this incarnation.
                self.shared
                    .recovered
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&session);
                // A local tombstone proves a rejoin; a session unknown
                // here may still be rejoining cross-shard (its home
                // shard died and routing moved it) — the global stats
                // ledger records the eviction either way.
                let counted_rejoin = {
                    let mut stats = self.shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                    let entry = stats.entry(session).or_default();
                    if rejoining || entry.evictions > entry.rejoins {
                        entry.rejoins += 1;
                        combar_trace::emit(frame as u32, session as u32, Kind::Rejoin);
                        true
                    } else {
                        false
                    }
                };
                self.shared.ledger_join(session, frame, counted_rejoin);
            }
        }
        self.router.respond(
            conn,
            Response::Welcome {
                session,
                episode: frame,
                inc: self.shared.incarnation,
            },
        );
        self.check_complete();
    }

    fn on_arrive(&mut self, session: SessionId, conn: ConnId, episode: u64) {
        let frame = self.frame;
        let Some(s) = self.sessions.get_mut(&session) else {
            self.challenge_unknown(session, conn);
            return;
        };
        if !s.live {
            self.router.respond(
                conn,
                Response::Evicted {
                    session,
                    episode: frame,
                    inc: self.shared.incarnation,
                },
            );
            return;
        }
        s.conn = conn;
        self.sup.beat(s.slot);
        if episode < frame {
            // The episode already released; the first ack was lost.
            // Re-acking is the idempotent half of retry safety.
            self.router.respond(
                conn,
                Response::Release {
                    episode,
                    inc: self.shared.incarnation,
                },
            );
            return;
        }
        if episode > frame {
            if net_debug() {
                eprintln!(
                    "[ahead] shard {} session {session} e {episode} frame {frame}",
                    self.idx
                );
            }
            return; // can't happen with honest clients; drop defensively
        }
        if s.arrived_for != Some(frame) {
            s.arrived_for = Some(frame);
            s.explicit = true;
            self.arrived += 1;
            combar_trace::emit(frame as u32, session as u32, Kind::Arrive);
            self.check_complete();
        } else if !s.explicit {
            // The real arrival caught up with its join-side proxy:
            // upgrade so this episode counts.
            s.explicit = true;
            combar_trace::emit(frame as u32, session as u32, Kind::Arrive);
            if self.reported && self.shared.journal.is_some() {
                // The shard already filed its completer slot for this
                // frame; file the late upgrade too so the journal's
                // episode record credits it. (If the winner has drained
                // the slot already, the entry rides to the next epoch's
                // record — cumulative counters make that merge safe.)
                let done = {
                    let stats = self.shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                    stats.get(&session).map_or(0, |e| e.completed) + 1
                };
                self.shared.slots[self.idx]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((session, done));
            }
        }
        // else: duplicate arrival — counted exactly once, nothing to do.
    }

    /// Orderly departure folds immediately: the shard thread *is* the
    /// quiescent window (no arrival can interleave), so removing the
    /// session now is indistinguishable from a boundary fold.
    fn on_leave(&mut self, session: SessionId) {
        let frame = self.frame;
        if let Some(s) = self.sessions.remove(&session) {
            if s.live {
                self.live -= 1;
                if s.arrived_for == Some(frame) {
                    self.arrived -= 1;
                }
                self.slot_owner.remove(&s.slot);
                self.free_slots.push(s.slot);
                self.publish_live();
                self.shared.ledger_remove(session, frame, true);
                self.check_complete();
            }
        }
    }

    /// The recovery handshake. A session the journal replay vouches for
    /// proves its next-expected episode:
    ///
    /// * `next == frame` — exact match: re-admit at the in-flight
    ///   frame, un-arrived (its real `Arrive` follows), and ack
    ///   `Resumed`. No `Join` delta — the session never left the
    ///   journaled roster.
    /// * `next < frame` — the client missed releases (e.g. an epoch
    ///   journaled but never broadcast): re-ack `Release{next}` so it
    ///   catches up, and keep the challenge open for its next request.
    /// * `next > frame` — the client has observed epochs the journal
    ///   does not record: a journal suffix was lost. Explicit
    ///   `Diverged`, never silent epoch skew.
    fn on_resume(&mut self, session: SessionId, conn: ConnId, next: u64) {
        let frame = self.frame;
        let inc = self.shared.incarnation;
        if let Some(s) = self.sessions.get_mut(&session) {
            if s.live {
                // Duplicate Resume (the first ack was lost): re-ack.
                s.conn = conn;
                self.sup.beat(s.slot);
                let resp = if next < frame {
                    Response::Release { episode: next, inc }
                } else {
                    Response::Resumed {
                        session,
                        episode: frame,
                        inc,
                    }
                };
                self.router.respond(conn, resp);
                return;
            }
        }
        let awaiting = self
            .shared
            .recovered
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(&session);
        if !awaiting {
            // Nothing vouches for this session here; the rejoin path
            // (fresh `Hello`) is the only way in.
            self.router.respond(
                conn,
                Response::Evicted {
                    session,
                    episode: frame,
                    inc,
                },
            );
            return;
        }
        if next > frame {
            self.router.respond(
                conn,
                Response::Diverged {
                    session,
                    expected: frame,
                    inc,
                },
            );
            return;
        }
        if next < frame {
            self.router
                .respond(conn, Response::Release { episode: next, inc });
            return;
        }
        // Exact coordinate: re-admit. Mirrors the `on_hello` admission
        // except the session joins *un-arrived* (no proxy credit: its
        // real `Arrive` for this frame is en route) and no rejoin is
        // counted — the session never failed, the server did.
        let Some(slot) = self.alloc_slot() else {
            let mut assign = self.router.assign.lock().unwrap_or_else(|e| e.into_inner());
            if assign.get(&session).is_some_and(|a| a.shard == self.idx) {
                assign.remove(&session);
            }
            return;
        };
        self.sessions.insert(
            session,
            Sess {
                conn,
                slot,
                live: true,
                arrived_for: None,
                explicit: false,
            },
        );
        self.slot_owner.insert(slot, session);
        self.sup.beat(slot);
        self.live += 1;
        self.publish_live();
        self.shared
            .recovered
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&session);
        // ledger_join is a roster no-op here (still journaled live) but
        // covers the corner where the session was purged a beat ago.
        self.shared.ledger_join(session, frame, false);
        self.router.respond(
            conn,
            Response::Resumed {
                session,
                episode: frame,
                inc,
            },
        );
        self.check_complete();
    }

    /// Declares a session dead: proxy its in-flight arrival (so the
    /// frame completes), fold it out of the live membership, and tell
    /// the client. Mirrors PR 4's evict-then-detach, collapsed into one
    /// step because the shard thread serializes both halves.
    fn evict(&mut self, session: SessionId) {
        let frame = self.frame;
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        if !s.live {
            return;
        }
        if s.arrived_for == Some(frame) {
            self.arrived -= 1;
        } else {
            combar_trace::emit(
                frame as u32,
                session as u32,
                Kind::ProxyArrival(self.idx as u32),
            );
        }
        s.live = false;
        s.arrived_for = None;
        self.live -= 1;
        let slot = s.slot;
        let conn = s.conn;
        self.slot_owner.remove(&slot);
        self.free_slots.push(slot);
        self.publish_live();
        {
            let mut stats = self.shared.stats.lock().unwrap_or_else(|e| e.into_inner());
            stats.entry(session).or_default().evictions += 1;
        }
        if net_debug() {
            eprintln!("[evict] shard {} session {session} frame {frame}", self.idx);
        }
        combar_trace::emit(frame as u32, session as u32, Kind::Evict(session as u32));
        self.shared.ledger_remove(session, frame, false);
        self.router.respond(
            conn,
            Response::Evicted {
                session,
                episode: frame,
                inc: self.shared.incarnation,
            },
        );
        self.check_complete();
    }

    /// Fan a completed episode out to this shard's arrived sessions and
    /// open the next frame.
    fn on_release(&mut self, ep: u64) {
        let mut stats = Vec::new();
        for (&session, s) in &self.sessions {
            if s.live && s.arrived_for == Some(ep) {
                self.router.respond(
                    s.conn,
                    Response::Release {
                        episode: ep,
                        inc: self.shared.incarnation,
                    },
                );
                combar_trace::emit(ep as u32, session as u32, Kind::Release);
                if s.explicit {
                    stats.push(session);
                }
            }
        }
        if !stats.is_empty() {
            let mut map = self.shared.stats.lock().unwrap_or_else(|e| e.into_inner());
            for session in stats {
                map.entry(session).or_default().completed += 1;
            }
        }
        self.frame = ep + 1;
        self.reported = false;
        self.frame_since = Instant::now();
        self.stall_logged = false;
        // Admissions processed after the global bump but before this
        // control message may already sit in the new frame; recount
        // rather than zero.
        self.arrived = self
            .sessions
            .values()
            .filter(|s| s.live && s.arrived_for == Some(self.frame))
            .count() as u64;
        self.check_complete();
    }

    /// The upward half of the aggregation tree: report this shard
    /// complete (at most once per frame), then try to release globally.
    /// When journaling, the report also files the shard's completer
    /// slot — who explicitly arrived, with their cumulative counters —
    /// for the winner to drain into the episode record.
    fn check_complete(&mut self) {
        // An empty shard reports immediately so it never blocks a
        // release — EXCEPT while recovered sessions are still resuming:
        // any of them may resume *into this shard*, and an early
        // `live == 0` flip would stand as a stale report after they do,
        // releasing the post-recovery epoch before they ever arrive.
        let empty_ok = self.live == 0
            && (self.shared.journal.is_none()
                || self
                    .shared
                    .recovered
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .is_empty());
        if !self.reported && (empty_ok || (self.live > 0 && self.arrived >= self.live)) {
            self.reported = true;
            if self.shared.journal.is_some() {
                let completers: Vec<(SessionId, u64)> = {
                    let stats = self.shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                    self.sessions
                        .iter()
                        .filter(|(_, s)| s.live && s.arrived_for == Some(self.frame) && s.explicit)
                        .map(|(&sid, _)| (sid, stats.get(&sid).map_or(0, |e| e.completed) + 1))
                        .collect()
                };
                if !completers.is_empty() {
                    self.shared.slots[self.idx]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .extend(completers);
                }
            }
            self.shared.shard_reported[self.idx].store(true, Ordering::Release);
        }
        try_release(&self.shared, &self.router);
    }

    /// Recovery/replication housekeeping, run by the lowest live shard
    /// each tick: beacon a heartbeat to any attached standby (so it can
    /// tell an idle primary from a dead one), and — once the recovery
    /// grace lapses — purge journaled sessions that never resumed,
    /// folding them out as evicted so the paused releases can flow.
    fn recovery_duty(&mut self) {
        if self.shared.journal.is_none() {
            return;
        }
        let lowest = (0..self.shared.shard_alive.len())
            .find(|&s| self.shared.shard_alive[s].load(Ordering::Acquire));
        if lowest != Some(self.idx) {
            return;
        }
        if self.last_repl_beat.elapsed() >= self.cfg.tick {
            self.last_repl_beat = Instant::now();
            let mut repl = self.shared.repl.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(t) = repl.as_mut() {
                let _ = t.send(&frame_entry(&JournalRecord::Heartbeat {
                    inc: self.shared.incarnation,
                }));
            }
        }
        if let Some(deadline) = self.shared.recovery_deadline {
            if Instant::now() >= deadline {
                let stragglers: Vec<SessionId> = {
                    let mut rec = self
                        .shared
                        .recovered
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    std::mem::take(&mut *rec).into_iter().collect()
                };
                if !stragglers.is_empty() {
                    let epoch = self.shared.episode.load(Ordering::Acquire);
                    let mut stats = self.shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                    for &sid in &stragglers {
                        stats.entry(sid).or_default().evictions += 1;
                    }
                    drop(stats);
                    for sid in stragglers {
                        self.shared.ledger_remove(sid, epoch, false);
                    }
                    self.check_complete();
                }
            }
        }
    }

    /// Session-lease pass, at most once per tick.
    fn poll_leases(&mut self) {
        if self.last_lease_poll.elapsed() < self.cfg.tick {
            return;
        }
        self.last_lease_poll = Instant::now();
        let frame = self.frame;
        if !self.stall_logged
            && self.frame_since.elapsed() > Duration::from_millis(250)
            && net_debug()
        {
            self.stall_logged = true;
            let waiting: Vec<SessionId> = self
                .sessions
                .iter()
                .filter(|(_, s)| s.live && s.arrived_for != Some(frame))
                .map(|(&sid, _)| sid)
                .collect();
            eprintln!(
                "[stall] shard {} frame {frame} live {} arrived {} reported {} waiting_on {waiting:?}",
                self.idx, self.live, self.arrived, self.reported
            );
        }
        let stragglers: Vec<u32> = self
            .sessions
            .values()
            .filter(|s| s.live && s.arrived_for != Some(frame))
            .map(|s| s.slot)
            .collect();
        if stragglers.is_empty() {
            return;
        }
        let view = LeaseView {
            capacity: self.cfg.session_capacity,
            stragglers,
            declared: RefCell::new(Vec::new()),
        };
        self.sup.poll(&view);
        let declared = view.declared.into_inner();
        for slot in declared {
            if let Some(&session) = self.slot_owner.get(&slot) {
                self.evict(session);
            }
        }
    }

    /// Root-lease pass. Each target is polled by exactly one shard —
    /// the lowest-indexed live shard *other than the target* (the
    /// supervisor's miss counters escalate one miss per poll, so
    /// concurrent pollers of the same target would fast-track a
    /// declaration). In practice: the lowest live shard polls every
    /// peer, and the second-lowest polls the lowest — so the poller's
    /// own death is detected too, instead of silently ending all
    /// detection.
    fn poll_shards(&mut self) {
        let alive: Vec<usize> = (0..self.shared.shard_alive.len())
            .filter(|&s| self.shared.shard_alive[s].load(Ordering::Acquire))
            .collect();
        let stragglers: Vec<u32> = alive
            .iter()
            .filter(|&&target| {
                target != self.idx && alive.iter().find(|&&s| s != target) == Some(&self.idx)
            })
            .map(|&s| s as u32)
            .collect();
        if stragglers.is_empty() {
            return;
        }
        let view = LeaseView {
            capacity: self.shared.shard_alive.len() as u32,
            stragglers,
            declared: RefCell::new(Vec::new()),
        };
        self.shared.shard_super.poll(&view);
        for shard in view.declared.into_inner() {
            declare_shard_dead(&self.shared, &self.router, shard as usize);
        }
    }
}

/// The downward half of the root: if every live shard has reported and
/// any session exists, the winning CAS bumps the episode, clears the
/// reported flags, and broadcasts the release. Any shard (or the shard
/// poller, after folding a dead shard out) may perform it; the CAS
/// guarantees exactly one winner per episode. Reports are read *paired
/// with liveness* — a dead shard's stale flag never counts — so a
/// shard death can only delay a release, never complete one early.
fn try_release(shared: &Shared, router: &Router) {
    // A halted server is dead and a fenced one is a zombie: neither may
    // ever release (the fence guard also stops a zombie from burning
    // phantom CAS bumps after its first rejected append).
    if shared.halted.load(Ordering::Acquire) || shared.fenced.load(Ordering::Acquire) {
        return;
    }
    // A recovered server holds releases until every journaled-live
    // session has resumed (or the grace purges it): the recovered
    // roster *is* the membership, and crossing without it would let the
    // first resumer race ahead alone.
    if shared.recovery_pending() {
        return;
    }
    let ep = shared.episode.load(Ordering::Acquire);
    let all_reported =
        shared
            .shard_alive
            .iter()
            .zip(&shared.shard_reported)
            .all(|(alive, reported)| {
                !alive.load(Ordering::Acquire) || reported.load(Ordering::Acquire)
            });
    if !all_reported || shared.total_sessions() == 0 {
        return;
    }
    if shared
        .episode
        .compare_exchange(ep, ep + 1, Ordering::AcqRel, Ordering::Acquire)
        .is_err()
    {
        return; // another shard released this episode
    }
    // Clear the reports *immediately* after winning: they are this
    // episode's, and leaving them set while the journal append below
    // runs would let a concurrent caller (the shard poller ticks into
    // here at any moment) read them as the *next* episode's, win the
    // bumped CAS, and run a second release in parallel — draining the
    // completer slots out from under us and appending episodes out of
    // order, which recovery would then skip as stale. No shard can
    // re-report until it processes the Release broadcast at the bottom,
    // so clearing here closes the window without losing a report.
    for reported in &shared.shard_reported {
        reported.store(false, Ordering::Release);
    }
    // ── Write-ahead: journal the episode before any client can hear of
    // it. Group commit: the batch is every membership delta since the
    // last release plus one episode record — one append per epoch, not
    // per arrival.
    if let Some(journal) = &shared.journal {
        let (mut batch, hash) = {
            let mut lb = shared.ledger.lock().unwrap_or_else(|e| e.into_inner());
            // Drain + hash under one lock: the hash covers exactly the
            // roster the drained deltas produce, so recovery's replayed
            // roster matches by construction.
            let batch = std::mem::take(&mut lb.pending);
            (batch, roster_hash(lb.roster.iter().copied()))
        };
        let mut completers: BTreeMap<SessionId, u64> = BTreeMap::new();
        for (s, slot) in shared.slots.iter().enumerate() {
            if shared.shard_alive[s].load(Ordering::Acquire) {
                let drained = std::mem::take(&mut *slot.lock().unwrap_or_else(|e| e.into_inner()));
                for (sid, done) in drained {
                    // Cumulative counters: a stale entry (a late
                    // proxy→explicit upgrade that missed last epoch's
                    // drain) merges away under max.
                    let e = completers.entry(sid).or_insert(done);
                    *e = (*e).max(done);
                }
            }
        }
        batch.push(JournalRecord::Episode {
            epoch: ep,
            inc: shared.incarnation,
            roster_hash: hash,
            completers: completers.into_iter().collect(),
        });
        match journal.append_batch(shared.incarnation, &batch) {
            Err(_) => {
                // Fenced (or the backing store died): this server may
                // not extend the ledger. Freeze — no flag clears, no
                // released bump, above all no broadcast. Clients stop
                // hearing from us and fail over to the incarnation that
                // fenced us out.
                shared.fenced.store(true, Ordering::Release);
                return;
            }
            Ok(()) => {
                // Tee the batch to a warm standby, best effort — the
                // journal is the durable copy; this just keeps the
                // standby's lag near zero.
                let mut repl = shared.repl.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(t) = repl.as_mut() {
                    let mut bytes = Vec::new();
                    for rec in &batch {
                        bytes.extend_from_slice(&frame_entry(rec));
                    }
                    let _ = t.send(&bytes);
                }
                drop(repl);
                if let Some(every) = shared.snapshot_every {
                    let done = shared.released.load(Ordering::Acquire) + 1;
                    if every > 0 && done % every == 0 {
                        compact_journal(shared, journal, ep, &batch);
                    }
                }
            }
        }
    }
    shared.released.fetch_add(1, Ordering::Release);
    // ── Scripted crash window: the journal append above is durable,
    // the broadcast below is what dies — wholly (kill-at-epoch) or
    // halfway (kill-mid-broadcast: exactly one shard hears).
    if let Some(crash) = shared.crash {
        if ep == crash.at_epoch {
            if crash.mid_broadcast {
                if let Some(s) = (0..shared.shard_alive.len())
                    .find(|&s| shared.shard_alive[s].load(Ordering::Acquire))
                {
                    let _ = router.shard_tx[s].send(ShardMsg::Release(ep));
                }
                // Give the lucky shard a beat to fan out to *its*
                // clients before the lights go off, so some clients
                // observe the epoch and some never do.
                std::thread::sleep(Duration::from_millis(1));
            }
            shared.halted.store(true, Ordering::Release);
            return;
        }
    }
    for (s, tx) in router.shard_tx.iter().enumerate() {
        if shared.shard_alive[s].load(Ordering::Acquire) {
            let _ = tx.send(ShardMsg::Release(ep));
        }
    }
}

/// Compacts the journal to `[Incarnation, Snapshot]`. The snapshot
/// folds the just-appended episode's completers into the stats map
/// (their `completed` ticks land in the shards only after the
/// broadcast, which has not happened yet) so replay-from-snapshot and
/// replay-from-history agree exactly.
fn compact_journal(shared: &Shared, journal: &Journal, ep: u64, batch: &[JournalRecord]) {
    let mut sessions: BTreeMap<SessionId, (bool, SessionStats)> = {
        let stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
        let roster = &shared
            .ledger
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .roster;
        stats
            .iter()
            .map(|(&sid, &st)| (sid, (roster.contains(&sid), st)))
            .collect()
    };
    for rec in batch {
        if let JournalRecord::Episode { completers, .. } = rec {
            for &(sid, done) in completers {
                let entry = sessions
                    .entry(sid)
                    .or_insert((true, SessionStats::default()));
                entry.1.completed = entry.1.completed.max(done);
            }
        }
    }
    let snap = crate::journal::snapshot_record(ep + 1, shared.incarnation, &sessions);
    // A fence race here (a takeover between our append and this
    // compact) simply leaves the journal uncompacted; the new
    // incarnation owns compaction from now on.
    let _ = journal.compact(shared.incarnation, &snap);
}

/// Folds a dead shard out of the root: episodes complete without it,
/// its sessions are told `Evicted` best-effort, and their assignments
/// clear so rejoins land on live shards.
fn declare_shard_dead(shared: &Shared, router: &Router, shard: usize) {
    if !shared.shard_alive[shard].swap(false, Ordering::AcqRel) {
        return; // already declared
    }
    shared.live_shards.fetch_sub(1, Ordering::AcqRel);
    shared.live_sessions[shard].store(0, Ordering::Release);
    let episode = shared.episode.load(Ordering::Acquire);
    let orphans: Vec<(SessionId, ConnId)> = {
        let mut assign = router.assign.lock().unwrap_or_else(|e| e.into_inner());
        let victims: Vec<SessionId> = assign
            .iter()
            .filter(|(_, a)| a.shard == shard)
            .map(|(&s, _)| s)
            .collect();
        victims
            .into_iter()
            .map(|s| {
                let a = assign.remove(&s).expect("victim present");
                (s, a.conn)
            })
            .collect()
    };
    {
        let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
        for &(session, _) in &orphans {
            stats.entry(session).or_default().evictions += 1;
        }
    }
    for (session, conn) in orphans {
        shared.ledger_remove(session, episode, false);
        combar_trace::emit(episode as u32, session as u32, Kind::Evict(session as u32));
        router.respond(
            conn,
            Response::Evicted {
                session,
                episode,
                inc: shared.incarnation,
            },
        );
    }
    // The dead shard may have been the missing report — and if it had
    // instead *already* reported, try_release now disregards that stale
    // flag (reports only count paired with a live shard), so a survivor
    // that still owes its own report keeps the episode open.
    try_release(shared, router);
}

fn run_shard(
    idx: usize,
    inbox: mpsc::Receiver<ShardMsg>,
    shared: Arc<Shared>,
    router: Arc<Router>,
    cfg: ServerConfig,
) {
    let tick = cfg.tick;
    let mut st = ShardState::new(idx, shared.clone(), router, cfg);
    loop {
        // A shard the root lease declared dead must stop serving even
        // when the declaration was a false positive (a stalled-but-
        // alive thread): its sessions were evicted and rerouted the
        // moment it was declared, so anything it did from here —
        // reporting its stale frame complete, answering sessions that
        // rejoined elsewhere — would be a zombie copy of state that now
        // lives on the surviving shards.
        if !shared.shard_alive[idx].load(Ordering::Acquire) || shared.halted.load(Ordering::Acquire)
        {
            return;
        }
        shared.shard_super.beat(idx as u32);
        let msg = inbox.recv_timeout(tick);
        if !shared.shard_alive[idx].load(Ordering::Acquire) || shared.halted.load(Ordering::Acquire)
        {
            return; // declared dead (or the whole host "crashed") in recv
        }
        match msg {
            Ok(ShardMsg::Net(conn, req)) => st.handle(conn, req),
            Ok(ShardMsg::Release(ep)) => st.on_release(ep),
            Ok(ShardMsg::Stall) => return, // simulated crash: no cleanup
            Ok(ShardMsg::Shutdown) | Err(mpsc::RecvTimeoutError::Disconnected) => return,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
        st.poll_leases();
        st.poll_shards();
        st.recovery_duty();
        // Membership may have changed without traffic (evictions).
        st.check_complete();
    }
}

/// A running barrier-as-a-service instance. See the module docs.
pub struct EpochServer {
    router: Arc<Router>,
    shared: Arc<Shared>,
    shard_handles: Vec<JoinHandle<()>>,
    pump_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl EpochServer {
    /// Starts the shard threads and returns a handle for connecting
    /// clients and inspecting service state. No journal: the server is
    /// fast but mortal — a crash loses everything.
    pub fn start(cfg: ServerConfig) -> Self {
        Self::start_inner(cfg, None, None)
    }

    /// Starts a server that write-ahead-journals every completed
    /// episode (and membership delta) to `journal` before broadcasting
    /// its release. Claims a fresh incarnation, fencing out any older
    /// server still holding the journal.
    pub fn start_journaled(cfg: ServerConfig, journal: Arc<Journal>) -> Self {
        Self::start_inner(cfg, Some(journal), None)
    }

    /// Restarts a crashed server from its recovered journal state: the
    /// epoch counter resumes where the journal left off, journaled-live
    /// sessions are expected back via `Resume` (releases pause for
    /// `cfg.recovery_grace` until they all return or are purged), and a
    /// fresh incarnation fences out the dead predecessor.
    pub fn resume(cfg: ServerConfig, journal: Arc<Journal>, state: RecoveredState) -> Self {
        Self::start_inner(cfg, Some(journal), Some(state))
    }

    fn start_inner(
        cfg: ServerConfig,
        journal: Option<Arc<Journal>>,
        state: Option<RecoveredState>,
    ) -> Self {
        assert!(cfg.shards >= 1, "need at least one shard");
        let shards = cfg.shards;
        let incarnation = match &journal {
            Some(j) => j
                .bump_incarnation()
                .expect("claim incarnation on a journal nobody else holds yet"),
            None => 0,
        };
        let epoch0 = state.as_ref().map_or(0, |s| s.epoch);
        let mut stats0 = HashMap::new();
        let mut ledger0 = LedgerBuf::default();
        let mut recovered0 = BTreeSet::new();
        if let Some(state) = &state {
            for (&sid, sess) in &state.sessions {
                stats0.insert(sid, sess.stats);
                if sess.live {
                    ledger0.roster.insert(sid);
                    recovered0.insert(sid);
                }
            }
        }
        let recovery_deadline = if recovered0.is_empty() {
            None
        } else {
            Some(Instant::now() + cfg.recovery_grace)
        };
        let shared = Arc::new(Shared {
            episode: AtomicU64::new(epoch0),
            shard_reported: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            live_shards: AtomicU64::new(shards as u64),
            shard_alive: (0..shards).map(|_| AtomicBool::new(true)).collect(),
            live_sessions: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_super: Supervisor::with_config(shards as u32, cfg.shard_lease),
            released: AtomicU64::new(epoch0),
            stats: Mutex::new(stats0),
            shutdown: AtomicBool::new(false),
            incarnation,
            journal,
            ledger: Mutex::new(ledger0),
            slots: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            recovered: Mutex::new(recovered0),
            recovery_deadline,
            repl: Mutex::new(None),
            snapshot_every: cfg.snapshot_every,
            fenced: AtomicBool::new(false),
            halted: AtomicBool::new(false),
            crash: cfg.crash,
        });
        let mut txs = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel();
            txs.push(tx);
            rxs.push(rx);
        }
        let router = Arc::new(Router {
            shard_tx: txs,
            assign: Mutex::new(HashMap::new()),
            outbox: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            session_capacity: u64::from(cfg.session_capacity),
            shared: shared.clone(),
        });
        let shard_handles = rxs
            .into_iter()
            .enumerate()
            .map(|(idx, rx)| {
                let shared = shared.clone();
                let router = router.clone();
                let cfg = cfg.clone();
                std::thread::Builder::new()
                    .name(format!("combar-net-shard-{idx}"))
                    .spawn(move || run_shard(idx, rx, shared, router, cfg))
                    .expect("spawn shard thread")
            })
            .collect();
        Self {
            router,
            shared,
            shard_handles,
            pump_handles: Mutex::new(Vec::new()),
        }
    }

    /// Opens an in-process loopback connection. Cheap: two `mpsc`
    /// channels and a map entry, so thousands of sessions fit in one
    /// process.
    pub fn connect(&self) -> LoopbackTransport {
        let conn = self.router.next_conn.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel::<Vec<u8>>();
        self.router
            .outbox
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(conn, OutSink::Chan(tx));
        let router = self.router.clone();
        LoopbackTransport {
            tx: Box::new(move |frame: &[u8]| {
                router.route(conn, frame);
                Ok(())
            }),
            rx,
        }
    }

    /// Opens a Unix-domain datagram connection (real socketpairs with
    /// a per-connection server-side pump thread).
    ///
    /// Two pairs, one per direction, so each side's *send* socket can
    /// be nonblocking — a full buffer is wire loss, and a client that
    /// stops reading must never block a shard thread mid-broadcast —
    /// while each side's *recv* socket keeps its blocking read timeout.
    /// (One shared socketpair cannot do this: `O_NONBLOCK` lives on the
    /// open file description, so flipping it for sends would also make
    /// the receive path spin.)
    #[cfg(unix)]
    pub fn connect_uds(&self) -> std::io::Result<crate::transport::UdsTransport> {
        use std::os::unix::net::UnixDatagram;
        let (c2s_client, c2s_server) = UnixDatagram::pair()?;
        let (s2c_server, s2c_client) = UnixDatagram::pair()?;
        c2s_server.set_read_timeout(Some(Duration::from_millis(20)))?;
        c2s_client.set_nonblocking(true)?;
        s2c_server.set_nonblocking(true)?;
        let conn = self.router.next_conn.fetch_add(1, Ordering::Relaxed);
        self.router
            .outbox
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(conn, OutSink::Uds(s2c_server));
        let router = self.router.clone();
        let shared = self.shared.clone();
        let pump = std::thread::Builder::new()
            .name(format!("combar-net-pump-{conn}"))
            .spawn(move || {
                let mut buf = [0u8; 256];
                loop {
                    if shared.shutdown.load(Ordering::Acquire)
                        || shared.halted.load(Ordering::Acquire)
                    {
                        return;
                    }
                    match c2s_server.recv(&mut buf) {
                        Ok(n) => router.route(conn, &buf[..n]),
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            continue
                        }
                        Err(_) => return,
                    }
                }
            })?;
        self.pump_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(pump);
        Ok(crate::transport::UdsTransport {
            send_sock: c2s_client,
            recv_sock: s2c_client,
        })
    }

    /// The current global episode number.
    pub fn episode(&self) -> u64 {
        self.shared.episode.load(Ordering::Acquire)
    }

    /// Episodes released since start.
    pub fn episodes_released(&self) -> u64 {
        self.shared.released.load(Ordering::Acquire)
    }

    /// Shards not declared dead.
    pub fn live_shards(&self) -> u64 {
        self.shared.live_shards.load(Ordering::Acquire)
    }

    /// Live sessions across live shards.
    pub fn live_sessions(&self) -> u64 {
        self.shared.total_sessions()
    }

    /// A snapshot of per-session service counters.
    pub fn session_stats(&self) -> HashMap<SessionId, SessionStats> {
        self.shared
            .stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Chaos hook: makes shard `idx` exit its loop without cleanup,
    /// simulating a crashed shard. The shard lease declares it dead and
    /// the service degrades onto the survivors.
    pub fn stall_shard(&self, idx: usize) {
        let _ = self.router.shard_tx[idx].send(ShardMsg::Stall);
    }

    /// Chaos hook: "kills" the whole server process. Ingress is dropped
    /// on the floor, every shard loop exits at its next tick, and —
    /// unlike [`shutdown`](Self::shutdown) — client connections are
    /// *not* closed: to a client the host simply went silent, exactly
    /// like a kernel panic. The journal (if any) keeps whatever was
    /// durably appended; nothing in flight survives.
    pub fn halt(&self) {
        self.shared.halted.store(true, Ordering::Release);
        for tx in &self.router.shard_tx {
            // Nudge parked shards so they notice the halt now rather
            // than at the next tick timeout.
            let _ = tx.send(ShardMsg::Shutdown);
        }
    }

    /// Whether this server has been fenced out by a newer incarnation
    /// (a journal append was rejected). A fenced server never releases.
    pub fn fenced(&self) -> bool {
        self.shared.fenced.load(Ordering::Acquire)
    }

    /// Whether [`halt`](Self::halt) (or a scripted [`ServerCrash`]) has
    /// "killed" this server.
    pub fn halted(&self) -> bool {
        self.shared.halted.load(Ordering::Acquire)
    }

    /// This server's fencing token: 0 when unjournaled, else the
    /// incarnation claimed from the journal at start.
    pub fn incarnation(&self) -> u64 {
        self.shared.incarnation
    }

    /// Attaches a warm-standby replication stream: every journaled
    /// batch is teed over `transport` (best effort) and the lowest live
    /// shard beacons heartbeats so the standby can tell an idle primary
    /// from a dead one.
    pub fn attach_replica(&self, transport: Box<dyn Transport>) {
        *self.shared.repl.lock().unwrap_or_else(|e| e.into_inner()) = Some(transport);
    }

    /// Stops every shard (and UDS pump) thread and waits for them.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for tx in &self.router.shard_tx {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        for h in self.shard_handles.drain(..) {
            let _ = h.join();
        }
        let pumps =
            std::mem::take(&mut *self.pump_handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in pumps {
            let _ = h.join();
        }
    }
}

impl Drop for EpochServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{BarrierClient, ClientConfig};

    /// Fast ticks with a generous session lease: these tests exercise
    /// the protocol, not eviction, and must not lose a session to a
    /// scheduler stall on an oversubscribed CI host. Eviction tests
    /// configure their own short leases explicitly.
    fn quick_cfg(shards: usize) -> ServerConfig {
        ServerConfig {
            shards,
            tick: Duration::from_micros(200),
            lease: SupervisorConfig {
                min_grace: Duration::from_secs(1),
                sigma_mult: 4.0,
                max_misses: 3,
            },
            ..ServerConfig::default()
        }
    }

    #[test]
    fn single_client_advances_episodes() {
        let server = EpochServer::start(quick_cfg(2));
        let mut c = BarrierClient::new(server.connect(), 1, ClientConfig::default());
        c.join().unwrap();
        for i in 0..5 {
            let ep = c.arrive().unwrap();
            assert!(ep >= i, "episode {ep} below round {i}");
        }
        // Exactly-once bound: the join-frame proxy may race the first
        // real arrival, costing at most one count.
        let st = server.session_stats()[&1];
        assert!((4..=5).contains(&st.completed), "completed {st:?}");
        server.shutdown();
    }

    #[test]
    fn two_clients_rendezvous() {
        let server = EpochServer::start(quick_cfg(2));
        let t1 = server.connect();
        let t2 = server.connect();
        std::thread::scope(|s| {
            for (sid, t) in [(10u64, t1), (11u64, t2)] {
                s.spawn(move || {
                    let mut c = BarrierClient::new(t, sid, ClientConfig::default());
                    c.join().unwrap();
                    for _ in 0..20 {
                        c.arrive().unwrap();
                    }
                });
            }
        });
        let stats = server.session_stats();
        assert!((19..=20).contains(&stats[&10].completed), "{stats:?}");
        assert!((19..=20).contains(&stats[&11].completed), "{stats:?}");
        server.shutdown();
    }

    #[test]
    fn silent_session_is_evicted_and_survivors_proceed() {
        let server = EpochServer::start(ServerConfig {
            shards: 2,
            tick: Duration::from_micros(200),
            lease: SupervisorConfig {
                min_grace: Duration::from_millis(2),
                sigma_mult: 4.0,
                max_misses: 2,
            },
            ..ServerConfig::default()
        });
        // Session 2 joins and goes silent; session 1 must keep
        // completing episodes once the lease folds session 2 out.
        let mut dead = BarrierClient::new(server.connect(), 2, ClientConfig::default());
        dead.join().unwrap();
        let mut live = BarrierClient::new(server.connect(), 1, ClientConfig::default());
        live.join().unwrap();
        for _ in 0..10 {
            live.arrive().unwrap();
        }
        let stats = server.session_stats();
        assert!((9..=10).contains(&stats[&1].completed), "{stats:?}");
        assert_eq!(stats[&2].evictions, 1);
        server.shutdown();
    }

    #[test]
    fn evicted_session_rejoins() {
        let server = EpochServer::start(ServerConfig {
            shards: 2,
            tick: Duration::from_micros(200),
            lease: SupervisorConfig {
                min_grace: Duration::from_millis(2),
                sigma_mult: 4.0,
                max_misses: 2,
            },
            ..ServerConfig::default()
        });
        let mut a = BarrierClient::new(server.connect(), 1, ClientConfig::default());
        let mut b = BarrierClient::new(server.connect(), 2, ClientConfig::default());
        a.join().unwrap();
        b.join().unwrap();
        for _ in 0..3 {
            // b sleeps through its lease while a drives episodes.
            std::thread::scope(|s| {
                s.spawn(|| {
                    for _ in 0..8 {
                        a.arrive().unwrap();
                    }
                });
                s.spawn(|| std::thread::sleep(Duration::from_millis(40)));
            });
            // Err means the lease fired; Ok means it raced in b's
            // favor this round.
            if let Err(e) = b.arrive() {
                assert_eq!(e, combar_rt::BarrierError::Evicted);
                b.rejoin().unwrap();
            }
        }
        let stats = server.session_stats();
        assert!(stats[&2].rejoins >= 1, "b never rejoined: {stats:?}");
        server.shutdown();
    }

    #[test]
    fn dead_shard_degrades_gracefully() {
        let server = EpochServer::start(ServerConfig {
            shards: 4,
            tick: Duration::from_micros(200),
            shard_lease: SupervisorConfig {
                min_grace: Duration::from_millis(2),
                sigma_mult: 4.0,
                max_misses: 2,
            },
            ..ServerConfig::default()
        });
        // Sessions 0..8 spread over 4 shards; shard 2 dies.
        let mut transports: Vec<_> = (0..8u64).map(|_| Some(server.connect())).collect();
        std::thread::scope(|s| {
            for sid in 0..8u64 {
                let t = transports[sid as usize].take().unwrap();
                let server = &server;
                s.spawn(move || {
                    let mut c = BarrierClient::new(t, sid, ClientConfig::default());
                    c.join().unwrap();
                    let mut done = 0u32;
                    while done < 30 {
                        if sid == 0 && done == 5 {
                            server.stall_shard(2);
                        }
                        match c.arrive() {
                            Ok(_) => done += 1,
                            Err(combar_rt::BarrierError::Evicted) => {
                                c.rejoin().unwrap();
                            }
                            Err(e) => panic!("session {sid}: {e:?}"),
                        }
                    }
                });
            }
        });
        assert_eq!(server.live_shards(), 3, "shard 2 not declared dead");
        for (sid, st) in server.session_stats() {
            assert!(
                st.completed + 1 + st.evictions + st.rejoins >= 30,
                "session {sid} stalled: {st:?}"
            );
        }
        server.shutdown();
    }

    /// The root must pair completeness reports with shard liveness: a
    /// shard that reported complete and then died must not leave a
    /// stale report that — against the post-death live count —
    /// releases the episode while a surviving shard's session still
    /// owes its arrival. (A bare `shards_done` counter had exactly
    /// this hazard: the count kept the dead shard's report while
    /// `live` lost the shard, so `done >= live` came true one genuine
    /// arrival short.)
    #[test]
    fn dead_shards_stale_report_cannot_release_early() {
        let server = EpochServer::start(ServerConfig {
            shards: 2,
            tick: Duration::from_micros(200),
            // Sessions effectively never lease out; only the shard dies.
            lease: SupervisorConfig {
                min_grace: Duration::from_secs(30),
                sigma_mult: 4.0,
                max_misses: 30,
            },
            shard_lease: SupervisorConfig {
                min_grace: Duration::from_millis(2),
                sigma_mult: 4.0,
                max_misses: 2,
            },
            ..ServerConfig::default()
        });
        // Session 0 homes on shard 0, session 1 on shard 1.
        let mut c0 = BarrierClient::new(server.connect(), 0, ClientConfig::default());
        let mut c1 = BarrierClient::new(server.connect(), 1, ClientConfig::default());
        c0.join().unwrap();
        c1.join().unwrap();
        // Let the join-side proxy arrivals settle: shard 1's membership
        // (only session 1, proxy-arrived) is complete, so its reported
        // flag is up, while shard 0 waits on session 0's real arrival.
        std::thread::sleep(Duration::from_millis(10));
        let ep = server.episode();
        // The reported shard dies. (Shard 0 is a root poller, so its
        // peer's death is detected.)
        server.stall_shard(1);
        let t = Instant::now();
        while server.live_shards() != 1 {
            assert!(
                t.elapsed() < Duration::from_secs(5),
                "shard death undetected"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // Session 0 still owes its arrival, so the in-flight episode
        // must stay open — the dead shard's report must not combine
        // with the shrunken live count into an early release.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            server.episode(),
            ep,
            "released on a dead shard's stale report"
        );
        // Session 0's real arrival (after draining any stale releases
        // of already-completed episodes) is what releases the episode.
        let t = Instant::now();
        while server.episode() == ep {
            c0.arrive().unwrap();
            assert!(
                t.elapsed() < Duration::from_secs(5),
                "no release after arrival"
            );
        }
        server.shutdown();
    }

    /// Router assignments are sticky, so a shard with no free session
    /// slot must shed the assignment when it drops a `Hello` — and the
    /// router must probe past full shards — or every retry lands on
    /// the same full shard until join() exhausts its attempts.
    #[test]
    fn full_shard_redirects_new_sessions_to_headroom() {
        let server = EpochServer::start(ServerConfig {
            shards: 2,
            session_capacity: 2,
            ..quick_cfg(2)
        });
        // Sessions 0, 2, 4 all home on shard 0 (session % 2); capacity
        // seats two, so the third must be admitted by shard 1.
        for sid in [0u64, 2, 4] {
            let mut c = BarrierClient::new(server.connect(), sid, ClientConfig::default());
            c.join()
                .unwrap_or_else(|e| panic!("session {sid} failed to join: {e:?}"));
        }
        assert_eq!(server.live_sessions(), 3);
        server.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn uds_transport_reaches_the_server() {
        let server = EpochServer::start(quick_cfg(2));
        let t = server.connect_uds().unwrap();
        let mut c = BarrierClient::new(t, 77, ClientConfig::default());
        c.join().unwrap();
        for _ in 0..5 {
            c.arrive().unwrap();
        }
        let st = server.session_stats()[&77];
        assert!((4..=5).contains(&st.completed), "{st:?}");
        server.shutdown();
    }
}
