//! Traffic generator: drives many client sessions against an
//! [`EpochServer`] from a bounded pool of driver threads.
//!
//! Sessions vastly outnumber threads: each driver owns
//! `sessions / drivers` clients (each on its own loopback connection,
//! optionally decorated with a [`FaultyTransport`]) and multiplexes
//! them in two phases per round — send every arrival, then await every
//! release — which is exactly what the split
//! [`BarrierClient::send_arrive`] / [`BarrierClient::await_release`]
//! API exists for. Thousands of sessions run on a handful of threads.
//!
//! Churn is built in: sessions listed in [`TrafficConfig::kill`] go
//! silent (no `Leave` — a crash, not a goodbye) after completing
//! [`TrafficConfig::kill_after`] episodes, exercising the server's
//! lease eviction while the survivors keep completing episodes.
//! Evicted survivors (e.g. orphans of a stalled shard) rejoin and
//! continue.
//!
//! The report aggregates per-session completion counts, client retry /
//! eviction / rejoin counters, and the arrive→release latency
//! distribution (microseconds, sorted, with percentile accessors).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use combar_chaos::{NetChaosConfig, NetFaultPlan};

use crate::client::{BarrierClient, ClientConfig};
use crate::faulty::FaultyTransport;
use crate::proto::SessionId;
use crate::server::EpochServer;
use crate::transport::Transport;
use combar_rt::BarrierError;

/// What to drive against the server.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Session ids `first_session .. first_session + sessions`.
    pub sessions: u64,
    /// First session id (ids double as chaos stream seeds).
    pub first_session: u64,
    /// Driver threads the sessions are multiplexed over.
    pub drivers: usize,
    /// Episodes every surviving session must complete.
    pub episodes: u64,
    /// Per-client retry tuning.
    pub client: ClientConfig,
    /// Wire chaos applied to every connection (client side), or `None`
    /// for a clean wire.
    pub chaos: Option<NetChaosConfig>,
    /// Sessions that crash (go silent) mid-run.
    pub kill: Vec<SessionId>,
    /// Episodes a to-be-killed session completes before going silent.
    pub kill_after: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            sessions: 8,
            first_session: 0,
            drivers: 2,
            episodes: 50,
            client: ClientConfig::default(),
            chaos: None,
            kill: Vec::new(),
            kill_after: 0,
        }
    }
}

/// Aggregated outcome of a traffic run.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Episodes completed per session (killed sessions stop at their
    /// kill point).
    pub completed: HashMap<SessionId, u64>,
    /// Arrive→release latencies in microseconds, sorted ascending.
    pub latencies_us: Vec<u64>,
    /// Total client-side request re-sends.
    pub retries: u64,
    /// Total evictions observed by clients.
    pub evictions: u64,
    /// Total successful rejoins.
    pub rejoins: u64,
    /// Total successful `Resume` handshakes (server-restart ride-throughs).
    pub resumes: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl TrafficReport {
    /// The `p`-th percentile latency (0 ≤ p ≤ 100), or 0 if empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * (self.latencies_us.len() - 1) as f64).round() as usize;
        self.latencies_us[rank.min(self.latencies_us.len() - 1)]
    }

    /// Completed episodes summed over all sessions.
    pub fn total_episodes(&self) -> u64 {
        self.completed.values().sum()
    }

    /// Whether every session outside `kill` completed at least
    /// `episodes`.
    pub fn survivors_done(&self, cfg: &TrafficConfig) -> bool {
        (cfg.first_session..cfg.first_session + cfg.sessions)
            .filter(|s| !cfg.kill.contains(s))
            .all(|s| self.completed.get(&s).copied().unwrap_or(0) >= cfg.episodes)
    }
}

/// One driver thread's raw outcome: per-session completion counts,
/// latencies (µs), then retry / eviction / rejoin / resume totals.
type DriverOutcome = (Vec<(SessionId, u64)>, Vec<u64>, u64, u64, u64, u64);

struct DrivenSession {
    client: BarrierClient<Box<dyn Transport>>,
    done: u64,
    target: u64,
    in_flight: Option<Instant>,
    /// When the in-flight arrival was last put on the wire — re-sent
    /// (idempotently) after a request-timeout of silence, which also
    /// renews the session lease while the barrier waits on peers.
    last_send: Instant,
}

/// Runs the configured traffic to completion and reports.
///
/// Panics if a surviving session hits a non-recoverable error
/// (`Poisoned`) or cannot rejoin after eviction within the client's
/// attempt budget — a wedged epoch shows up as a test failure, not a
/// hang.
pub fn drive(server: &EpochServer, cfg: &TrafficConfig) -> TrafficReport {
    drive_with(|_| Box::new(server.connect()), cfg)
}

/// [`drive`] generalized over how sessions reach the server: `connect`
/// mints a base transport per session — a plain loopback, a
/// [`ReconnectTransport`](crate::ReconnectTransport) into a failover
/// cluster, anything. Wire chaos from [`TrafficConfig::chaos`] is
/// layered on top of whatever `connect` returns.
pub fn drive_with(
    connect: impl Fn(SessionId) -> Box<dyn Transport> + Sync,
    cfg: &TrafficConfig,
) -> TrafficReport {
    assert!(cfg.drivers >= 1 && cfg.sessions >= 1);
    let started = Instant::now();
    let connect = &connect;
    let results: Vec<DriverOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.drivers)
            .map(|d| {
                let cfg = cfg.clone();
                scope.spawn(move || drive_one(connect, &cfg, d))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut report = TrafficReport {
        completed: HashMap::new(),
        latencies_us: Vec::new(),
        retries: 0,
        evictions: 0,
        rejoins: 0,
        resumes: 0,
        elapsed: started.elapsed(),
    };
    for (completed, lats, retries, evictions, rejoins, resumes) in results {
        report.completed.extend(completed);
        report.latencies_us.extend(lats);
        report.retries += retries;
        report.evictions += evictions;
        report.rejoins += rejoins;
        report.resumes += resumes;
    }
    report.latencies_us.sort_unstable();
    report
}

fn drive_one(
    connect: &(impl Fn(SessionId) -> Box<dyn Transport> + Sync),
    cfg: &TrafficConfig,
    driver: usize,
) -> DriverOutcome {
    // Connect this driver's slice of sessions.
    let mut sessions: Vec<DrivenSession> = (cfg.first_session..cfg.first_session + cfg.sessions)
        .filter(|sid| (sid - cfg.first_session) as usize % cfg.drivers == driver)
        .map(|sid| {
            let base = connect(sid);
            let transport: Box<dyn Transport> = match &cfg.chaos {
                Some(chaos) => Box::new(FaultyTransport::new(
                    base,
                    NetFaultPlan::new(*chaos),
                    2 * sid,
                    2 * sid + 1,
                )),
                None => Box::new(base),
            };
            let target = if cfg.kill.contains(&sid) {
                cfg.kill_after.min(cfg.episodes)
            } else {
                cfg.episodes
            };
            DrivenSession {
                client: BarrierClient::new(transport, sid, cfg.client),
                done: 0,
                target,
                in_flight: None,
                last_send: Instant::now(),
            }
        })
        .collect();
    for s in &mut sessions {
        s.client
            .join()
            .unwrap_or_else(|e| panic!("session {} failed to join: {e:?}", s.client.session()));
    }
    let mut latencies = Vec::new();
    // The driver is a round-robin multiplexer: each round (re)sends
    // every owed arrival, then gives each in-flight session one short
    // poll for its release. It never parks on a single session — a
    // driver that blocked on session B's release while its session A
    // still owed the server an arrival would wedge every other driver
    // too (their sessions wait on A), a distributed self-deadlock that
    // only lease evictions could break.
    let poll = Duration::from_millis(1);
    while sessions.iter().any(|s| s.done < s.target) {
        // Phase 1: rejoin the evicted, (re)send every owed arrival.
        for s in sessions.iter_mut().filter(|s| s.done < s.target) {
            if !s.client.is_joined() {
                match s.client.rejoin() {
                    Ok(_) => s.in_flight = None,
                    Err(BarrierError::Timeout) => {} // next round
                    Err(e) => panic!("session {} rejoin: {e:?}", s.client.session()),
                }
                continue;
            }
            let resend =
                s.in_flight.is_some() && s.last_send.elapsed() >= cfg.client.request_timeout;
            if s.in_flight.is_none() || resend {
                match s.client.send_arrive() {
                    Ok(()) => {
                        s.last_send = Instant::now();
                        if s.in_flight.is_none() {
                            s.in_flight = Some(s.last_send);
                        }
                    }
                    Err(BarrierError::Evicted) => {} // rejoin next round
                    Err(e) => panic!("session {}: {e:?}", s.client.session()),
                }
            }
        }
        // Phase 2: one bounded poll per in-flight session.
        for s in sessions.iter_mut().filter(|s| s.done < s.target) {
            let Some(t0) = s.in_flight else { continue };
            match s.client.poll_release(poll) {
                Ok(_) => {
                    latencies.push(t0.elapsed().as_micros() as u64);
                    s.done += 1;
                    s.in_flight = None;
                    if s.done >= s.target {
                        if cfg.kill.contains(&s.client.session()) {
                            // Crash, not goodbye: go silent and let the
                            // lease evict us.
                        } else {
                            // Orderly departure so peers never wait on
                            // a finished session (loss degenerates to a
                            // lease eviction, which is equivalent).
                            let _ = s.client.leave();
                        }
                    }
                }
                Err(BarrierError::Evicted) => {
                    s.in_flight = None; // rejoin next round
                }
                Err(BarrierError::Timeout) => {
                    // Not yet; phase 1 re-sends after enough silence.
                }
                Err(e) => panic!("session {}: {e:?}", s.client.session()),
            }
        }
    }
    let mut completed = Vec::new();
    let (mut retries, mut evictions, mut rejoins, mut resumes) = (0, 0, 0, 0);
    for s in &sessions {
        completed.push((s.client.session(), s.done));
        let st = s.client.stats();
        retries += st.retries;
        evictions += st.evictions;
        rejoins += st.rejoins;
        resumes += st.resumes;
    }
    (completed, latencies, retries, evictions, rejoins, resumes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;

    #[test]
    fn clean_wire_traffic_completes() {
        let server = EpochServer::start(ServerConfig {
            shards: 2,
            tick: Duration::from_micros(200),
            ..ServerConfig::default()
        });
        let cfg = TrafficConfig {
            sessions: 16,
            drivers: 4,
            episodes: 25,
            ..TrafficConfig::default()
        };
        let report = drive(&server, &cfg);
        assert!(report.survivors_done(&cfg), "{:?}", report.completed);
        assert_eq!(report.total_episodes(), 16 * 25);
        assert!(!report.latencies_us.is_empty());
        assert!(report.percentile_us(99.0) >= report.percentile_us(50.0));
        server.shutdown();
    }

    #[test]
    fn killed_sessions_do_not_wedge_survivors() {
        let server = EpochServer::start(ServerConfig {
            shards: 2,
            tick: Duration::from_micros(200),
            lease: combar_rt::SupervisorConfig {
                min_grace: Duration::from_millis(2),
                sigma_mult: 4.0,
                max_misses: 2,
            },
            ..ServerConfig::default()
        });
        let cfg = TrafficConfig {
            sessions: 8,
            drivers: 2,
            episodes: 30,
            kill: vec![3, 5],
            kill_after: 5,
            ..TrafficConfig::default()
        };
        let report = drive(&server, &cfg);
        assert!(report.survivors_done(&cfg), "{:?}", report.completed);
        assert_eq!(report.completed[&3], 5, "killed session overran");
        server.shutdown();
    }
}
