//! Barrier-as-a-service: a fault-tolerant networked epoch server.
//!
//! Everything before this crate synchronized threads that share an
//! address space; this crate lifts the same episode/epoch protocol onto
//! a message wire so *sessions* — clients behind an unreliable
//! transport — can cross barriers together. The design is the paper's
//! barrier anatomy restated as a service:
//!
//! * **Arrival aggregation up a tree** — sessions batch into shards
//!   (one owning thread each), shards batch into one root counter; the
//!   shard whose completeness report fills the root performs the
//!   release and the broadcast fans back down
//!   ([`server::EpochServer`]).
//! * **Load imbalance becomes failure tolerance** — the same lease
//!   supervisor that evicted straggling *threads* (PR 4) now evicts
//!   silent *sessions* and dead *shards*; membership folds at quiescent
//!   points so an epoch can never wedge on a crashed participant, and
//!   evicted clients rejoin at an episode boundary.
//! * **The wire is hostile** — every request is idempotent
//!   ([`proto`]), the client retries with jittered exponential backoff
//!   ([`client::BarrierClient`]), and [`FaultyTransport`] replays
//!   deterministic drop/duplicate/delay/reorder/disconnect schedules
//!   from `combar-chaos` so the hostility is reproducible in tests.
//!
//! * **The server itself can die** — every completed episode is
//!   write-ahead journaled ([`journal`]) *before* its release is
//!   broadcast, so a restarted (or warm-standby) server replays the
//!   journal ([`recover`]), re-derives the roster, and answers in-flight
//!   arrivals idempotently; a monotonic incarnation number in every
//!   frame fences out zombie predecessors.
//!
//! Layering (zero dependencies outside the workspace):
//!
//! ```text
//!   traffic   — multiplexed load generator, latency percentiles
//!   mux       — the same multiplexer as an async task (combar-rt)
//!   client    — BarrierClient: join/arrive/heartbeat/leave/rejoin
//!   faulty    — FaultyTransport: NetFaultPlan interpreter
//!   recover   — journal replay, warm standby, failover cluster
//!   journal   — write-ahead epoch journal (length-delimited, fenced)
//!   transport — Transport trait; loopback + Unix-datagram endpoints
//!   proto     — request/response frames, total binary codec
//!   server    — sharded EpochServer, session & shard leases
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod faulty;
pub mod journal;
pub mod mux;
pub mod proto;
pub mod recover;
pub mod server;
pub mod traffic;
pub mod transport;

pub use client::{BarrierClient, ClientConfig, ClientStats};
pub use faulty::FaultyTransport;
pub use journal::{Journal, JournalError, JournalRecord};
pub use mux::{MuxConfig, MuxReport, SessionMux};
pub use proto::{FrameError, Request, Response, SessionId};
pub use recover::{recover, FailoverCluster, RecoveredState, Standby};
pub use server::{EpochServer, ServerConfig, ServerCrash, SessionStats};
pub use traffic::{drive, drive_with, TrafficConfig, TrafficReport};
pub use transport::{loopback_pair, LoopbackTransport, NetError, ReconnectTransport, Transport};

#[cfg(unix)]
pub use transport::{uds_pair, UdsTransport};
