//! The wire protocol: message shapes and a zero-dependency binary
//! codec.
//!
//! Every message is one datagram-sized frame: a one-byte tag followed
//! by fixed-width little-endian `u64` fields. The protocol is designed
//! so *every client request is idempotent*:
//!
//! * [`Request::Arrive`] names its `(session, episode)` coordinate, so
//!   a retransmission of an arrival the server already counted is a
//!   no-op, and an arrival for an episode that already released is
//!   answered with the (re-sent) [`Response::Release`] rather than
//!   being counted again. Episode counters therefore advance exactly
//!   once per session per episode no matter how lossy the wire is.
//! * [`Request::Hello`] carries the session id chosen by the client;
//!   re-sending it re-delivers the same [`Response::Welcome`] with the
//!   session's *current* join epoch.
//! * `seq` is a per-session monotone request counter used only for
//!   diagnostics/traces — dedup falls out of the episode state, not
//!   the sequence number, so a reordered retry can never corrupt
//!   state.
//!
//! Decoding is total: a malformed frame decodes to `None` and the
//! receiver drops it, which is exactly what a lossy transport already
//! forces it to tolerate.

/// A client session identifier (chosen by the client at `Hello`).
pub type SessionId = u64;

/// Client → server messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Join (or rejoin, after eviction) the barrier service.
    Hello {
        /// The session joining.
        session: SessionId,
        /// Request counter (diagnostics only).
        seq: u64,
    },
    /// Idempotent arrival of `session` at `episode`.
    Arrive {
        /// The arriving session.
        session: SessionId,
        /// The episode the client believes is current for it.
        episode: u64,
        /// Request counter (diagnostics only).
        seq: u64,
    },
    /// Lease renewal without an arrival (a slow client keeping its
    /// membership alive mid-computation).
    Heartbeat {
        /// The session renewing its lease.
        session: SessionId,
        /// Request counter (diagnostics only).
        seq: u64,
    },
    /// Orderly departure: the session leaves the membership at the
    /// next episode boundary without being treated as a failure.
    Leave {
        /// The departing session.
        session: SessionId,
        /// Request counter (diagnostics only).
        seq: u64,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// Admission (or re-admission): the session participates starting
    /// at `episode`.
    Welcome {
        /// The admitted session.
        session: SessionId,
        /// First episode the session is expected to arrive for.
        episode: u64,
    },
    /// The named episode completed; every participant may proceed.
    Release {
        /// The completed episode.
        episode: u64,
    },
    /// The session's lease expired (or its shard died) and the
    /// membership was folded without it. The client surfaces
    /// `BarrierError::Evicted` and may `rejoin` via a fresh `Hello`.
    Evicted {
        /// The evicted session.
        session: SessionId,
        /// The episode during which the eviction happened.
        episode: u64,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_ARRIVE: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_LEAVE: u8 = 4;
const TAG_WELCOME: u8 = 65;
const TAG_RELEASE: u8 = 66;
const TAG_EVICTED: u8 = 67;

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> Option<u64> {
    let bytes: [u8; 8] = buf.get(at..at + 8)?.try_into().ok()?;
    Some(u64::from_le_bytes(bytes))
}

impl Request {
    /// The session this request belongs to.
    pub fn session(&self) -> SessionId {
        match *self {
            Request::Hello { session, .. }
            | Request::Arrive { session, .. }
            | Request::Heartbeat { session, .. }
            | Request::Leave { session, .. } => session,
        }
    }

    /// Encodes the request as one frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(25);
        match *self {
            Request::Hello { session, seq } => {
                buf.push(TAG_HELLO);
                put_u64(&mut buf, session);
                put_u64(&mut buf, seq);
            }
            Request::Arrive {
                session,
                episode,
                seq,
            } => {
                buf.push(TAG_ARRIVE);
                put_u64(&mut buf, session);
                put_u64(&mut buf, episode);
                put_u64(&mut buf, seq);
            }
            Request::Heartbeat { session, seq } => {
                buf.push(TAG_HEARTBEAT);
                put_u64(&mut buf, session);
                put_u64(&mut buf, seq);
            }
            Request::Leave { session, seq } => {
                buf.push(TAG_LEAVE);
                put_u64(&mut buf, session);
                put_u64(&mut buf, seq);
            }
        }
        buf
    }

    /// Decodes one frame; `None` if malformed (the frame is dropped,
    /// as on a lossy wire).
    pub fn decode(frame: &[u8]) -> Option<Request> {
        let tag = *frame.first()?;
        match tag {
            TAG_HELLO => Some(Request::Hello {
                session: get_u64(frame, 1)?,
                seq: get_u64(frame, 9)?,
            }),
            TAG_ARRIVE => Some(Request::Arrive {
                session: get_u64(frame, 1)?,
                episode: get_u64(frame, 9)?,
                seq: get_u64(frame, 17)?,
            }),
            TAG_HEARTBEAT => Some(Request::Heartbeat {
                session: get_u64(frame, 1)?,
                seq: get_u64(frame, 9)?,
            }),
            TAG_LEAVE => Some(Request::Leave {
                session: get_u64(frame, 1)?,
                seq: get_u64(frame, 9)?,
            }),
            _ => None,
        }
    }
}

impl Response {
    /// Encodes the response as one frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(17);
        match *self {
            Response::Welcome { session, episode } => {
                buf.push(TAG_WELCOME);
                put_u64(&mut buf, session);
                put_u64(&mut buf, episode);
            }
            Response::Release { episode } => {
                buf.push(TAG_RELEASE);
                put_u64(&mut buf, episode);
            }
            Response::Evicted { session, episode } => {
                buf.push(TAG_EVICTED);
                put_u64(&mut buf, session);
                put_u64(&mut buf, episode);
            }
        }
        buf
    }

    /// Decodes one frame; `None` if malformed.
    pub fn decode(frame: &[u8]) -> Option<Response> {
        let tag = *frame.first()?;
        match tag {
            TAG_WELCOME => Some(Response::Welcome {
                session: get_u64(frame, 1)?,
                episode: get_u64(frame, 9)?,
            }),
            TAG_RELEASE => Some(Response::Release {
                episode: get_u64(frame, 1)?,
            }),
            TAG_EVICTED => Some(Response::Evicted {
                session: get_u64(frame, 1)?,
                episode: get_u64(frame, 9)?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let cases = [
            Request::Hello { session: 7, seq: 1 },
            Request::Arrive {
                session: u64::MAX,
                episode: 200,
                seq: 3,
            },
            Request::Heartbeat {
                session: 0,
                seq: u64::MAX,
            },
            Request::Leave { session: 9, seq: 4 },
        ];
        for r in cases {
            assert_eq!(Request::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn responses_roundtrip() {
        let cases = [
            Response::Welcome {
                session: 3,
                episode: 12,
            },
            Response::Release { episode: 0 },
            Response::Evicted {
                session: 5,
                episode: 77,
            },
        ];
        for r in cases {
            assert_eq!(Response::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn malformed_frames_decode_to_none() {
        assert_eq!(Request::decode(&[]), None);
        assert_eq!(Request::decode(&[99, 0, 0]), None);
        assert_eq!(Request::decode(&[TAG_ARRIVE, 1, 2]), None); // truncated
        assert_eq!(Response::decode(&[TAG_RELEASE]), None);
        assert_eq!(Response::decode(&[0]), None);
    }

    #[test]
    fn request_and_response_tags_are_disjoint() {
        // A response frame must never decode as a request (and vice
        // versa): a faulty transport that cross-delivers frames gets a
        // clean drop, not a misparse.
        let resp = Response::Release { episode: 4 }.encode();
        assert_eq!(Request::decode(&resp), None);
        let req = Request::Hello { session: 1, seq: 0 }.encode();
        assert_eq!(Response::decode(&req), None);
    }
}
