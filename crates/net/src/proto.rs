//! The wire protocol: message shapes and a zero-dependency binary
//! codec.
//!
//! Every message is one datagram-sized frame: a one-byte tag followed
//! by fixed-width little-endian `u64` fields. The protocol is designed
//! so *every client request is idempotent*:
//!
//! * [`Request::Arrive`] names its `(session, episode)` coordinate, so
//!   a retransmission of an arrival the server already counted is a
//!   no-op, and an arrival for an episode that already released is
//!   answered with the (re-sent) [`Response::Release`] rather than
//!   being counted again. Episode counters therefore advance exactly
//!   once per session per episode no matter how lossy the wire is.
//! * [`Request::Hello`] carries the session id chosen by the client;
//!   re-sending it re-delivers the same [`Response::Welcome`] with the
//!   session's *current* join epoch.
//! * [`Request::Resume`] proves the session's next-expected episode to
//!   a restarted server, so recovery either re-admits the session at
//!   its exact coordinate, re-acks a `Release` it missed, or surfaces
//!   an explicit [`Response::Diverged`] when the journal lost a suffix
//!   the client already observed — never a silent epoch skew.
//! * `seq` is a per-session monotone request counter used only for
//!   diagnostics/traces — dedup falls out of the episode state, not
//!   the sequence number, so a reordered retry can never corrupt
//!   state.
//!
//! Every server → client frame carries the server's **incarnation
//! number** (`inc`): restarts and standby takeovers bump it, and
//! clients drop frames whose incarnation is below the highest they
//! have seen, which fences a zombie primary's stale `Release` frames.
//!
//! Decoding is total and *exact*: a truncated, over-long, or
//! unknown-tag frame decodes to a [`FrameError`] and the receiver
//! drops it, which is exactly what a lossy transport already forces it
//! to tolerate. Decoding never panics and never mis-frames (a frame
//! with trailing garbage is rejected rather than silently accepted).

/// A client session identifier (chosen by the client at `Hello`).
pub type SessionId = u64;

/// Why a frame failed to decode. The receiver's policy for every
/// variant is the same — drop the frame, as on a lossy wire — but the
/// distinction matters for diagnostics and for the corruption fuzz
/// tests that pin "malformed input can never panic or mis-frame".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Zero-length frame (no tag byte).
    Empty,
    /// The tag byte names no known message kind.
    UnknownTag(u8),
    /// The tag is known but the frame length does not match the
    /// message's exact wire size (truncated or trailing garbage).
    BadLength {
        /// The recognised tag.
        tag: u8,
        /// The offending frame length in bytes.
        len: usize,
    },
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            FrameError::Empty => write!(f, "empty frame"),
            FrameError::UnknownTag(t) => write!(f, "unknown frame tag {t}"),
            FrameError::BadLength { tag, len } => {
                write!(f, "bad frame length {len} for tag {tag}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Client → server messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Join (or rejoin, after eviction) the barrier service.
    Hello {
        /// The session joining.
        session: SessionId,
        /// Request counter (diagnostics only).
        seq: u64,
    },
    /// Idempotent arrival of `session` at `episode`.
    Arrive {
        /// The arriving session.
        session: SessionId,
        /// The episode the client believes is current for it.
        episode: u64,
        /// Request counter (diagnostics only).
        seq: u64,
    },
    /// Lease renewal without an arrival (a slow client keeping its
    /// membership alive mid-computation).
    Heartbeat {
        /// The session renewing its lease.
        session: SessionId,
        /// Request counter (diagnostics only).
        seq: u64,
    },
    /// Orderly departure: the session leaves the membership at the
    /// next episode boundary without being treated as a failure.
    Leave {
        /// The departing session.
        session: SessionId,
        /// Request counter (diagnostics only).
        seq: u64,
    },
    /// Resume a session on a restarted server: proves the episode the
    /// client expects next, so recovery can re-admit it at the exact
    /// coordinate (or detect divergence). Sent in response to
    /// [`Response::ResumeRequired`].
    Resume {
        /// The resuming session.
        session: SessionId,
        /// The next episode the client expects to be released.
        next_episode: u64,
        /// Request counter (diagnostics only).
        seq: u64,
    },
}

/// Server → client messages. Every variant carries the server's
/// incarnation number `inc` so clients can fence stale frames from a
/// superseded (zombie) primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// Admission (or re-admission): the session participates starting
    /// at `episode`.
    Welcome {
        /// The admitted session.
        session: SessionId,
        /// First episode the session is expected to arrive for.
        episode: u64,
        /// Server incarnation issuing the frame.
        inc: u64,
    },
    /// The named episode completed; every participant may proceed.
    Release {
        /// The completed episode.
        episode: u64,
        /// Server incarnation issuing the frame.
        inc: u64,
    },
    /// The session's lease expired (or its shard died) and the
    /// membership was folded without it. The client surfaces
    /// `BarrierError::Evicted` and may `rejoin` via a fresh `Hello`.
    Evicted {
        /// The evicted session.
        session: SessionId,
        /// The episode during which the eviction happened.
        episode: u64,
        /// Server incarnation issuing the frame.
        inc: u64,
    },
    /// A recovered server knows this session from its journal but has
    /// not yet seen it this incarnation: the client must prove its
    /// coordinate with [`Request::Resume`] before any other request is
    /// honoured.
    ResumeRequired {
        /// The session being challenged.
        session: SessionId,
        /// The episode the server currently considers in-flight.
        episode: u64,
        /// Server incarnation issuing the frame.
        inc: u64,
    },
    /// Resume accepted: the session is re-admitted, expected to arrive
    /// for `episode` (the in-flight frame).
    Resumed {
        /// The resumed session.
        session: SessionId,
        /// The episode the session should arrive for next.
        episode: u64,
        /// Server incarnation issuing the frame.
        inc: u64,
    },
    /// Resume rejected: the client has observed releases beyond what
    /// the recovered journal records — a journal suffix was lost. The
    /// client surfaces `BarrierError::Diverged`; rejoining would risk
    /// double-completing epochs the authority no longer remembers.
    Diverged {
        /// The rejected session.
        session: SessionId,
        /// The highest next-episode the server can vouch for.
        expected: u64,
        /// Server incarnation issuing the frame.
        inc: u64,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_ARRIVE: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_LEAVE: u8 = 4;
const TAG_RESUME: u8 = 5;
const TAG_WELCOME: u8 = 65;
const TAG_RELEASE: u8 = 66;
const TAG_EVICTED: u8 = 67;
const TAG_RESUME_REQUIRED: u8 = 68;
const TAG_RESUMED: u8 = 69;
const TAG_DIVERGED: u8 = 70;

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    // Callers check the exact frame length first, so this slice is
    // always in bounds.
    let bytes: [u8; 8] = buf[at..at + 8].try_into().expect("length checked");
    u64::from_le_bytes(bytes)
}

/// Exact-length gate: a known tag with any other length is rejected,
/// so a truncated frame can never read garbage and a frame with
/// trailing bytes can never smuggle them past the codec.
fn expect_len(frame: &[u8], tag: u8, want: usize) -> Result<(), FrameError> {
    if frame.len() == want {
        Ok(())
    } else {
        Err(FrameError::BadLength {
            tag,
            len: frame.len(),
        })
    }
}

impl Request {
    /// The session this request belongs to.
    pub fn session(&self) -> SessionId {
        match *self {
            Request::Hello { session, .. }
            | Request::Arrive { session, .. }
            | Request::Heartbeat { session, .. }
            | Request::Leave { session, .. }
            | Request::Resume { session, .. } => session,
        }
    }

    /// Encodes the request as one frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(25);
        match *self {
            Request::Hello { session, seq } => {
                buf.push(TAG_HELLO);
                put_u64(&mut buf, session);
                put_u64(&mut buf, seq);
            }
            Request::Arrive {
                session,
                episode,
                seq,
            } => {
                buf.push(TAG_ARRIVE);
                put_u64(&mut buf, session);
                put_u64(&mut buf, episode);
                put_u64(&mut buf, seq);
            }
            Request::Heartbeat { session, seq } => {
                buf.push(TAG_HEARTBEAT);
                put_u64(&mut buf, session);
                put_u64(&mut buf, seq);
            }
            Request::Leave { session, seq } => {
                buf.push(TAG_LEAVE);
                put_u64(&mut buf, session);
                put_u64(&mut buf, seq);
            }
            Request::Resume {
                session,
                next_episode,
                seq,
            } => {
                buf.push(TAG_RESUME);
                put_u64(&mut buf, session);
                put_u64(&mut buf, next_episode);
                put_u64(&mut buf, seq);
            }
        }
        buf
    }

    /// Decodes one frame; a [`FrameError`] means the frame is dropped,
    /// as on a lossy wire. Never panics, never mis-frames.
    pub fn decode(frame: &[u8]) -> Result<Request, FrameError> {
        let tag = *frame.first().ok_or(FrameError::Empty)?;
        match tag {
            TAG_HELLO => {
                expect_len(frame, tag, 17)?;
                Ok(Request::Hello {
                    session: get_u64(frame, 1),
                    seq: get_u64(frame, 9),
                })
            }
            TAG_ARRIVE => {
                expect_len(frame, tag, 25)?;
                Ok(Request::Arrive {
                    session: get_u64(frame, 1),
                    episode: get_u64(frame, 9),
                    seq: get_u64(frame, 17),
                })
            }
            TAG_HEARTBEAT => {
                expect_len(frame, tag, 17)?;
                Ok(Request::Heartbeat {
                    session: get_u64(frame, 1),
                    seq: get_u64(frame, 9),
                })
            }
            TAG_LEAVE => {
                expect_len(frame, tag, 17)?;
                Ok(Request::Leave {
                    session: get_u64(frame, 1),
                    seq: get_u64(frame, 9),
                })
            }
            TAG_RESUME => {
                expect_len(frame, tag, 25)?;
                Ok(Request::Resume {
                    session: get_u64(frame, 1),
                    next_episode: get_u64(frame, 9),
                    seq: get_u64(frame, 17),
                })
            }
            other => Err(FrameError::UnknownTag(other)),
        }
    }
}

impl Response {
    /// The incarnation number stamped on this frame.
    pub fn incarnation(&self) -> u64 {
        match *self {
            Response::Welcome { inc, .. }
            | Response::Release { inc, .. }
            | Response::Evicted { inc, .. }
            | Response::ResumeRequired { inc, .. }
            | Response::Resumed { inc, .. }
            | Response::Diverged { inc, .. } => inc,
        }
    }

    /// Encodes the response as one frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(25);
        match *self {
            Response::Welcome {
                session,
                episode,
                inc,
            } => {
                buf.push(TAG_WELCOME);
                put_u64(&mut buf, session);
                put_u64(&mut buf, episode);
                put_u64(&mut buf, inc);
            }
            Response::Release { episode, inc } => {
                buf.push(TAG_RELEASE);
                put_u64(&mut buf, episode);
                put_u64(&mut buf, inc);
            }
            Response::Evicted {
                session,
                episode,
                inc,
            } => {
                buf.push(TAG_EVICTED);
                put_u64(&mut buf, session);
                put_u64(&mut buf, episode);
                put_u64(&mut buf, inc);
            }
            Response::ResumeRequired {
                session,
                episode,
                inc,
            } => {
                buf.push(TAG_RESUME_REQUIRED);
                put_u64(&mut buf, session);
                put_u64(&mut buf, episode);
                put_u64(&mut buf, inc);
            }
            Response::Resumed {
                session,
                episode,
                inc,
            } => {
                buf.push(TAG_RESUMED);
                put_u64(&mut buf, session);
                put_u64(&mut buf, episode);
                put_u64(&mut buf, inc);
            }
            Response::Diverged {
                session,
                expected,
                inc,
            } => {
                buf.push(TAG_DIVERGED);
                put_u64(&mut buf, session);
                put_u64(&mut buf, expected);
                put_u64(&mut buf, inc);
            }
        }
        buf
    }

    /// Decodes one frame; a [`FrameError`] means the frame is dropped.
    /// Never panics, never mis-frames.
    pub fn decode(frame: &[u8]) -> Result<Response, FrameError> {
        let tag = *frame.first().ok_or(FrameError::Empty)?;
        match tag {
            TAG_WELCOME => {
                expect_len(frame, tag, 25)?;
                Ok(Response::Welcome {
                    session: get_u64(frame, 1),
                    episode: get_u64(frame, 9),
                    inc: get_u64(frame, 17),
                })
            }
            TAG_RELEASE => {
                expect_len(frame, tag, 17)?;
                Ok(Response::Release {
                    episode: get_u64(frame, 1),
                    inc: get_u64(frame, 9),
                })
            }
            TAG_EVICTED => {
                expect_len(frame, tag, 25)?;
                Ok(Response::Evicted {
                    session: get_u64(frame, 1),
                    episode: get_u64(frame, 9),
                    inc: get_u64(frame, 17),
                })
            }
            TAG_RESUME_REQUIRED => {
                expect_len(frame, tag, 25)?;
                Ok(Response::ResumeRequired {
                    session: get_u64(frame, 1),
                    episode: get_u64(frame, 9),
                    inc: get_u64(frame, 17),
                })
            }
            TAG_RESUMED => {
                expect_len(frame, tag, 25)?;
                Ok(Response::Resumed {
                    session: get_u64(frame, 1),
                    episode: get_u64(frame, 9),
                    inc: get_u64(frame, 17),
                })
            }
            TAG_DIVERGED => {
                expect_len(frame, tag, 25)?;
                Ok(Response::Diverged {
                    session: get_u64(frame, 1),
                    expected: get_u64(frame, 9),
                    inc: get_u64(frame, 17),
                })
            }
            other => Err(FrameError::UnknownTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_cases() -> Vec<Request> {
        vec![
            Request::Hello { session: 7, seq: 1 },
            Request::Arrive {
                session: u64::MAX,
                episode: 200,
                seq: 3,
            },
            Request::Heartbeat {
                session: 0,
                seq: u64::MAX,
            },
            Request::Leave { session: 9, seq: 4 },
            Request::Resume {
                session: 11,
                next_episode: 42,
                seq: 5,
            },
        ]
    }

    fn response_cases() -> Vec<Response> {
        vec![
            Response::Welcome {
                session: 3,
                episode: 12,
                inc: 1,
            },
            Response::Release {
                episode: 0,
                inc: u64::MAX,
            },
            Response::Evicted {
                session: 5,
                episode: 77,
                inc: 2,
            },
            Response::ResumeRequired {
                session: 8,
                episode: 40,
                inc: 3,
            },
            Response::Resumed {
                session: 8,
                episode: 40,
                inc: 3,
            },
            Response::Diverged {
                session: 8,
                expected: 39,
                inc: 3,
            },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for r in request_cases() {
            assert_eq!(Request::decode(&r.encode()), Ok(r));
        }
    }

    #[test]
    fn responses_roundtrip() {
        for r in response_cases() {
            assert_eq!(Response::decode(&r.encode()), Ok(r));
        }
    }

    #[test]
    fn malformed_frames_decode_to_err() {
        assert_eq!(Request::decode(&[]), Err(FrameError::Empty));
        assert_eq!(
            Request::decode(&[99, 0, 0]),
            Err(FrameError::UnknownTag(99))
        );
        assert_eq!(
            Request::decode(&[TAG_ARRIVE, 1, 2]),
            Err(FrameError::BadLength {
                tag: TAG_ARRIVE,
                len: 3
            })
        );
        assert_eq!(
            Response::decode(&[TAG_RELEASE]),
            Err(FrameError::BadLength {
                tag: TAG_RELEASE,
                len: 1
            })
        );
        assert_eq!(Response::decode(&[0]), Err(FrameError::UnknownTag(0)));
        assert_eq!(Response::decode(&[]), Err(FrameError::Empty));
    }

    #[test]
    fn trailing_garbage_is_rejected_not_misframed() {
        // A correct frame with appended bytes must be rejected: a codec
        // that silently ignored the tail could mis-frame a concatenated
        // pair of datagrams as the first one.
        for r in request_cases() {
            let mut wire = r.encode();
            wire.push(0xAB);
            assert!(
                Request::decode(&wire).is_err(),
                "{r:?} accepted trailing byte"
            );
        }
        for r in response_cases() {
            let mut wire = r.encode();
            wire.push(0xAB);
            assert!(
                Response::decode(&wire).is_err(),
                "{r:?} accepted trailing byte"
            );
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        for r in request_cases() {
            let wire = r.encode();
            for cut in 0..wire.len() {
                assert!(Request::decode(&wire[..cut]).is_err(), "{r:?} cut at {cut}");
            }
        }
        for r in response_cases() {
            let wire = r.encode();
            for cut in 0..wire.len() {
                assert!(
                    Response::decode(&wire[..cut]).is_err(),
                    "{r:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn request_and_response_tags_are_disjoint() {
        // A response frame must never decode as a request (and vice
        // versa): a faulty transport that cross-delivers frames gets a
        // clean drop, not a misparse.
        let resp = Response::Release { episode: 4, inc: 0 }.encode();
        assert!(Request::decode(&resp).is_err());
        let req = Request::Hello { session: 1, seq: 0 }.encode();
        assert!(Response::decode(&req).is_err());
    }

    /// Seeded corruption fuzz over every message kind: random bit
    /// flips, truncations, extensions, and pure-noise frames must
    /// either decode to *some* valid message (a flip landing in a
    /// payload field is indistinguishable from a different valid
    /// frame) or return an error — never panic. Where the corrupted
    /// frame does decode, re-encoding it must reproduce the frame
    /// byte-for-byte (no mis-framing: the codec read exactly what was
    /// on the wire).
    #[test]
    fn corruption_fuzz_never_panics_or_misframes() {
        let mut state = 0x9e37_79b9_7f4a_7c15_u64; // fixed seed
        let mut next = move || {
            // splitmix64: tiny, seedable, no dependencies.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };

        let reqs = request_cases();
        let resps = response_cases();
        for trial in 0..4000_u64 {
            let r = next();
            let mut wire = if trial % 4 == 0 {
                // Pure noise of random length 0..40.
                let len = (next() % 40) as usize;
                (0..len).map(|_| (next() & 0xff) as u8).collect::<Vec<u8>>()
            } else if trial % 2 == 0 {
                reqs[(r % reqs.len() as u64) as usize].encode()
            } else {
                resps[(r % resps.len() as u64) as usize].encode()
            };
            // Apply 1–3 corruptions.
            for _ in 0..=(next() % 3) {
                if wire.is_empty() {
                    break;
                }
                match next() % 3 {
                    0 => {
                        let at = (next() % wire.len() as u64) as usize;
                        wire[at] ^= 1 << (next() % 8);
                    }
                    1 => {
                        let cut = (next() % (wire.len() as u64 + 1)) as usize;
                        wire.truncate(cut);
                    }
                    _ => wire.push((next() & 0xff) as u8),
                }
            }
            if let Ok(req) = Request::decode(&wire) {
                assert_eq!(req.encode(), wire, "request mis-framed: {wire:?}");
            }
            if let Ok(resp) = Response::decode(&wire) {
                assert_eq!(resp.encode(), wire, "response mis-framed: {wire:?}");
            }
        }
    }
}
