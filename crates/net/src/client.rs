//! The retrying, idempotent client: [`BarrierClient`].
//!
//! The client speaks the `proto` state machine over any [`Transport`]:
//!
//! ```text
//!        Hello ────────► Welcome{episode}      (join / rejoin)
//!        Arrive{episode} ► Release{episode}    (one barrier crossing)
//!        Heartbeat                              (lease renewal)
//!        Leave                                  (orderly departure)
//! ```
//!
//! Every request names its `(session, episode)` coordinate, so the
//! client retries freely: each attempt waits up to
//! [`ClientConfig::request_timeout`] for the matching response, then
//! re-sends after a [`JitterBackoff`] delay (PR 4's jittered
//! exponential backoff, so a herd of retrying clients desynchronizes).
//! A retried `Arrive` the server already counted is a no-op; one whose
//! episode already released is answered with a re-sent `Release` — the
//! wire can drop, duplicate, delay, or reorder anything and the episode
//! counters still advance exactly once.
//!
//! Errors map onto the runtime's [`BarrierError`]:
//! [`BarrierError::Timeout`] when attempts are exhausted (the operation
//! may simply be retried — state is unharmed),
//! [`BarrierError::Evicted`] when the server folded the session out
//! (call [`BarrierClient::rejoin`]), and [`BarrierError::Poisoned`]
//! when the transport is closed for good.
//!
//! A *restarted* server (recovered from its write-ahead journal)
//! challenges journaled-live sessions with `ResumeRequired`; the client
//! answers `Resume{next_episode}` proving its position, and either
//! continues seamlessly (`Resumed`), catches up from an idempotent
//! `Release` re-ack, or learns the recovered authority lost a journal
//! suffix it already observed — [`BarrierError::Diverged`], the one
//! error that means the epoch stream itself broke. Every response frame
//! carries the server's incarnation; frames from superseded
//! incarnations (a fenced zombie primary) are silently dropped.

use std::time::{Duration, Instant};

use combar_rt::{BarrierError, JitterBackoff};
use combar_trace::Kind;

use crate::proto::{Request, Response, SessionId};
use crate::transport::{NetError, Transport};

/// Retry tuning for [`BarrierClient`].
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// How long one attempt waits for its response before re-sending.
    pub request_timeout: Duration,
    /// Initial retry backoff (doubles per retry, jittered).
    pub backoff_base: Duration,
    /// Retry backoff cap.
    pub backoff_max: Duration,
    /// Attempts per operation before giving up with `Timeout`.
    pub max_attempts: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            request_timeout: Duration::from_millis(25),
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(20),
            max_attempts: 40,
        }
    }
}

/// Client-side observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Episodes completed (successful [`BarrierClient::arrive`] calls).
    pub episodes: u64,
    /// Request re-sends after an attempt timed out.
    pub retries: u64,
    /// Evictions observed.
    pub evictions: u64,
    /// Successful rejoins after eviction.
    pub rejoins: u64,
    /// Successful `Resume` handshakes after a server restart proved the
    /// session's epoch position to the new incarnation.
    pub resumes: u64,
}

/// One client session of the epoch server. See the module docs.
#[derive(Debug)]
pub struct BarrierClient<T: Transport> {
    transport: T,
    session: SessionId,
    cfg: ClientConfig,
    /// The next episode to arrive for (set by `Welcome`, advanced by
    /// `Release`).
    episode: u64,
    seq: u64,
    joined: bool,
    /// An `Arrive` for the current episode is in flight (sent but not
    /// yet released) — `await_release` re-sends it on retry.
    arrive_pending: bool,
    /// Highest server incarnation observed. Frames stamped with a lower
    /// incarnation come from a fenced zombie (a dead server's delayed
    /// or split-brain traffic) and are dropped unconditionally — the
    /// client-side half of the fencing invariant.
    max_inc: u64,
    stats: ClientStats,
}

impl<T: Transport> BarrierClient<T> {
    /// Wraps a transport as the client for `session`. Call
    /// [`join`](Self::join) before arriving.
    pub fn new(transport: T, session: SessionId, cfg: ClientConfig) -> Self {
        Self {
            transport,
            session,
            cfg,
            episode: 0,
            seq: 0,
            joined: false,
            arrive_pending: false,
            max_inc: 0,
            stats: ClientStats::default(),
        }
    }

    /// The session id.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The next episode this client will arrive for.
    pub fn episode(&self) -> u64 {
        self.episode
    }

    /// Whether the client currently holds a membership.
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    /// Client-side counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    fn backoff(&self) -> JitterBackoff {
        // Seeded by session so concurrent clients desynchronize
        // deterministically.
        JitterBackoff::new(
            self.session.wrapping_add(1),
            self.cfg.backoff_base,
            self.cfg.backoff_max,
        )
    }

    fn send(&mut self, req: Request) -> Result<(), BarrierError> {
        self.seq += 1;
        match self.transport.send(&req.encode()) {
            Ok(()) => Ok(()),
            Err(NetError::Closed) => Err(BarrierError::Poisoned),
            Err(NetError::Timeout) => Ok(()), // best effort, like loss
        }
    }

    /// Decodes a frame and applies the fencing filter: malformed frames
    /// and frames from superseded incarnations are dropped (returning
    /// `None`), exactly as if the wire had lost them.
    fn accept(&mut self, frame: &[u8]) -> Option<Response> {
        let resp = Response::decode(frame).ok()?;
        let inc = resp.incarnation();
        if inc < self.max_inc {
            return None; // a fenced zombie's frame
        }
        self.max_inc = inc;
        Some(resp)
    }

    /// Joins (Hello → Welcome), retrying with backoff. On success the
    /// client is positioned at the server's current episode — the join
    /// lands as a proxy arrival there, so joining can never wedge an
    /// in-flight episode.
    pub fn join(&mut self) -> Result<u64, BarrierError> {
        let mut backoff = self.backoff();
        for attempt in 0..self.cfg.max_attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                std::thread::sleep(backoff.next_delay());
            }
            self.send(Request::Hello {
                session: self.session,
                seq: self.seq,
            })?;
            let deadline = Instant::now() + self.cfg.request_timeout;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match self.transport.recv_timeout(remaining) {
                    Ok(frame) => match self.accept(&frame) {
                        Some(Response::Welcome {
                            session, episode, ..
                        }) if session == self.session => {
                            self.episode = episode;
                            self.joined = true;
                            self.arrive_pending = false;
                            // A fresh membership: anything the wire
                            // still holds for the old one is stale.
                            self.transport.flush_stale();
                            return Ok(episode);
                        }
                        // Stale releases/evictions from a previous
                        // membership: superseded by the Hello in flight.
                        _ => continue,
                    },
                    Err(NetError::Timeout) => break,
                    Err(NetError::Closed) => return Err(BarrierError::Poisoned),
                }
            }
        }
        Err(BarrierError::Timeout)
    }

    /// Rejoins after an eviction. Identical to [`join`](Self::join) but
    /// counted (and traced) as a rejoin.
    pub fn rejoin(&mut self) -> Result<u64, BarrierError> {
        let ep = self.join()?;
        self.stats.rejoins += 1;
        combar_trace::emit(ep as u32, self.session as u32, Kind::Rejoin);
        Ok(ep)
    }

    /// Sends the arrival for the current episode without waiting for
    /// the release. Pair with [`await_release`](Self::await_release);
    /// a traffic generator multiplexing many sessions on one thread
    /// sends all arrivals first, then awaits all releases.
    pub fn send_arrive(&mut self) -> Result<(), BarrierError> {
        if !self.joined {
            return Err(BarrierError::Evicted);
        }
        if self.arrive_pending {
            // Re-sending an in-flight arrival (always idempotent).
            self.stats.retries += 1;
        }
        let (session, episode) = (self.session, self.episode);
        combar_trace::emit(episode as u32, session as u32, Kind::Arrive);
        self.send(Request::Arrive {
            session,
            episode,
            seq: self.seq,
        })?;
        self.arrive_pending = true;
        Ok(())
    }

    /// One bounded check for the release of the in-flight arrival: reads
    /// responses for at most `wait`, never sleeps, never re-sends.
    ///
    /// This is the non-blocking half a multiplexing driver needs: a
    /// thread juggling many sessions must never park on one session's
    /// release while its *other* sessions still owe the server arrivals
    /// — that is a distributed self-deadlock (every driver waits on a
    /// release only another driver's unsent arrival can unblock).
    /// `Err(Timeout)` just means "not yet"; re-send the arrival on your
    /// own schedule ([`send_arrive`](Self::send_arrive) re-sends are
    /// idempotent and renew the session lease) and poll again.
    pub fn poll_release(&mut self, wait: Duration) -> Result<u64, BarrierError> {
        if !self.joined {
            return Err(BarrierError::Evicted);
        }
        if !self.arrive_pending {
            return Err(BarrierError::Timeout);
        }
        let deadline = Instant::now() + wait;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(BarrierError::Timeout);
            }
            match self.transport.recv_timeout(remaining) {
                Ok(frame) => match self.accept(&frame) {
                    Some(Response::Release { episode, .. }) if episode >= self.episode => {
                        // episode > self.episode means the server
                        // provably released ours too (episodes are
                        // sequential); catch up either way.
                        let done = self.episode;
                        self.episode = episode + 1;
                        self.arrive_pending = false;
                        self.stats.episodes += 1;
                        combar_trace::emit(done as u32, self.session as u32, Kind::Release);
                        return Ok(done);
                    }
                    Some(Response::Evicted { session, .. }) if session == self.session => {
                        self.joined = false;
                        self.arrive_pending = false;
                        self.stats.evictions += 1;
                        combar_trace::emit(
                            self.episode as u32,
                            self.session as u32,
                            Kind::Evict(self.session as u32),
                        );
                        return Err(BarrierError::Evicted);
                    }
                    Some(Response::Welcome {
                        session, episode, ..
                    }) if session == self.session && episode > self.episode => {
                        // A duplicate Hello was re-processed at a
                        // later frame: the server re-admitted us
                        // there; move up and re-arrive.
                        self.episode = episode;
                        self.send(Request::Arrive {
                            session,
                            episode,
                            seq: self.seq,
                        })?;
                    }
                    Some(Response::ResumeRequired { session, .. }) if session == self.session => {
                        // A restarted server recovered us from its
                        // journal and challenges us to prove our epoch
                        // position before it counts anything.
                        self.send(Request::Resume {
                            session,
                            next_episode: self.episode,
                            seq: self.seq,
                        })?;
                    }
                    Some(Response::Resumed {
                        session, episode, ..
                    }) if session == self.session && episode == self.episode => {
                        // Position proven: membership restored at the
                        // same epoch. Drop anything the wire still
                        // holds from the dead incarnation, then
                        // re-arrive under the new one.
                        self.stats.resumes += 1;
                        self.transport.flush_stale();
                        self.send(Request::Arrive {
                            session,
                            episode: self.episode,
                            seq: self.seq,
                        })?;
                    }
                    Some(Response::Diverged { session, .. }) if session == self.session => {
                        // The recovered authority is *behind* us: it
                        // lost a journal suffix we observed. Surfacing
                        // is the only honest move — silently rewinding
                        // would double-count episodes.
                        self.joined = false;
                        self.arrive_pending = false;
                        return Err(BarrierError::Diverged);
                    }
                    // Stale releases for earlier episodes,
                    // duplicate welcomes, cross-session noise:
                    // drop, exactly like the wire would.
                    _ => continue,
                },
                Err(NetError::Timeout) => return Err(BarrierError::Timeout),
                Err(NetError::Closed) => return Err(BarrierError::Poisoned),
            }
        }
    }

    /// Waits for the release of the episode whose arrival is in flight,
    /// re-sending the (idempotent) `Arrive` on each attempt timeout.
    ///
    /// `Ok(ep)` — episode `ep` completed; the client advances to
    /// `ep + 1`. `Err(Evicted)` — the server folded this session out;
    /// [`rejoin`](Self::rejoin) to continue. `Err(Timeout)` — attempts
    /// exhausted; calling again resumes safely.
    pub fn await_release(&mut self) -> Result<u64, BarrierError> {
        if !self.joined {
            return Err(BarrierError::Evicted);
        }
        if !self.arrive_pending {
            return Err(BarrierError::Timeout);
        }
        let mut backoff = self.backoff();
        for attempt in 0..self.cfg.max_attempts {
            if attempt > 0 {
                std::thread::sleep(backoff.next_delay());
                self.stats.retries += 1;
                self.send(Request::Arrive {
                    session: self.session,
                    episode: self.episode,
                    seq: self.seq,
                })?;
            }
            match self.poll_release(self.cfg.request_timeout) {
                Err(BarrierError::Timeout) => continue,
                other => return other,
            }
        }
        Err(BarrierError::Timeout)
    }

    /// One full barrier crossing: arrive at the current episode and
    /// wait for its release. Returns the completed episode number.
    pub fn arrive(&mut self) -> Result<u64, BarrierError> {
        self.send_arrive()?;
        self.await_release()
    }

    /// Renews the session lease without arriving — for clients whose
    /// inter-arrival work outlasts the server's grace window.
    pub fn heartbeat(&mut self) -> Result<(), BarrierError> {
        self.send(Request::Heartbeat {
            session: self.session,
            seq: self.seq,
        })
    }

    /// Leaves the membership at the next boundary (best effort; loss of
    /// the frame degenerates to a lease eviction, which is equivalent).
    pub fn leave(&mut self) -> Result<(), BarrierError> {
        let r = self.send(Request::Leave {
            session: self.session,
            seq: self.seq,
        });
        self.joined = false;
        self.arrive_pending = false;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;

    /// A hand-rolled server half for protocol-level unit tests.
    fn expect_req(t: &mut impl Transport) -> Request {
        let frame = t.recv_timeout(Duration::from_secs(1)).expect("request");
        Request::decode(&frame).expect("well-formed request")
    }

    #[test]
    fn join_retries_until_welcome() {
        let (client_side, mut server_side) = loopback_pair();
        let h = std::thread::spawn(move || {
            // Swallow the first Hello (simulated loss), answer the
            // retry.
            let first = expect_req(&mut server_side);
            assert!(matches!(first, Request::Hello { session: 9, .. }));
            let second = expect_req(&mut server_side);
            assert!(matches!(second, Request::Hello { session: 9, .. }));
            server_side
                .send(
                    &Response::Welcome {
                        session: 9,
                        episode: 3,
                        inc: 0,
                    }
                    .encode(),
                )
                .unwrap();
        });
        let mut c = BarrierClient::new(
            client_side,
            9,
            ClientConfig {
                request_timeout: Duration::from_millis(10),
                ..ClientConfig::default()
            },
        );
        assert_eq!(c.join().unwrap(), 3);
        assert_eq!(c.episode(), 3);
        assert!(c.stats().retries >= 1);
        h.join().unwrap();
    }

    #[test]
    fn arrive_resends_idempotently_and_accepts_late_release() {
        let (client_side, mut server_side) = loopback_pair();
        let h = std::thread::spawn(move || {
            // Lose the first Arrive; ack the retry.
            let a1 = expect_req(&mut server_side);
            assert!(matches!(
                a1,
                Request::Arrive {
                    session: 4,
                    episode: 0,
                    ..
                }
            ));
            let a2 = expect_req(&mut server_side);
            assert_eq!(a1.session(), a2.session());
            server_side
                .send(&Response::Release { episode: 0, inc: 0 }.encode())
                .unwrap();
        });
        let mut c = BarrierClient::new(
            client_side,
            4,
            ClientConfig {
                request_timeout: Duration::from_millis(10),
                ..ClientConfig::default()
            },
        );
        c.joined = true; // skip Hello for this wire-level test
        assert_eq!(c.arrive().unwrap(), 0);
        assert_eq!(c.episode(), 1);
        assert!(c.stats().retries >= 1);
        h.join().unwrap();
    }

    #[test]
    fn eviction_surfaces_and_blocks_until_rejoin() {
        let (client_side, mut server_side) = loopback_pair();
        let h = std::thread::spawn(move || {
            let _arrive = expect_req(&mut server_side);
            server_side
                .send(
                    &Response::Evicted {
                        session: 5,
                        episode: 0,
                        inc: 0,
                    }
                    .encode(),
                )
                .unwrap();
        });
        let mut c = BarrierClient::new(client_side, 5, ClientConfig::default());
        c.joined = true;
        assert_eq!(c.arrive(), Err(BarrierError::Evicted));
        assert!(!c.is_joined());
        assert_eq!(
            c.arrive(),
            Err(BarrierError::Evicted),
            "refuses until rejoin"
        );
        assert_eq!(c.stats().evictions, 1);
        h.join().unwrap();
    }

    #[test]
    fn resume_challenge_restores_membership_at_the_same_epoch() {
        let (client_side, mut server_side) = loopback_pair();
        let h = std::thread::spawn(move || {
            // The "restarted server": challenge the first Arrive,
            // expect a Resume proving episode 5, admit, then release.
            let a = expect_req(&mut server_side);
            assert!(matches!(a, Request::Arrive { episode: 5, .. }));
            server_side
                .send(
                    &Response::ResumeRequired {
                        session: 8,
                        episode: 5,
                        inc: 2,
                    }
                    .encode(),
                )
                .unwrap();
            let r = expect_req(&mut server_side);
            assert!(
                matches!(
                    r,
                    Request::Resume {
                        session: 8,
                        next_episode: 5,
                        ..
                    }
                ),
                "{r:?}"
            );
            server_side
                .send(
                    &Response::Resumed {
                        session: 8,
                        episode: 5,
                        inc: 2,
                    }
                    .encode(),
                )
                .unwrap();
            // The client re-arrives under the new incarnation.
            let a2 = expect_req(&mut server_side);
            assert!(matches!(a2, Request::Arrive { episode: 5, .. }));
            server_side
                .send(&Response::Release { episode: 5, inc: 2 }.encode())
                .unwrap();
        });
        let mut c = BarrierClient::new(client_side, 8, ClientConfig::default());
        c.joined = true;
        c.episode = 5;
        assert_eq!(c.arrive().unwrap(), 5);
        assert_eq!(c.stats().resumes, 1);
        assert_eq!(c.stats().evictions, 0, "a resume is not an eviction");
        h.join().unwrap();
    }

    #[test]
    fn zombie_incarnation_frames_are_dropped() {
        let (client_side, mut server_side) = loopback_pair();
        let h = std::thread::spawn(move || {
            let _a = expect_req(&mut server_side);
            // New incarnation speaks first, then a fenced zombie's
            // stale frames arrive: an eviction and a bogus release,
            // both stamped with the dead incarnation. Neither may act.
            server_side
                .send(
                    &Response::ResumeRequired {
                        session: 3,
                        episode: 7,
                        inc: 4,
                    }
                    .encode(),
                )
                .unwrap();
            server_side
                .send(
                    &Response::Evicted {
                        session: 3,
                        episode: 7,
                        inc: 2,
                    }
                    .encode(),
                )
                .unwrap();
            server_side
                .send(&Response::Release { episode: 9, inc: 2 }.encode())
                .unwrap();
            let r = expect_req(&mut server_side);
            assert!(matches!(r, Request::Resume { .. }));
            server_side
                .send(
                    &Response::Resumed {
                        session: 3,
                        episode: 7,
                        inc: 4,
                    }
                    .encode(),
                )
                .unwrap();
            let _a2 = expect_req(&mut server_side);
            server_side
                .send(&Response::Release { episode: 7, inc: 4 }.encode())
                .unwrap();
        });
        let mut c = BarrierClient::new(client_side, 3, ClientConfig::default());
        c.joined = true;
        c.episode = 7;
        assert_eq!(c.arrive().unwrap(), 7);
        assert_eq!(c.stats().evictions, 0, "zombie eviction must not land");
        assert_eq!(c.episode(), 8, "zombie Release{{9}} must not skip epochs");
        h.join().unwrap();
    }

    #[test]
    fn divergence_surfaces_as_its_own_error() {
        let (client_side, mut server_side) = loopback_pair();
        let h = std::thread::spawn(move || {
            let _a = expect_req(&mut server_side);
            server_side
                .send(
                    &Response::ResumeRequired {
                        session: 6,
                        episode: 2,
                        inc: 3,
                    }
                    .encode(),
                )
                .unwrap();
            let _r = expect_req(&mut server_side);
            // The recovered journal only reaches epoch 2; the client
            // claims 4 — a lost suffix.
            server_side
                .send(
                    &Response::Diverged {
                        session: 6,
                        expected: 2,
                        inc: 3,
                    }
                    .encode(),
                )
                .unwrap();
        });
        let mut c = BarrierClient::new(client_side, 6, ClientConfig::default());
        c.joined = true;
        c.episode = 4;
        assert_eq!(c.arrive(), Err(BarrierError::Diverged));
        assert!(!c.is_joined());
        h.join().unwrap();
    }

    #[test]
    fn closed_transport_is_poisoned() {
        let (client_side, server_side) = loopback_pair();
        drop(server_side);
        let mut c = BarrierClient::new(client_side, 6, ClientConfig::default());
        assert_eq!(c.join(), Err(BarrierError::Poisoned));
    }

    #[test]
    fn duplicate_releases_are_ignored() {
        let (client_side, mut server_side) = loopback_pair();
        let h = std::thread::spawn(move || {
            let _a = expect_req(&mut server_side);
            // Duplicate + stale releases around the real one.
            for ep in [0u64, 0, 0] {
                server_side
                    .send(
                        &Response::Release {
                            episode: ep,
                            inc: 0,
                        }
                        .encode(),
                    )
                    .unwrap();
            }
            // Skip any Arrive{0} retries that raced the releases.
            loop {
                let a2 = expect_req(&mut server_side);
                if matches!(a2, Request::Arrive { episode: 1, .. }) {
                    break;
                }
            }
            server_side
                .send(&Response::Release { episode: 1, inc: 0 }.encode())
                .unwrap();
        });
        let mut c = BarrierClient::new(client_side, 7, ClientConfig::default());
        c.joined = true;
        assert_eq!(c.arrive().unwrap(), 0);
        // The two duplicate Release{0} frames must not complete ep 1.
        assert_eq!(c.arrive().unwrap(), 1);
        assert_eq!(c.stats().episodes, 2);
        h.join().unwrap();
    }
}
