//! [`FaultyTransport`]: a decorator that subjects any [`Transport`] to
//! a deterministic [`NetFaultPlan`] — drops, duplicates, bounded
//! delays, reorders, and disconnect windows.
//!
//! The decorator interprets two independent plan streams, one per
//! direction (`send_stream` for outbound frames, `recv_stream` for
//! inbound), indexed by a per-direction message counter. Given the same
//! plan and the same traffic, the injected fault *schedule* is
//! bit-identical across runs; what stays nondeterministic is only the
//! wall-clock interleaving of the underlying wire, which the protocol
//! tolerates by construction.
//!
//! Faults are applied on the decorated side:
//!
//! * `Drop` — the frame is discarded (outbound: never sent; inbound:
//!   received and thrown away).
//! * `Duplicate` — the frame goes through twice.
//! * `Delay(d)` — the frame is held back until `d` later frames have
//!   passed in the same direction (or, inbound, until the wire goes
//!   quiet — a late datagram still arrives eventually).
//! * `Reorder` — the frame swaps places with its successor
//!   (held back exactly one frame).

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use combar_chaos::{NetFault, NetFaultPlan};

use crate::transport::{NetError, Transport};

/// A [`Transport`] wrapper that injects wire faults from a
/// deterministic plan. See the module docs for semantics.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: NetFaultPlan,
    send_stream: u64,
    recv_stream: u64,
    send_idx: u64,
    recv_idx: u64,
    /// Outbound frames held by `Delay`/`Reorder`: `(release_at, frame)`
    /// released once `send_idx` reaches `release_at`.
    send_held: Vec<(u64, Vec<u8>)>,
    /// Inbound frames held by `Delay`/`Reorder`.
    recv_held: Vec<(u64, Vec<u8>)>,
    /// Inbound frames ready to deliver (duplicates, released holds).
    recv_ready: VecDeque<Vec<u8>>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, driving faults from `plan` streams
    /// `send_stream` (outbound) and `recv_stream` (inbound).
    ///
    /// The convention used by the client library is
    /// `send_stream = 2·session`, `recv_stream = 2·session + 1`, so one
    /// plan gives every session's every direction an independent,
    /// reproducible schedule.
    pub fn new(inner: T, plan: NetFaultPlan, send_stream: u64, recv_stream: u64) -> Self {
        Self {
            inner,
            plan,
            send_stream,
            recv_stream,
            send_idx: 0,
            recv_idx: 0,
            send_held: Vec::new(),
            recv_held: Vec::new(),
            recv_ready: VecDeque::new(),
        }
    }

    /// Consumes the decorator, returning the underlying transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn flush_due_sends(&mut self) -> Result<(), NetError> {
        let idx = self.send_idx;
        let mut due: Vec<Vec<u8>> = Vec::new();
        self.send_held.retain_mut(|(at, f)| {
            if *at <= idx {
                due.push(std::mem::take(f));
                false
            } else {
                true
            }
        });
        for f in due {
            self.inner.send(&f)?;
        }
        Ok(())
    }

    fn release_due_recvs(&mut self) {
        let idx = self.recv_idx;
        let ready = &mut self.recv_ready;
        self.recv_held.retain_mut(|(at, f)| {
            if *at <= idx {
                ready.push_back(std::mem::take(f));
                false
            } else {
                true
            }
        });
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        let idx = self.send_idx;
        self.send_idx += 1;
        match self.plan.fault(self.send_stream, idx) {
            None => self.inner.send(frame)?,
            Some(NetFault::Drop) => {}
            Some(NetFault::Duplicate) => {
                self.inner.send(frame)?;
                self.inner.send(frame)?;
            }
            Some(NetFault::Delay(d)) => {
                self.send_held.push((idx + u64::from(d), frame.to_vec()));
            }
            Some(NetFault::Reorder) => {
                self.send_held.push((idx + 1, frame.to_vec()));
            }
        }
        self.flush_due_sends()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(f) = self.recv_ready.pop_front() {
                return Ok(f);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                // The wire went quiet: a "delayed" datagram still
                // arrives eventually, so surface the oldest held frame
                // rather than wedging behind traffic that never comes.
                if let Some((_, f)) = self.recv_held.pop() {
                    return Ok(f);
                }
                return Err(NetError::Timeout);
            }
            match self.inner.recv_timeout(remaining) {
                Ok(frame) => {
                    let idx = self.recv_idx;
                    self.recv_idx += 1;
                    match self.plan.fault(self.recv_stream, idx) {
                        None => self.recv_ready.push_back(frame),
                        Some(NetFault::Drop) => {}
                        Some(NetFault::Duplicate) => {
                            self.recv_ready.push_back(frame.clone());
                            self.recv_ready.push_back(frame);
                        }
                        Some(NetFault::Delay(d)) => {
                            self.recv_held.push((idx + u64::from(d), frame));
                        }
                        Some(NetFault::Reorder) => {
                            self.recv_held.push((idx + 1, frame));
                        }
                    }
                    self.release_due_recvs();
                }
                Err(NetError::Timeout) => continue, // re-check deadline
                Err(NetError::Closed) => {
                    // Drain anything still held before reporting EOF.
                    if let Some((_, f)) = self.recv_held.pop() {
                        return Ok(f);
                    }
                    return Err(NetError::Closed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;
    use combar_chaos::NetChaosConfig;

    const T: Duration = Duration::from_millis(50);

    #[test]
    fn quiet_plan_passes_traffic_through() {
        let (a, mut b) = loopback_pair();
        let mut f = FaultyTransport::new(a, NetFaultPlan::quiet(1), 0, 1);
        for i in 0..10u8 {
            f.send(&[i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.recv_timeout(T).unwrap(), vec![i]);
        }
    }

    #[test]
    fn full_drop_plan_sends_nothing() {
        let (a, mut b) = loopback_pair();
        let plan = NetFaultPlan::new(NetChaosConfig {
            seed: 2,
            drop_prob: 1.0,
            ..NetChaosConfig::default()
        });
        let mut f = FaultyTransport::new(a, plan, 0, 1);
        for i in 0..8u8 {
            f.send(&[i]).unwrap();
        }
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        );
    }

    #[test]
    fn full_duplicate_plan_doubles_every_frame() {
        let (a, mut b) = loopback_pair();
        let plan = NetFaultPlan::new(NetChaosConfig {
            seed: 3,
            dup_prob: 1.0,
            ..NetChaosConfig::default()
        });
        let mut f = FaultyTransport::new(a, plan, 0, 1);
        f.send(&[7]).unwrap();
        assert_eq!(b.recv_timeout(T).unwrap(), vec![7]);
        assert_eq!(b.recv_timeout(T).unwrap(), vec![7]);
    }

    #[test]
    fn inbound_faults_apply_on_receive_side() {
        let (mut a, b) = loopback_pair();
        let plan = NetFaultPlan::new(NetChaosConfig {
            seed: 4,
            drop_prob: 1.0,
            ..NetChaosConfig::default()
        });
        // recv_stream = 9 is the all-drop stream here.
        let mut f = FaultyTransport::new(b, NetFaultPlan::quiet(0), 8, 9);
        f.plan = plan;
        a.send(&[1]).unwrap();
        assert_eq!(
            f.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        );
    }

    #[test]
    fn delayed_frames_are_released_by_later_traffic() {
        let (a, mut b) = loopback_pair();
        // Delay every frame by exactly 1 → consecutive pairs swap.
        let plan = NetFaultPlan::new(NetChaosConfig {
            seed: 5,
            reorder_prob: 1.0,
            ..NetChaosConfig::default()
        });
        let mut f = FaultyTransport::new(a, plan, 0, 1);
        f.send(&[1]).unwrap(); // held
        f.send(&[2]).unwrap(); // held; frame 1 released
        f.send(&[3]).unwrap(); // held; frame 2 released
        assert_eq!(b.recv_timeout(T).unwrap(), vec![1]);
        assert_eq!(b.recv_timeout(T).unwrap(), vec![2]);
    }

    #[test]
    fn held_inbound_frame_surfaces_on_quiet_wire() {
        let (mut a, b) = loopback_pair();
        let plan = NetFaultPlan::new(NetChaosConfig {
            seed: 6,
            delay_prob: 1.0,
            max_delay_msgs: 8,
            ..NetChaosConfig::default()
        });
        let mut f = FaultyTransport::new(b, plan, 0, 1);
        a.send(&[9]).unwrap();
        // The only frame is held; once the wire goes quiet the decorator
        // must surface it instead of timing out forever.
        assert_eq!(f.recv_timeout(Duration::from_millis(20)).unwrap(), vec![9]);
    }
}
