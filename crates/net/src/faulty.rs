//! [`FaultyTransport`]: a decorator that subjects any [`Transport`] to
//! a deterministic [`NetFaultPlan`] — drops, duplicates, bounded
//! delays, reorders, and disconnect windows.
//!
//! The decorator interprets two independent plan streams, one per
//! direction (`send_stream` for outbound frames, `recv_stream` for
//! inbound), indexed by a per-direction message counter. Given the same
//! plan and the same traffic, the injected fault *schedule* is
//! bit-identical across runs; what stays nondeterministic is only the
//! wall-clock interleaving of the underlying wire, which the protocol
//! tolerates by construction.
//!
//! Faults are applied on the decorated side:
//!
//! * `Drop` — the frame is discarded (outbound: never sent; inbound:
//!   received and thrown away).
//! * `Duplicate` — the frame goes through twice.
//! * `Delay(d)` — the frame is held back until `d` later frames have
//!   passed in the same direction (or, inbound, until the wire has
//!   stayed quiet for a full grace period — a late datagram still
//!   arrives eventually, but a caller polling in short slices must not
//!   shake one loose per poll).
//! * `Reorder` — the frame swaps places with its successor
//!   (held back exactly one frame).

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use combar_chaos::{NetFault, NetFaultPlan};

use crate::transport::{NetError, Transport};

/// How long the inbound wire must stay continuously silent before a
/// held (delayed) frame is surfaced out of schedule. Tracked *across*
/// `recv_timeout` calls: a driver polling in 1 ms slices accumulates
/// toward one grace period instead of shaking a held frame loose per
/// poll (which would quietly neutralize `Delay` semantics), while a
/// genuinely quiet wire — no later traffic will ever advance the
/// release index — still delivers every held datagram eventually.
const QUIET_WIRE_GRACE: Duration = Duration::from_millis(10);

/// A [`Transport`] wrapper that injects wire faults from a
/// deterministic plan. See the module docs for semantics.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: NetFaultPlan,
    send_stream: u64,
    recv_stream: u64,
    send_idx: u64,
    recv_idx: u64,
    /// Outbound frames held by `Delay`/`Reorder`: `(release_at, frame)`
    /// released once `send_idx` reaches `release_at`.
    send_held: Vec<(u64, Vec<u8>)>,
    /// Inbound frames held by `Delay`/`Reorder`, in arrival order.
    recv_held: Vec<(u64, Vec<u8>)>,
    /// Inbound frames ready to deliver (duplicates, released holds).
    recv_ready: VecDeque<Vec<u8>>,
    /// Since when the inbound wire has been silent (`None` right after
    /// a frame is surfaced; re-armed on the next receive attempt).
    recv_quiet_since: Option<Instant>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, driving faults from `plan` streams
    /// `send_stream` (outbound) and `recv_stream` (inbound).
    ///
    /// The convention used by the client library is
    /// `send_stream = 2·session`, `recv_stream = 2·session + 1`, so one
    /// plan gives every session's every direction an independent,
    /// reproducible schedule.
    pub fn new(inner: T, plan: NetFaultPlan, send_stream: u64, recv_stream: u64) -> Self {
        Self {
            inner,
            plan,
            send_stream,
            recv_stream,
            send_idx: 0,
            recv_idx: 0,
            send_held: Vec::new(),
            recv_held: Vec::new(),
            recv_ready: VecDeque::new(),
            recv_quiet_since: None,
        }
    }

    /// Consumes the decorator, returning the underlying transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn flush_due_sends(&mut self) -> Result<(), NetError> {
        let idx = self.send_idx;
        let mut due: Vec<Vec<u8>> = Vec::new();
        self.send_held.retain_mut(|(at, f)| {
            if *at <= idx {
                due.push(std::mem::take(f));
                false
            } else {
                true
            }
        });
        for f in due {
            self.inner.send(&f)?;
        }
        Ok(())
    }

    fn release_due_recvs(&mut self) {
        let idx = self.recv_idx;
        let ready = &mut self.recv_ready;
        self.recv_held.retain_mut(|(at, f)| {
            if *at <= idx {
                ready.push_back(std::mem::take(f));
                false
            } else {
                true
            }
        });
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        let idx = self.send_idx;
        self.send_idx += 1;
        match self.plan.fault(self.send_stream, idx) {
            None => self.inner.send(frame)?,
            Some(NetFault::Drop) => {}
            Some(NetFault::Duplicate) => {
                self.inner.send(frame)?;
                self.inner.send(frame)?;
            }
            Some(NetFault::Delay(d)) => {
                self.send_held.push((idx + u64::from(d), frame.to_vec()));
            }
            Some(NetFault::Reorder) => {
                self.send_held.push((idx + 1, frame.to_vec()));
            }
        }
        self.flush_due_sends()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, NetError> {
        let deadline = Instant::now() + timeout;
        // Arm the silence clock if it isn't running: quiet time
        // accumulates across calls so short polls sum toward the grace.
        self.recv_quiet_since.get_or_insert_with(Instant::now);
        loop {
            if let Some(f) = self.recv_ready.pop_front() {
                return Ok(f);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                // Only after a full quiet-wire grace — not on every
                // caller-timeout expiry — does a held frame surface out
                // of schedule: a "delayed" datagram still arrives
                // eventually rather than wedging behind traffic that
                // never comes, oldest first (FIFO, like the wire).
                if !self.recv_held.is_empty()
                    && self
                        .recv_quiet_since
                        .is_some_and(|q| q.elapsed() >= QUIET_WIRE_GRACE)
                {
                    self.recv_quiet_since = None;
                    return Ok(self.recv_held.remove(0).1);
                }
                return Err(NetError::Timeout);
            }
            match self.inner.recv_timeout(remaining) {
                Ok(frame) => {
                    self.recv_quiet_since = Some(Instant::now());
                    let idx = self.recv_idx;
                    self.recv_idx += 1;
                    match self.plan.fault(self.recv_stream, idx) {
                        None => self.recv_ready.push_back(frame),
                        Some(NetFault::Drop) => {}
                        Some(NetFault::Duplicate) => {
                            self.recv_ready.push_back(frame.clone());
                            self.recv_ready.push_back(frame);
                        }
                        Some(NetFault::Delay(d)) => {
                            self.recv_held.push((idx + u64::from(d), frame));
                        }
                        Some(NetFault::Reorder) => {
                            self.recv_held.push((idx + 1, frame));
                        }
                    }
                    self.release_due_recvs();
                }
                Err(NetError::Timeout) => continue, // re-check deadline
                Err(NetError::Closed) => {
                    // Drain anything still held, oldest first, before
                    // reporting EOF.
                    if !self.recv_held.is_empty() {
                        return Ok(self.recv_held.remove(0).1);
                    }
                    return Err(NetError::Closed);
                }
            }
        }
    }

    /// Identity boundary: a held or ready inbound frame was addressed
    /// to the *previous* incarnation of this endpoint (an evicted
    /// session whose id a rejoin just reused, or a pre-restart server
    /// talking to a resumed client). Replaying it into the new identity
    /// is a latent exactly-once violation — e.g. a stale `Release` for
    /// an epoch the reincarnated session never arrived for — so the
    /// boundary discards the backlog instead of delivering it.
    fn flush_stale(&mut self) {
        self.recv_held.clear();
        self.recv_ready.clear();
        self.recv_quiet_since = None;
        self.inner.flush_stale();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;
    use combar_chaos::NetChaosConfig;

    const T: Duration = Duration::from_millis(50);

    #[test]
    fn quiet_plan_passes_traffic_through() {
        let (a, mut b) = loopback_pair();
        let mut f = FaultyTransport::new(a, NetFaultPlan::quiet(1), 0, 1);
        for i in 0..10u8 {
            f.send(&[i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.recv_timeout(T).unwrap(), vec![i]);
        }
    }

    #[test]
    fn full_drop_plan_sends_nothing() {
        let (a, mut b) = loopback_pair();
        let plan = NetFaultPlan::new(NetChaosConfig {
            seed: 2,
            drop_prob: 1.0,
            ..NetChaosConfig::default()
        });
        let mut f = FaultyTransport::new(a, plan, 0, 1);
        for i in 0..8u8 {
            f.send(&[i]).unwrap();
        }
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        );
    }

    #[test]
    fn full_duplicate_plan_doubles_every_frame() {
        let (a, mut b) = loopback_pair();
        let plan = NetFaultPlan::new(NetChaosConfig {
            seed: 3,
            dup_prob: 1.0,
            ..NetChaosConfig::default()
        });
        let mut f = FaultyTransport::new(a, plan, 0, 1);
        f.send(&[7]).unwrap();
        assert_eq!(b.recv_timeout(T).unwrap(), vec![7]);
        assert_eq!(b.recv_timeout(T).unwrap(), vec![7]);
    }

    #[test]
    fn inbound_faults_apply_on_receive_side() {
        let (mut a, b) = loopback_pair();
        let plan = NetFaultPlan::new(NetChaosConfig {
            seed: 4,
            drop_prob: 1.0,
            ..NetChaosConfig::default()
        });
        // recv_stream = 9 is the all-drop stream here.
        let mut f = FaultyTransport::new(b, NetFaultPlan::quiet(0), 8, 9);
        f.plan = plan;
        a.send(&[1]).unwrap();
        assert_eq!(
            f.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        );
    }

    #[test]
    fn delayed_frames_are_released_by_later_traffic() {
        let (a, mut b) = loopback_pair();
        // Delay every frame by exactly 1 → consecutive pairs swap.
        let plan = NetFaultPlan::new(NetChaosConfig {
            seed: 5,
            reorder_prob: 1.0,
            ..NetChaosConfig::default()
        });
        let mut f = FaultyTransport::new(a, plan, 0, 1);
        f.send(&[1]).unwrap(); // held
        f.send(&[2]).unwrap(); // held; frame 1 released
        f.send(&[3]).unwrap(); // held; frame 2 released
        assert_eq!(b.recv_timeout(T).unwrap(), vec![1]);
        assert_eq!(b.recv_timeout(T).unwrap(), vec![2]);
    }

    #[test]
    fn quiet_wire_releases_held_frames_oldest_first() {
        let (mut a, b) = loopback_pair();
        let plan = NetFaultPlan::new(NetChaosConfig {
            seed: 11,
            delay_prob: 1.0,
            max_delay_msgs: 8,
            ..NetChaosConfig::default()
        });
        let mut f = FaultyTransport::new(b, plan, 0, 1);
        a.send(&[1]).unwrap();
        a.send(&[2]).unwrap();
        // Both inbound frames are delayed; on a quiet wire they must
        // surface in arrival order (FIFO, like a real late datagram),
        // not newest-first.
        assert_eq!(f.recv_timeout(Duration::from_millis(20)).unwrap(), vec![1]);
        assert_eq!(f.recv_timeout(Duration::from_millis(20)).unwrap(), vec![2]);
    }

    #[test]
    fn short_polls_do_not_shake_held_frames_loose() {
        let (mut a, b) = loopback_pair();
        let plan = NetFaultPlan::new(NetChaosConfig {
            seed: 12,
            delay_prob: 1.0,
            max_delay_msgs: 8,
            ..NetChaosConfig::default()
        });
        let mut f = FaultyTransport::new(b, plan, 0, 1);
        a.send(&[9]).unwrap();
        // A driver-style 1 ms poll cadence: the first expiry (and every
        // one inside the quiet-wire grace) must report Timeout rather
        // than leaking the held frame immediately, or Delay degenerates
        // to a single poll's worth of latency.
        let t0 = Instant::now();
        let mut timeouts = 0u32;
        let frame = loop {
            match f.recv_timeout(Duration::from_millis(1)) {
                Ok(frame) => break frame,
                Err(NetError::Timeout) => timeouts += 1,
                Err(e) => panic!("unexpected error: {e:?}"),
            }
            assert!(t0.elapsed() < Duration::from_secs(2), "never surfaced");
        };
        assert_eq!(frame, vec![9]);
        assert!(timeouts >= 1, "held frame leaked on the first short poll");
    }

    #[test]
    fn flush_stale_drops_held_frames_across_an_identity_boundary() {
        let (mut a, b) = loopback_pair();
        let plan = NetFaultPlan::new(NetChaosConfig {
            seed: 13,
            delay_prob: 1.0,
            max_delay_msgs: 8,
            ..NetChaosConfig::default()
        });
        let mut f = FaultyTransport::new(b, plan, 0, 1);
        // A frame destined for the session's *first* incarnation gets
        // held by the delay fault...
        a.send(&[42]).unwrap();
        assert_eq!(
            f.recv_timeout(Duration::from_millis(1)),
            Err(NetError::Timeout),
            "frame should be held, not delivered"
        );
        // ...then the session is evicted and its id reused by a rejoin:
        // the boundary flushes the backlog. Without the flush, the held
        // frame would surface on the quiet wire below and be delivered
        // to the reincarnated session — the regression this test pins.
        f.flush_stale();
        assert_eq!(
            f.recv_timeout(QUIET_WIRE_GRACE + Duration::from_millis(20)),
            Err(NetError::Timeout),
            "stale pre-eviction frame was replayed to the reused session id"
        );
        // The new incarnation's own traffic still flows (the next frame
        // is fault-index 1, which this seed leaves clean — and even if
        // delayed it must eventually surface).
        a.send(&[7]).unwrap();
        let got = loop {
            match f.recv_timeout(Duration::from_millis(20)) {
                Ok(frame) => break frame,
                Err(NetError::Timeout) => continue,
                Err(e) => panic!("unexpected error: {e:?}"),
            }
        };
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn held_inbound_frame_surfaces_on_quiet_wire() {
        let (mut a, b) = loopback_pair();
        let plan = NetFaultPlan::new(NetChaosConfig {
            seed: 6,
            delay_prob: 1.0,
            max_delay_msgs: 8,
            ..NetChaosConfig::default()
        });
        let mut f = FaultyTransport::new(b, plan, 0, 1);
        a.send(&[9]).unwrap();
        // The only frame is held; once the wire goes quiet the decorator
        // must surface it instead of timing out forever.
        assert_eq!(f.recv_timeout(Duration::from_millis(20)).unwrap(), vec![9]);
    }
}
